"""Deprecation shims for pre-``repro.api`` entry points.

Every legacy name or call path that survived the API redesign funnels
its :class:`DeprecationWarning` through :func:`warn_deprecated` here,
and the legacy *imports* live here too — so CI can run the tier-1
suite with ``-W error::DeprecationWarning`` while whitelisting exactly
one module, proving that no *internal* code still uses a shim.

Legacy call sites keep working three ways:

- ``from repro.compat import CopernicusServer, Worker, ...`` — the old
  scattered construction names re-exported with a warning (build
  deployments through :mod:`repro.api` instead);
- ``CopernicusServer.check_failures`` — renamed to ``check_liveness``
  in the liveness PR; the alias warns and forwards;
- ``repro.md.engine._build_*_task`` — replaced by the model registry
  (``resolve_model``); module ``__getattr__`` shims warn and adapt.
"""

from __future__ import annotations

import warnings
from typing import Any

#: Legacy construction entry points re-exported (with a warning) for
#: callers that predate the repro.api facade: name -> (module, attr).
_LEGACY_EXPORTS = {
    "Network": ("repro.net.transport", "Network"),
    "CopernicusServer": ("repro.server.server", "CopernicusServer"),
    "Worker": ("repro.worker.worker", "Worker"),
    "ParallelExecutor": ("repro.worker.executor", "ParallelExecutor"),
    "ProjectRunner": ("repro.core.runner", "ProjectRunner"),
    "Project": ("repro.core.project", "Project"),
    "MDEngine": ("repro.md.engine", "MDEngine"),
    "MDTask": ("repro.md.engine", "MDTask"),
    "Simulation": ("repro.md.simulation", "Simulation"),
}


def warn_deprecated(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the project-standard deprecation warning for a shim.

    *stacklevel* defaults to 3 so the warning is attributed to the
    legacy call site (caller -> shim -> here), where it is actionable.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def __getattr__(name: str) -> Any:
    if name in _LEGACY_EXPORTS:
        module_name, attr = _LEGACY_EXPORTS[name]
        warn_deprecated(
            f"repro.compat.{name}",
            f"the repro.api facade (or {module_name}.{attr} directly)",
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
