"""Deterministic random-number streams.

Everything stochastic in the package (initial velocities, Langevin
noise, clustering seeds, scheduler jitter) draws from a
:class:`RandomStream` so that experiments are reproducible end to end.
A stream wraps :class:`numpy.random.Generator` and can spawn
statistically independent child streams, which is how a project seeds
hundreds of trajectories without correlated noise.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np


class RandomStream:
    """A seeded random stream with hierarchical spawning.

    Parameters
    ----------
    seed:
        Any value acceptable to :class:`numpy.random.SeedSequence`,
        or an existing ``SeedSequence``.
    """

    def __init__(self, seed: int | np.random.SeedSequence | None = 0) -> None:
        if isinstance(seed, np.random.SeedSequence):
            self._seq = seed
        else:
            self._seq = np.random.SeedSequence(seed)
        self._gen = np.random.Generator(np.random.PCG64(self._seq))

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._gen

    def spawn(self, n: int) -> List["RandomStream"]:
        """Spawn *n* independent child streams."""
        if n < 0:
            raise ValueError(f"cannot spawn {n} streams")
        return [RandomStream(seq) for seq in self._seq.spawn(n)]

    # -- convenience passthroughs (the hot paths use .generator directly) --

    def normal(self, *args, **kwargs):
        """Draw from a normal distribution (see numpy docs)."""
        return self._gen.normal(*args, **kwargs)

    def uniform(self, *args, **kwargs):
        """Draw from a uniform distribution (see numpy docs)."""
        return self._gen.uniform(*args, **kwargs)

    def integers(self, *args, **kwargs):
        """Draw random integers (see numpy docs)."""
        return self._gen.integers(*args, **kwargs)

    def choice(self, *args, **kwargs):
        """Draw a random sample from a given array (see numpy docs)."""
        return self._gen.choice(*args, **kwargs)

    def shuffle(self, x) -> None:
        """Shuffle an array in place."""
        self._gen.shuffle(x)


def spawn_streams(seed: int, n: int) -> List[RandomStream]:
    """Create *n* independent streams from a single integer seed."""
    return RandomStream(seed).spawn(n)


def ensure_stream(seed_or_stream: int | RandomStream | None) -> RandomStream:
    """Coerce an int seed / ``None`` / existing stream to a stream."""
    if isinstance(seed_or_stream, RandomStream):
        return seed_or_stream
    return RandomStream(seed_or_stream)


def interleave_seeds(seeds: Iterable[int]) -> int:
    """Combine several integer seeds into one (order-sensitive).

    Used when a component's seed should depend on both a project seed
    and e.g. a generation index and trajectory index.
    """
    h = 0x9E3779B97F4A7C15
    for s in seeds:
        h = (h ^ (int(s) + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2))) % (1 << 63)
    return h
