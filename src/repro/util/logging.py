"""Minimal structured logging with logical-clock support.

The framework runs against a *logical* clock (the runner's ``now``),
so standard wall-clock logging mislabels events.  This logger takes a
clock callable, supports per-component child loggers and keeps records
as structured data so tests can assert on them.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TextIO


class Level(enum.IntEnum):
    """Log severities."""

    DEBUG = 10
    INFO = 20
    WARNING = 30
    ERROR = 40


@dataclass(frozen=True)
class LogRecord:
    """One structured log entry.

    ``trace_id``/``span_id`` tie the record to a distributed trace
    (:mod:`repro.obs.trace`), so a log line can be cross-referenced
    with the span that was active when it was emitted.
    """

    time: float
    level: Level
    component: str
    message: str
    fields: Dict = field(default_factory=dict)
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        trace = ""
        if self.trace_id:
            trace = f" trace={self.trace_id}"
            if self.span_id:
                trace += f" span={self.span_id}"
        return (
            f"[t={self.time:10.1f}] {self.level.name:7s} "
            f"{self.component}: {self.message}"
            + (f" ({extras})" if extras else "")
            + trace
        )


class Logger:
    """A structured logger bound to a clock.

    Parameters
    ----------
    component:
        Name prefixing every record (e.g. ``server.queue``).
    clock:
        Callable returning the current (logical) time.
    level:
        Minimum severity recorded.
    stream:
        Optional text stream to echo formatted records to.
    """

    def __init__(
        self,
        component: str = "root",
        clock: Optional[Callable[[], float]] = None,
        level: Level = Level.INFO,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.component = component
        self.clock = clock or (lambda: 0.0)
        self.level = level
        self.stream = stream
        self.records: List[LogRecord] = []
        self._parent: Optional[Logger] = None

    def child(self, suffix: str) -> "Logger":
        """A sub-logger sharing this logger's sink and clock."""
        logger = Logger(
            component=f"{self.component}.{suffix}",
            clock=self.clock,
            level=self.level,
            stream=self.stream,
        )
        logger._parent = self
        return logger

    def log(
        self,
        level: Level,
        message: str,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        **fields,
    ) -> Optional[LogRecord]:
        """Record a message if it clears the threshold.

        ``trace_id``/``span_id`` attach the active tracing context
        (see :mod:`repro.obs.trace`) without polluting ``fields``.
        """
        if level < self.level:
            return None
        record = LogRecord(
            time=float(self.clock()),
            level=level,
            component=self.component,
            message=message,
            fields=fields,
            trace_id=trace_id,
            span_id=span_id,
        )
        sink = self
        while sink._parent is not None:
            sink = sink._parent
        sink.records.append(record)
        if sink.stream is not None:
            print(record, file=sink.stream)
        return record

    def debug(self, message: str, **fields):
        """Log at DEBUG."""
        return self.log(Level.DEBUG, message, **fields)

    def info(self, message: str, **fields):
        """Log at INFO."""
        return self.log(Level.INFO, message, **fields)

    def warning(self, message: str, **fields):
        """Log at WARNING."""
        return self.log(Level.WARNING, message, **fields)

    def error(self, message: str, **fields):
        """Log at ERROR."""
        return self.log(Level.ERROR, message, **fields)

    def filter(self, level: Optional[Level] = None, component: Optional[str] = None):
        """Records at/above *level* and matching component prefix."""
        out = self.records
        if level is not None:
            out = [r for r in out if r.level >= level]
        if component is not None:
            out = [
                r
                for r in out
                if r.component == component
                or r.component.startswith(component + ".")
            ]
        return list(out)


def stderr_logger(component: str = "repro", level: Level = Level.INFO) -> Logger:
    """A logger echoing to stderr (wall-clock-free)."""
    return Logger(component=component, level=level, stream=sys.stderr)
