"""Message serialization for the overlay network.

Copernicus servers exchange request/response messages over SSL; here
the wire format is a compact JSON document in which numpy arrays are
encoded as base64 buffers tagged with dtype and shape (the mpi4py
buffer-protocol idea: ship raw bytes, not pickled objects — fast,
versionable and safe to receive from untrusted peers).

Only plain data survives a round trip: dict/list/str/int/float/bool/
``None``, numpy arrays and numpy scalars.  Arbitrary objects are
rejected rather than pickled, which keeps the protocol auditable.
"""

from __future__ import annotations

import base64
import json
from typing import Any

import numpy as np

from repro.util.errors import CommunicationError

_ARRAY_TAG = "__ndarray__"
_SCALAR_TAG = "__npscalar__"


def _encode_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        return {
            _ARRAY_TAG: base64.b64encode(contiguous.tobytes()).decode("ascii"),
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
        }
    if isinstance(value, np.generic):
        return {_SCALAR_TAG: value.item(), "dtype": value.dtype.str}
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise CommunicationError(
                    f"message keys must be strings, got {type(key).__name__}"
                )
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise CommunicationError(
        f"cannot serialize object of type {type(value).__name__}"
    )


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if _ARRAY_TAG in value:
            raw = base64.b64decode(value[_ARRAY_TAG])
            arr = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return arr.reshape(value["shape"]).copy()
        if _SCALAR_TAG in value:
            return np.dtype(value["dtype"]).type(value[_SCALAR_TAG])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_message(payload: Any) -> bytes:
    """Serialize *payload* to bytes for transmission.

    Raises
    ------
    CommunicationError
        If the payload contains non-data objects.
    """
    return json.dumps(_encode_value(payload), separators=(",", ":")).encode("utf-8")


def decode_message(blob: bytes) -> Any:
    """Inverse of :func:`encode_message`.

    Raises
    ------
    CommunicationError
        If the blob is not valid wire format.
    """
    try:
        return _decode_value(json.loads(blob.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CommunicationError(f"malformed message: {exc}") from exc


def message_size(payload: Any) -> int:
    """Return the wire size of *payload* in bytes (used by bandwidth models)."""
    return len(encode_message(payload))
