"""Units and physical constants used across the MD and MSM layers.

The MD engine works in reduced, Gromacs-flavoured units:

* length      — nanometres (nm)
* time        — picoseconds (ps)
* energy      — kJ/mol
* temperature — kelvin
* mass        — atomic mass units (amu = g/mol)

With these choices velocities come out in nm/ps and the Boltzmann
constant is ``KB`` kJ/(mol K), matching Gromacs conventions, so force
field parameters read naturally against the paper (which quotes
Angstroms; 1 A = 0.1 nm).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Boltzmann constant in kJ/(mol K) (Gromacs convention).
KB = 0.00831446261815324

#: picoseconds per nanosecond.
PS_PER_NS = 1000.0

#: nanoseconds per microsecond.
NS_PER_US = 1000.0

#: nanometres per Angstrom.
NM_PER_ANGSTROM = 0.1

#: bytes per megabyte (used by the bandwidth models).
BYTES_PER_MB = 1e6

#: seconds per hour.
SECONDS_PER_HOUR = 3600.0


def kelvin_to_kt(temperature: float) -> float:
    """Return ``k_B T`` in kJ/mol for a temperature in kelvin.

    Raises
    ------
    ValueError
        If the temperature is negative.
    """
    if temperature < 0:
        raise ValueError(f"temperature must be >= 0 K, got {temperature}")
    return KB * temperature


def angstrom(value: float) -> float:
    """Convert a length in Angstroms to nanometres."""
    return value * NM_PER_ANGSTROM


def to_angstrom(value_nm: float) -> float:
    """Convert a length in nanometres to Angstroms."""
    return value_nm / NM_PER_ANGSTROM


@dataclass(frozen=True)
class Quantity:
    """A value tagged with a unit string, for self-describing reports.

    This is intentionally *not* a full unit-algebra system: benchmarks
    and EXPERIMENTS.md tables carry human-readable quantities, and a
    frozen dataclass keeps them hashable and comparable in tests.
    """

    value: float
    unit: str

    def __str__(self) -> str:
        return f"{self.value:g} {self.unit}"

    def scaled(self, factor: float) -> "Quantity":
        """Return a new quantity with the value multiplied by *factor*."""
        return Quantity(self.value * factor, self.unit)
