"""Exception hierarchy for the whole package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch framework failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class CommunicationError(ReproError):
    """A network operation failed (unreachable peer, broken route...)."""


class TransientCommunicationError(CommunicationError):
    """A network failure that may succeed on retry (drop, partition,
    crashed peer).  :meth:`repro.net.transport.Endpoint.send` retries
    these with exponential backoff; permanent routing errors (unknown
    endpoint, no handler, untrusted key) are raised immediately."""


class CommunicationTimeout(TransientCommunicationError):
    """A delivery exceeded its per-message timeout on the virtual clock."""


class AuthenticationError(CommunicationError):
    """A peer presented an untrusted or mismatching key."""


class WildcardUnclaimedError(CommunicationError):
    """A wildcard (:data:`~repro.net.protocol.ANY_SERVER`) message
    walked the whole reachable overlay and no endpoint accepted it.
    For a ``COMMAND_FETCH`` this simply means "no server has work" —
    an expected outcome, not a transport failure, so it is neither
    transient nor retried."""


class FencedError(CommunicationError):
    """A write carried a stale ownership epoch and the project's current
    owner rejected it.  Raised on the *writer's* side after the owner
    answers a fencing rejection.  Like :class:`WildcardUnclaimedError`
    this is permanent-but-quiet: the verdict is authoritative (retrying
    cannot help — the epoch only moves forward), so it is neither
    transient nor retried and must never feed circuit-breaker
    penalties.  The fenced shard's correct reaction is demotion, not
    persistence."""

    def __init__(self, message: str, project_id: str = "", stale_epoch: int = -1, current_epoch: int = -1) -> None:
        super().__init__(message)
        self.project_id = project_id
        self.stale_epoch = stale_epoch
        self.current_epoch = current_epoch


class PersistenceError(ReproError):
    """Durable state (journal, snapshot, result log) could not be
    written or read back."""


class JournalCorruptionError(PersistenceError):
    """A write-ahead journal or snapshot failed its integrity checks
    somewhere other than the torn tail (which is repaired silently)."""


class InvariantViolation(ReproError):
    """A recovery invariant failed when replaying a run's event log."""


class UnknownModelError(ConfigurationError):
    """A simulation command named a model that is not registered.

    Subclasses :class:`ConfigurationError` so callers that predate the
    typed model registry keep catching the same family."""


class UnknownShardError(ConfigurationError):
    """A ring/router operation named a shard that is not a member.

    Subclasses :class:`ConfigurationError` so callers that predate the
    typed shard errors keep catching the same family."""


class SchedulingError(ReproError):
    """The server could not queue, match or track a command."""


class SimulationError(ReproError):
    """The MD engine hit an unrecoverable numerical or setup problem."""


class EstimationError(ReproError):
    """A statistical estimator received unusable input (e.g. empty counts)."""
