"""Exception hierarchy for the whole package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch framework failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class CommunicationError(ReproError):
    """A network operation failed (unreachable peer, broken route...)."""


class AuthenticationError(CommunicationError):
    """A peer presented an untrusted or mismatching key."""


class SchedulingError(ReproError):
    """The server could not queue, match or track a command."""


class SimulationError(ReproError):
    """The MD engine hit an unrecoverable numerical or setup problem."""


class EstimationError(ReproError):
    """A statistical estimator received unusable input (e.g. empty counts)."""
