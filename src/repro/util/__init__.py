"""Shared utility substrate: units, RNG streams, errors, serialization."""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    CommunicationError,
    AuthenticationError,
    SchedulingError,
    SimulationError,
    EstimationError,
)
from repro.util.rng import RandomStream, spawn_streams
from repro.util.units import (
    KB,
    PS_PER_NS,
    NS_PER_US,
    Quantity,
    kelvin_to_kt,
)
from repro.util.serialization import encode_message, decode_message

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CommunicationError",
    "AuthenticationError",
    "SchedulingError",
    "SimulationError",
    "EstimationError",
    "RandomStream",
    "spawn_streams",
    "KB",
    "PS_PER_NS",
    "NS_PER_US",
    "Quantity",
    "kelvin_to_kt",
    "encode_message",
    "decode_message",
]
