"""The public API: one documented way in to the whole framework.

Everything a paper-style workload needs — declaring an ensemble of
replicas, standing up a simulated Copernicus deployment, running a
project to completion and reading the results — previously required
importing from half a dozen subpackages (``repro.net``,
``repro.server``, ``repro.worker``, ``repro.core``) and wiring them by
hand.  This module is the facade over that construction:

>>> from repro.api import Ensemble, run
>>> outcome = run(Ensemble(model="villin-fast", n_replicas=8, steps=2000))
>>> outcome.md_results()["ensemble/r0"].steps_completed
2000

Three entry points:

``Ensemble``
    A declarative replica set: *R* independent trajectories of one
    registered model, one seed stream apart.  Compiles to ``mdrun``
    commands — which the deployment's workers coalesce into batched
    kernel calls (:mod:`repro.worker.coalesce`) whenever their
    ``batch_capacity`` allows.
``Project``
    A named unit of work: one or more ensembles (run under a built-in
    flat controller) *or* any custom
    :class:`~repro.core.controller.Controller` (e.g. the adaptive MSM
    controller).  :meth:`Project.run` builds the deployment, drives it
    to completion and returns a :class:`RunOutcome`.
``run()``
    One-call convenience wrapping both.

Multi-tenant runs add two more:

``Tenant``
    A named user of the shared service plane: their workload (ensembles
    or a custom controller) plus their fair-share policy knobs (quota,
    weight, queue-depth bound).
``run_tenants()``
    Stand up a sharded deployment
    (:func:`repro.net.topology.sharded`), consistent-hash every
    tenant's project onto a shard, apply the fair-share policy, and
    drive all projects concurrently with one
    :class:`~repro.core.multirunner.MultiProjectRunner`.  Returns a
    :class:`MultiRunOutcome`.

The single-process simulation entry point is
:meth:`repro.md.simulation.Simulation.configure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.multirunner import MultiProjectRunner
from repro.core.project import Project as _CoreProject
from repro.core.runner import ProjectRunner
from repro.md.dispatch import (
    DEFAULT_DISPATCH,
    DEFAULT_PRECISION,
    MAX_AUTO_BATCH as _MAX_AUTO_BATCH,
    validate_dispatch,
    validate_precision,
)
from repro.md.engine import MDResult, MDTask, resolve_model
from repro.net import topology
from repro.net.transport import Network
from repro.server.fairshare import (
    DEFAULT_MAX_WAIT_SECONDS,
    FairSharePolicy,
    FairShareScheduler,
    TenantPolicy,
)
from repro.server.server import CopernicusServer
from repro.util.errors import ConfigurationError
from repro.worker.platform import SMPPlatform
from repro.worker.worker import Worker

__all__ = [
    "Ensemble",
    "Project",
    "RunOutcome",
    "run",
    "Tenant",
    "MultiRunOutcome",
    "run_tenants",
]

def __getattr__(name: str):
    # MAX_AUTO_BATCH moved to repro.md.dispatch alongside the other
    # kernel-dispatch constants; keep the old spelling importable.
    if name == "MAX_AUTO_BATCH":
        from repro.compat import warn_deprecated

        warn_deprecated(
            "repro.api.MAX_AUTO_BATCH", "repro.md.dispatch.MAX_AUTO_BATCH"
        )
        return _MAX_AUTO_BATCH
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class Ensemble:
    """R independent replicas of one model, declared in one place.

    Replica *r* gets seed ``seed + r`` and task id ``{name}/r{r}``;
    everything else is shared, which makes the replicas batch-compatible
    (:data:`repro.md.engine.BATCH_COMPATIBLE_FIELDS`) — a deployment
    with coalescing workers propagates them in one kernel call.

    ``precision`` ("float64" default, "float32" opt-in fast path) and
    ``dispatch`` ("auto"/"serial"/"batched") select the numeric kernel
    and the batched execution policy for every replica.  "auto" (the
    default) batches whenever the measured crossover says batching
    wins (:data:`repro.md.dispatch.BATCH_DISPATCH_MIN_REPLICAS`);
    "float32" runs serially because it is outside the batched kernel's
    bit-identity contract.
    """

    model: str
    n_replicas: int = 1
    steps: int = 1000
    report_interval: int = 100
    integrator: str = "langevin"
    temperature: float = 300.0
    friction: float = 1.0
    timestep: float = 0.02
    seed: int = 0
    model_params: Dict = field(default_factory=dict)
    name: str = "ensemble"
    precision: str = DEFAULT_PRECISION
    dispatch: str = DEFAULT_DISPATCH

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ConfigurationError("n_replicas must be >= 1")
        if self.steps < 1:
            raise ConfigurationError("steps must be >= 1")
        validate_precision(self.precision)
        validate_dispatch(self.dispatch)
        # Fail at declaration time, not when a worker unpacks the task.
        resolve_model(self.model, self.model_params)

    def tasks(self) -> List[MDTask]:
        """The per-replica :class:`~repro.md.engine.MDTask` specs."""
        return [
            MDTask(
                model=self.model,
                n_steps=self.steps,
                report_interval=self.report_interval,
                integrator=self.integrator,
                temperature=self.temperature,
                friction=self.friction,
                timestep=self.timestep,
                seed=self.seed + r,
                model_params=dict(self.model_params),
                task_id=f"{self.name}/r{r}",
                precision=self.precision,
                dispatch=self.dispatch,
            )
            for r in range(self.n_replicas)
        ]

    def commands(self, project_id: str) -> List[Command]:
        """Compile to queueable ``mdrun`` commands."""
        return [
            Command(
                command_id=task.task_id,
                project_id=project_id,
                executable="mdrun",
                payload=task.to_payload(),
            )
            for task in self.tasks()
        ]


class _EnsembleController(Controller):
    """Flat controller: issue every ensemble command, wait for all."""

    def __init__(self, ensembles: Sequence[Ensemble]) -> None:
        self.ensembles = list(ensembles)
        self.results: Dict[str, dict] = {}
        self._expected = sum(e.n_replicas for e in self.ensembles)

    def on_project_start(self, project):
        return [
            command
            for ensemble in self.ensembles
            for command in ensemble.commands(project.project_id)
        ]

    def on_command_finished(self, project, command, result):
        self.results[command.command_id] = result
        return []

    def is_complete(self, project):
        return len(self.results) >= self._expected


@dataclass
class RunOutcome:
    """Everything :meth:`Project.run` produced.

    The deployment objects (runner, server, workers, network) are the
    live instances, so anything the layered API exposes — event logs,
    observability, journals — remains reachable from here.
    """

    project: _CoreProject
    controller: Controller
    runner: ProjectRunner
    server: CopernicusServer
    workers: List[Worker]
    network: Network

    @property
    def status(self) -> str:
        """Final project lifecycle state (``complete``, ``failed``...)."""
        return self.project.status.value

    @property
    def obs(self):
        """The deployment's observability hub (metrics + tracer)."""
        return self.network.obs

    @property
    def transcript(self) -> str:
        """Deterministic event-log transcript of the whole run."""
        return self.runner.events.to_text()

    def md_results(self) -> Dict[str, MDResult]:
        """Completed MD results keyed by command id.

        Non-MD command results (e.g. free-energy windows) are skipped;
        read ``project.results_log`` for the raw payloads.
        """
        out: Dict[str, MDResult] = {}
        for command_id, payload in self.project.results_log:
            if isinstance(payload, dict) and "frames" in payload:
                out[command_id] = MDResult.from_payload(payload)
        return out

    def ensemble_results(self, ensemble: Ensemble) -> List[MDResult]:
        """One ensemble's results, in replica order."""
        by_id = self.md_results()
        return [by_id[task.task_id] for task in ensemble.tasks()]


class Project:
    """A named unit of work and the one-stop way to run it.

    Parameters
    ----------
    name:
        Project id (appears in journals, traces and transcripts).
    ensembles:
        Ensembles to run under the built-in flat controller.
    controller:
        A custom controller instead (adaptive MSM, free energy, ...).
        Mutually exclusive with *ensembles*.
    """

    def __init__(
        self,
        name: str = "project",
        *,
        ensembles: Optional[Sequence[Ensemble]] = None,
        controller: Optional[Controller] = None,
    ) -> None:
        if controller is not None and ensembles:
            raise ConfigurationError(
                "pass ensembles or a custom controller, not both"
            )
        self.name = name
        self.ensembles: List[Ensemble] = list(ensembles or [])
        self.controller = controller

    def add_ensemble(self, ensemble: Ensemble) -> "Project":
        """Append an ensemble (chainable)."""
        if self.controller is not None:
            raise ConfigurationError(
                "this project runs a custom controller; it takes no ensembles"
            )
        self.ensembles.append(ensemble)
        return self

    def _auto_batch_capacity(self) -> int:
        # Custom controllers get the full cap too: the default path is
        # batched, and per-command dispatch policy (resolved against
        # the measured crossover) decides whether a coalesced batch
        # actually runs through the batched kernel.
        if not self.ensembles:
            return _MAX_AUTO_BATCH
        return min(
            _MAX_AUTO_BATCH, max(e.n_replicas for e in self.ensembles)
        )

    def run(
        self,
        *,
        n_workers: int = 1,
        cores: int = 1,
        batch_capacity: Optional[int] = None,
        seed: int = 0,
        tick: float = 60.0,
        segment_steps: int = 2000,
        max_cycles: int = 100000,
        precision: Optional[str] = None,
        dispatch: Optional[str] = None,
    ) -> RunOutcome:
        """Build a deployment, run the project to completion.

        Parameters
        ----------
        n_workers / cores:
            Fleet shape: workers on the overlay, cores each.
        batch_capacity:
            Commands each worker may coalesce into one batched kernel
            call.  Default (``None``) adapts: the largest ensemble's
            replica count, capped at
            :data:`repro.md.dispatch.MAX_AUTO_BATCH`.
        seed:
            Seeds the simulated network.
        tick / segment_steps / max_cycles:
            Runner cadence, checkpoint granularity, cycle budget.
        precision / dispatch:
            When given, restamp every ensemble's ``precision`` /
            ``dispatch`` for this run (see :class:`Ensemble`).  Not
            applicable to custom controllers, which own their tasks.
        """
        if n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if precision is not None or dispatch is not None:
            if self.controller is not None:
                raise ConfigurationError(
                    "precision/dispatch overrides apply to ensembles; "
                    "a custom controller owns its own task parameters"
                )
            overrides = {}
            if precision is not None:
                overrides["precision"] = precision
            if dispatch is not None:
                overrides["dispatch"] = dispatch
            # replace() re-runs Ensemble.__post_init__, so bad values
            # raise ConfigurationError here, not on a worker.
            self.ensembles = [replace(e, **overrides) for e in self.ensembles]
        controller = self.controller
        if controller is None:
            if not self.ensembles:
                raise ConfigurationError(
                    "project has no ensembles and no controller"
                )
            controller = _EnsembleController(self.ensembles)
        if batch_capacity is None:
            batch_capacity = self._auto_batch_capacity()

        network = Network(seed=seed)
        server = CopernicusServer("srv", network)
        workers = [
            Worker(
                f"w{k}",
                network,
                server="srv",
                platform=SMPPlatform(cores=cores),
                segment_steps=segment_steps,
                batch_capacity=batch_capacity,
            )
            for k in range(n_workers)
        ]
        for worker in workers:
            network.connect("srv", worker.name)
        for worker in workers:
            worker.announce(0.0)

        runner = ProjectRunner(network, server, workers, tick=tick)
        core_project = _CoreProject(self.name)
        runner.submit(core_project, controller)
        runner.run(max_cycles=max_cycles)
        return RunOutcome(
            project=core_project,
            controller=controller,
            runner=runner,
            server=server,
            workers=workers,
            network=network,
        )


@dataclass
class Tenant:
    """One user of a shared multi-tenant deployment.

    Couples the workload (ensembles, or a custom controller) with the
    fair-share policy the service plane should enforce for it:

    quota:
        Max commands in flight at once (``None`` = unlimited, ``0`` =
        admit nothing — a suspended tenant).
    weight:
        Relative share when tenants compete for the same cores.
    max_queued:
        Queue-depth backpressure bound; submissions past it are
        deferred (journaled first, so nothing is lost) until the
        backlog drains.
    """

    name: str
    ensembles: Sequence[Ensemble] = field(default_factory=list)
    controller: Optional[Controller] = None
    quota: Optional[int] = None
    weight: float = 1.0
    max_queued: Optional[int] = None

    def __post_init__(self) -> None:
        if self.controller is not None and self.ensembles:
            raise ConfigurationError(
                f"tenant {self.name!r}: pass ensembles or a custom "
                f"controller, not both"
            )
        self.ensembles = list(self.ensembles)

    def policy(self) -> TenantPolicy:
        """This tenant's admission policy (validated)."""
        return TenantPolicy(
            quota=self.quota, weight=self.weight, max_queued=self.max_queued
        )

    def build_controller(self) -> Controller:
        if self.controller is not None:
            return self.controller
        if not self.ensembles:
            raise ConfigurationError(
                f"tenant {self.name!r} has no ensembles and no controller"
            )
        return _EnsembleController(self.ensembles)


@dataclass
class MultiRunOutcome:
    """Everything :func:`run_tenants` produced.

    Per-tenant views go through :meth:`project` /
    :meth:`md_results`; fleet-wide state (event log, metrics,
    schedulers) hangs off the live ``runner`` / ``network``.
    """

    runner: MultiProjectRunner
    network: Network
    shards: List[CopernicusServer]
    workers: List[Worker]
    projects: Dict[str, _CoreProject]
    controllers: Dict[str, Controller]
    schedulers: Dict[str, FairShareScheduler]

    def project(self, tenant: str) -> _CoreProject:
        """One tenant's project (raises KeyError when unknown)."""
        return self.projects[tenant]

    def status(self, tenant: str) -> str:
        """One tenant's final lifecycle state."""
        return self.projects[tenant].status.value

    @property
    def obs(self):
        """The deployment's observability hub (metrics + tracer)."""
        return self.network.obs

    @property
    def transcript(self) -> str:
        """Deterministic event-log transcript of the whole run."""
        return self.runner.events.to_text()

    def shard_of(self, tenant: str) -> str:
        """Which shard a tenant's project was hashed onto."""
        return self.runner.shard_of(tenant)

    def md_results(self, tenant: str) -> Dict[str, MDResult]:
        """One tenant's completed MD results keyed by command id."""
        out: Dict[str, MDResult] = {}
        for command_id, payload in self.projects[tenant].results_log:
            if isinstance(payload, dict) and "frames" in payload:
                out[command_id] = MDResult.from_payload(payload)
        return out

    def tenant_report(self) -> Dict[str, Dict]:
        """Per-tenant rollup: shard, progress, fair-share ledger."""
        return self.runner.tenant_report()


def run_tenants(
    tenants: Sequence[Tenant],
    *,
    n_shards: int = 3,
    workers_per_shard: int = 2,
    cores: int = 1,
    seed: int = 0,
    tick: float = 60.0,
    max_wait_seconds: float = DEFAULT_MAX_WAIT_SECONDS,
    max_cycles: int = 100000,
    journal_root=None,
) -> MultiRunOutcome:
    """Run many tenants' projects concurrently on one shard fabric.

    Builds :func:`repro.net.topology.sharded`, attaches one
    fair-share scheduler per shard (policy assembled from each
    tenant's quota/weight/max_queued), hashes every tenant's project
    onto its shard and drives them all to completion together.

    Parameters
    ----------
    tenants:
        The workloads; tenant names must be unique (each becomes a
        project id).
    n_shards / workers_per_shard / cores:
        Fabric shape.
    seed / tick / max_cycles:
        As in :meth:`Project.run`.
    max_wait_seconds:
        Starvation bound: a command queued longer than this jumps the
        fair-share order (aged-first dispatch).
    journal_root:
        When given, each shard journals to ``journal_root/<shard>``.
    """
    if not tenants:
        raise ConfigurationError("run_tenants needs at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ConfigurationError("tenant names must be unique")

    deployment = topology.sharded(
        n_shards=n_shards,
        workers_per_shard=workers_per_shard,
        cores_per_worker=cores,
        seed=seed,
    )
    runner = MultiProjectRunner(
        deployment.network,
        deployment.project_servers,
        deployment.workers,
        tick=tick,
    )
    policy = FairSharePolicy(
        tenants={t.name: t.policy() for t in tenants},
        max_wait_seconds=max_wait_seconds,
    )
    schedulers = runner.apply_fairshare(policy)
    if journal_root is not None:
        runner.attach_journals(journal_root)

    projects: Dict[str, _CoreProject] = {}
    controllers: Dict[str, Controller] = {}
    for tenant in tenants:
        controller = tenant.build_controller()
        core_project = _CoreProject(tenant.name)
        runner.submit(core_project, controller)
        projects[tenant.name] = core_project
        controllers[tenant.name] = controller
    runner.run(max_cycles=max_cycles)
    return MultiRunOutcome(
        runner=runner,
        network=deployment.network,
        shards=deployment.project_servers,
        workers=deployment.workers,
        projects=projects,
        controllers=controllers,
        schedulers=schedulers,
    )


def run(
    ensembles: Union[Ensemble, Sequence[Ensemble], None] = None,
    *,
    name: str = "project",
    controller: Optional[Controller] = None,
    **deployment,
) -> RunOutcome:
    """Run ensembles (or a custom controller) in one call.

    ``run(Ensemble(...))``, ``run([e1, e2])`` or
    ``run(controller=AdaptiveMSMController(config))``; keyword
    arguments are forwarded to :meth:`Project.run`.
    """
    if isinstance(ensembles, Ensemble):
        ensembles = [ensembles]
    project = Project(name, ensembles=ensembles, controller=controller)
    return project.run(**deployment)
