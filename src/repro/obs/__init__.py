"""`repro.obs` — observability for the Copernicus overlay.

Three pieces, one hub:

* :mod:`repro.obs.metrics` — a process-local registry of labelled
  counters, gauges and fixed-bucket histograms, exportable as
  Prometheus text format or JSON lines;
* :mod:`repro.obs.trace` — lightweight spans whose context propagates
  through :class:`~repro.net.protocol.Message` headers, so one trace
  follows a command from controller issue to controller update, with a
  Chrome trace-event (Perfetto-loadable) exporter;
* :mod:`repro.obs.timeline` — per-command lifecycle reconstruction
  from the event log plus spans: queue/compute/transfer/controller
  breakdowns, utilization and the critical path.

Every :class:`~repro.net.transport.Network` owns an
:class:`Observability` hub (``network.obs``); endpoints share it, so a
whole simulated deployment lands in one registry and one tracer —
exactly what a single-process reproduction wants, and the same shape a
multi-process deployment would get from per-process hubs plus a
collector.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    parse_prometheus_text,
    to_json_lines,
    to_prometheus_text,
)
from repro.obs.trace import (
    Span,
    SpanContext,
    Tracer,
    to_chrome_trace,
    trace_id_for,
    validate_chrome_trace,
)

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Tracer",
    "Span",
    "SpanContext",
    "DEFAULT_BUCKETS",
    "to_prometheus_text",
    "to_json_lines",
    "parse_prometheus_text",
    "to_chrome_trace",
    "validate_chrome_trace",
    "trace_id_for",
]


class Observability:
    """One deployment's metrics registry + tracer, shared by reference."""

    def __init__(self, prefix: str = "repro") -> None:
        self.metrics = MetricsRegistry(prefix)
        self.tracer = Tracer()

    def export_prometheus(self) -> str:
        """The registry in Prometheus text format."""
        return to_prometheus_text(self.metrics)

    def export_json_lines(self) -> str:
        """The registry as JSON lines."""
        return to_json_lines(self.metrics)

    def export_chrome_trace(self) -> dict:
        """Finished spans as a Chrome trace-event object."""
        return to_chrome_trace(self.tracer)
