"""Per-command lifecycle timelines and critical-path analysis.

The scaling claims of the paper (Figs. 7-9) rest on knowing where time
goes as commands flow server -> worker -> controller.  This module
reconstructs, for every command of a finished
:class:`~repro.core.runner.ProjectRunner` run, a timeline partitioned
into four phases:

``queue``
    Waiting for a worker: issue -> lease grant, plus every re-wait
    after a crash requeue or speculation (anything that is neither
    compute, transfer nor controller time).
``compute``
    A worker actually executing segments (the union of that command's
    ``worker.execute`` spans).
``transfer``
    The winning result travelling home — including retry backoff and
    parked-result cycles on a flaky uplink.
``controller``
    The project controller folding the result in and thinking about
    follow-ups (virtually instant on the logical clock; real clustering
    wall-time is surfaced separately as a metric).

The four phases partition each command's issue->completion window
*exactly* (the leftover after compute/transfer/controller is queue
wait), so the per-phase breakdown sums to the command's lifecycle
duration to within float rounding — the acceptance bar for honest
utilization numbers.

The same module computes the run's *critical path*: the dependency
chain of commands (each follow-up hangs off the completion that
triggered it) whose completion decided the makespan.

For DES scheduler simulations (:mod:`repro.perfmodel.scheduler_sim`)
:func:`des_utilization_breakdown` splits worker-hours into
compute/controller/idle from a :class:`SchedulerResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.events import EventKind, EventLog
from repro.obs.trace import Span, Tracer

#: Phase keys, in render order.
PHASES = ("queue", "compute", "transfer", "controller")


@dataclass
class CommandTimeline:
    """One command's reconstructed lifecycle."""

    command_id: str
    project_id: str
    issued_at: float
    assigned_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: The command that triggered this one's issue (None for the
    #: initial generation) — the edge set of the critical-path DAG.
    trigger: Optional[str] = None
    #: Workers whose execute spans touched this command.
    workers: Tuple[str, ...] = ()
    requeues: int = 0
    speculated: bool = False
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether the command's result reached the controller."""
        return self.completed_at is not None

    @property
    def duration(self) -> float:
        """Issue -> completion, virtual seconds (0 while incomplete)."""
        if not self.complete:
            return 0.0
        return self.completed_at - self.issued_at


@dataclass
class TimelineReport:
    """Aggregate of every command timeline in one run."""

    commands: List[CommandTimeline]
    #: Summed phase seconds over completed commands.
    phase_totals: Dict[str, float]
    #: Sum of completed commands' lifecycle durations.
    total_seconds: float
    #: Virtual span of the run: first issue -> last completion.
    makespan: float
    #: Command ids along the critical path, in dependency order.
    critical_path: List[str]
    #: Phase seconds summed along the critical path only.
    critical_path_phases: Dict[str, float]

    def utilization(self) -> float:
        """Compute seconds as a fraction of total lifecycle seconds."""
        if self.total_seconds <= 0:
            return 0.0
        return self.phase_totals.get("compute", 0.0) / self.total_seconds

    def render_text(self) -> str:
        """Human-readable timeline report (the CLI's output)."""
        lines = ["== command lifecycle timeline =="]
        header = (
            f"{'command':<12s} {'issued':>8s} {'done':>8s} "
            + " ".join(f"{p:>10s}" for p in PHASES)
        )
        lines.append(header)
        for tl in self.commands:
            if not tl.complete:
                lines.append(f"{tl.command_id:<12s} {tl.issued_at:>8.0f} "
                             f"{'--':>8s} (incomplete)")
                continue
            lines.append(
                f"{tl.command_id:<12s} {tl.issued_at:>8.0f} "
                f"{tl.completed_at:>8.0f} "
                + " ".join(f"{tl.phases.get(p, 0.0):>10.1f}" for p in PHASES)
                + (f"  ({tl.requeues} requeue(s))" if tl.requeues else "")
                + ("  [speculated]" if tl.speculated else "")
            )
        lines.append("-- totals --")
        for phase in PHASES:
            seconds = self.phase_totals.get(phase, 0.0)
            share = seconds / self.total_seconds if self.total_seconds else 0.0
            lines.append(f"  {phase:<10s} {seconds:>12.1f}s  {share:>6.1%}")
        lines.append(
            f"  {'lifecycle':<10s} {self.total_seconds:>12.1f}s  "
            f"(makespan {self.makespan:.1f}s, "
            f"utilization {self.utilization():.1%})"
        )
        if self.critical_path:
            lines.append(
                "-- critical path: " + " -> ".join(self.critical_path) + " --"
            )
            for phase in PHASES:
                lines.append(
                    f"  {phase:<10s} "
                    f"{self.critical_path_phases.get(phase, 0.0):>12.1f}s"
                )
        return "\n".join(lines)


def _union_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length covered by possibly-overlapping intervals."""
    total = 0.0
    last_end = None
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if last_end is None or start >= last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def _execute_spans(tracer: Optional[Tracer]) -> Dict[str, List[Span]]:
    """Finished ``worker.execute`` spans grouped by command id."""
    out: Dict[str, List[Span]] = {}
    if tracer is None:
        return out
    for span in tracer.finished_spans():
        if span.name != "worker.execute":
            continue
        command = span.attributes.get("command")
        if command:
            out.setdefault(command, []).append(span)
    return out


def build_command_timelines(
    events: EventLog, tracer: Optional[Tracer] = None
) -> List[CommandTimeline]:
    """Reconstruct every command's lifecycle from events (+ spans).

    Works from the same audit trail the invariant checker replays, so
    a journal-recovered run reconstructs identically.  Replayed
    completions (results applied from a journal during recovery) carry
    no live lifecycle and are skipped.
    """
    timelines: Dict[str, CommandTimeline] = {}
    order: List[str] = []
    for record in events.all():
        kind, details = record.kind, record.details
        if kind is EventKind.COMMANDS_ISSUED:
            for command_id in details.get("ids", []):
                if command_id in timelines:
                    continue
                timelines[command_id] = CommandTimeline(
                    command_id=command_id,
                    project_id=record.project_id,
                    issued_at=record.time,
                    trigger=details.get("trigger"),
                )
                order.append(command_id)
        elif kind is EventKind.WORKLOAD_ASSIGNED:
            for command_id in details.get("commands", []):
                tl = timelines.get(command_id)
                if tl is not None and tl.assigned_at is None:
                    tl.assigned_at = record.time
        elif kind is EventKind.COMMAND_COMPLETED:
            if details.get("replayed"):
                continue
            tl = timelines.get(details.get("command"))
            if tl is not None and tl.completed_at is None:
                tl.completed_at = record.time
        elif kind is EventKind.COMMAND_REQUEUED:
            tl = timelines.get(details.get("command"))
            if tl is not None:
                tl.requeues += 1
        elif kind is EventKind.SPECULATION_STARTED:
            tl = timelines.get(details.get("command"))
            if tl is not None:
                tl.speculated = True

    spans_by_command = _execute_spans(tracer)
    controller_spans: Dict[str, float] = {}
    if tracer is not None:
        for span in tracer.finished_spans():
            if span.name == "controller.update":
                command = span.attributes.get("command")
                if command:
                    controller_spans[command] = (
                        controller_spans.get(command, 0.0) + span.duration
                    )

    for command_id in order:
        tl = timelines[command_id]
        if not tl.complete:
            continue
        window = (tl.issued_at, tl.completed_at)
        exec_spans = spans_by_command.get(command_id, [])
        tl.workers = tuple(sorted({s.component for s in exec_spans}))
        # the winning execution: the completed span whose end precedes
        # (or coincides with) the completion event
        winner_end: Optional[float] = None
        for span in exec_spans:
            if not span.attributes.get("completed"):
                continue
            if span.end <= window[1] + 1e-9:
                winner_end = span.end if winner_end is None else min(
                    winner_end, span.end
                )
        if winner_end is None:
            winner_end = window[1]
        compute = _union_length(
            [
                (max(s.start, window[0]), min(s.end, winner_end))
                for s in exec_spans
            ]
        )
        transfer = max(0.0, window[1] - winner_end)
        controller = min(
            controller_spans.get(command_id, 0.0),
            max(0.0, tl.duration - compute - transfer),
        )
        queue = max(0.0, tl.duration - compute - transfer - controller)
        tl.phases = {
            "queue": queue,
            "compute": compute,
            "transfer": transfer,
            "controller": controller,
        }
    return [timelines[c] for c in order]


def _critical_path(
    timelines: List[CommandTimeline],
) -> Tuple[List[str], Dict[str, float]]:
    """Walk trigger edges back from the completion that set the makespan."""
    complete = {tl.command_id: tl for tl in timelines if tl.complete}
    if not complete:
        return [], {phase: 0.0 for phase in PHASES}
    tail = max(complete.values(), key=lambda tl: (tl.completed_at, tl.command_id))
    path: List[str] = []
    node: Optional[CommandTimeline] = tail
    seen = set()
    while node is not None and node.command_id not in seen:
        path.append(node.command_id)
        seen.add(node.command_id)
        node = complete.get(node.trigger) if node.trigger else None
    path.reverse()
    phases = {phase: 0.0 for phase in PHASES}
    for command_id in path:
        for phase in PHASES:
            phases[phase] += complete[command_id].phases.get(phase, 0.0)
    return path, phases


def build_timeline_report(
    events: EventLog, tracer: Optional[Tracer] = None
) -> TimelineReport:
    """The full report: timelines + totals + critical path."""
    timelines = build_command_timelines(events, tracer)
    phase_totals = {phase: 0.0 for phase in PHASES}
    total_seconds = 0.0
    first_issue: Optional[float] = None
    last_done: Optional[float] = None
    for tl in timelines:
        first_issue = (
            tl.issued_at if first_issue is None else min(first_issue, tl.issued_at)
        )
        if not tl.complete:
            continue
        last_done = (
            tl.completed_at if last_done is None else max(last_done, tl.completed_at)
        )
        total_seconds += tl.duration
        for phase in PHASES:
            phase_totals[phase] += tl.phases.get(phase, 0.0)
    makespan = (
        (last_done - first_issue)
        if first_issue is not None and last_done is not None
        else 0.0
    )
    critical_path, critical_phases = _critical_path(timelines)
    return TimelineReport(
        commands=timelines,
        phase_totals=phase_totals,
        total_seconds=total_seconds,
        makespan=makespan,
        critical_path=critical_path,
        critical_path_phases=critical_phases,
    )


def timeline_report_for(runner) -> TimelineReport:
    """Report for a finished :class:`ProjectRunner` (events + its tracer)."""
    tracer = None
    obs = getattr(getattr(runner, "network", None), "obs", None)
    if obs is not None:
        tracer = obs.tracer
    return build_timeline_report(runner.events, tracer)


def des_utilization_breakdown(result) -> Dict[str, float]:
    """Worker-hour breakdown of one DES scheduler run.

    Takes a :class:`~repro.perfmodel.scheduler_sim.SchedulerResult` and
    splits the active workers' total hours into ``compute`` (busy on
    trajectory quanta), ``controller`` (generation barriers: every
    worker stands down while the controller clusters) and ``idle``
    (tail imbalance).  The three sum to ``worker_hours`` exactly.
    """
    spec = result.spec
    active = min(spec.n_workers, spec.n_commands)
    worker_hours = active * result.hours
    compute = result.worker_utilization * active * result.hours
    controller = active * spec.n_generations * spec.cluster_overhead_hours
    controller = min(controller, max(0.0, worker_hours - compute))
    idle = max(0.0, worker_hours - compute - controller)
    return {
        "worker_hours": worker_hours,
        "compute": compute,
        "controller": controller,
        "idle": idle,
        "utilization": compute / worker_hours if worker_hours else 0.0,
    }
