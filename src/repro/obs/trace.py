"""Lightweight distributed tracing over the overlay's virtual clock.

One *trace* follows one command through its whole lifecycle: the
controller issues it, the server queues it, a worker leases and
executes it (checkpointing along the way), the result travels home,
the dedup barrier admits it exactly once and the controller folds it
into the project.  Each step is a :class:`Span` sharing the command's
deterministic trace id; the context crosses endpoint boundaries in
:class:`~repro.net.protocol.Message` headers (and rides inside command
payloads server -> worker), so the server and worker halves of a trace
stitch together exactly as OpenTelemetry-style propagation would.

Everything is clocked on *virtual* seconds and seeded ids — a rerun of
the same scenario produces byte-identical exports.  The exporter emits
Chrome trace-event JSON ("X" complete events), loadable in Perfetto or
``chrome://tracing``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Message-header keys used for context propagation.
TRACE_ID_HEADER = "trace_id"
SPAN_ID_HEADER = "span_id"


def trace_id_for(project_id: str, command_id: str) -> str:
    """Deterministic 16-hex-digit trace id for one command's lifecycle.

    Speculative copies and requeued resumptions of a command share its
    trace — they are chapters of the same story, distinguished by the
    component (worker) that emitted each span.
    """
    digest = hashlib.md5(
        f"{project_id}/{command_id}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


@dataclass
class SpanContext:
    """The propagated part of a span: enough to parent remote children."""

    trace_id: str
    span_id: str

    def inject(self, headers: Dict[str, Any]) -> Dict[str, Any]:
        """Write this context into a message-header dict (returned)."""
        headers[TRACE_ID_HEADER] = self.trace_id
        headers[SPAN_ID_HEADER] = self.span_id
        return headers

    @classmethod
    def extract(cls, headers: Dict[str, Any]) -> Optional["SpanContext"]:
        """Read a context out of message headers (None when absent)."""
        trace_id = headers.get(TRACE_ID_HEADER)
        if not trace_id:
            return None
        return cls(trace_id=str(trace_id), span_id=str(headers.get(SPAN_ID_HEADER, "")))


@dataclass
class Span:
    """One operation within a trace, on the virtual clock.

    ``start == end`` marks an instant event (rendered with a minimal
    duration so Perfetto still shows it).
    """

    name: str
    trace_id: str
    span_id: str
    component: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[str] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """Whether :meth:`Tracer.end` closed this span."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Virtual seconds between start and end (0 while open)."""
        return (self.end - self.start) if self.finished else 0.0

    def context(self) -> SpanContext:
        """The propagatable identity of this span."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)


class Tracer:
    """Collects spans for one deployment; ids are a deterministic sequence."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._sequence = 0

    def _next_span_id(self) -> str:
        self._sequence += 1
        return f"s{self._sequence:06d}"

    def begin(
        self,
        name: str,
        start: float,
        trace_id: str,
        component: str,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span; close it later with :meth:`end`."""
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._next_span_id(),
            component=component,
            start=float(start),
            parent_id=parent_id,
            attributes=dict(attributes),
        )
        self.spans.append(span)
        return span

    def end(self, span: Span, end: float, **attributes: Any) -> Span:
        """Close *span* at virtual time *end* (never before its start)."""
        span.end = max(float(end), span.start)
        span.attributes.update(attributes)
        return span

    def record(
        self,
        name: str,
        start: float,
        end: float,
        trace_id: str,
        component: str,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> Span:
        """Record an already-complete span in one call."""
        span = self.begin(
            name, start, trace_id, component, parent_id=parent_id, **attributes
        )
        return self.end(span, end)

    # -- queries -----------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        """Closed spans, in creation order."""
        return [s for s in self.spans if s.finished]

    def for_trace(self, trace_id: str) -> List[Span]:
        """Every span (open or closed) of one trace."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids, in first-seen order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)


# -- Chrome trace-event export ----------------------------------------------

#: Minimum rendered duration (µs) so instant spans stay visible.
_MIN_DUR_US = 1


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Render finished spans as a Chrome trace-event JSON object.

    Perfetto/``chrome://tracing`` load the result directly.  Each
    overlay component (server, worker, controller) becomes a named
    thread; spans are complete ("X") events with microsecond virtual
    timestamps, sorted by ``ts`` as the validators downstream require.
    """
    components = sorted({s.component for s in tracer.finished_spans()})
    tids = {name: i + 1 for i, name in enumerate(components)}
    events: List[Dict[str, Any]] = []
    for span in tracer.finished_spans():
        events.append(
            {
                "name": span.name,
                "cat": span.trace_id,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": max(round(span.duration * 1e6, 3), _MIN_DUR_US),
                "pid": 1,
                "tid": tids[span.component],
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    **({"parent_id": span.parent_id} if span.parent_id else {}),
                    **span.attributes,
                },
            }
        )
    events.sort(key=lambda e: (e["ts"], e["tid"], e["name"]))
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "copernicus"},
        }
    ]
    for name, tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: Any) -> List[str]:
    """Structural checks on a Chrome trace-event object (or JSON string).

    Returns human-readable problems (empty list = valid): the document
    must parse, duration ("X") events need non-negative ``dur`` and
    ascending ``ts``, and any begin/end ("B"/"E") events must balance
    per thread.  CI runs this over exported artifacts and fails the
    job on any finding.
    """
    problems: List[str] = []
    if isinstance(trace, (str, bytes)):
        try:
            trace = json.loads(trace)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["top level must be an object with a traceEvents array"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    last_ts: Optional[float] = None
    open_stacks: Dict[Tuple[Any, Any], int] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        for key in ("name", "ph"):
            if key not in event:
                problems.append(f"event {i} missing {key!r}")
        ph = event.get("ph")
        if ph == "M":
            continue  # metadata carries no timestamp ordering contract
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i} ({event.get('name')}) missing numeric ts")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {i} ({event.get('name')}) ts {ts} before previous {last_ts}"
            )
        last_ts = ts
        key = (event.get("pid"), event.get("tid"))
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event {i} ({event.get('name')}) X event with bad dur {dur!r}"
                )
        elif ph == "B":
            open_stacks[key] = open_stacks.get(key, 0) + 1
        elif ph == "E":
            if open_stacks.get(key, 0) <= 0:
                problems.append(f"event {i} E without matching B on {key}")
            else:
                open_stacks[key] -= 1
    for key, depth in open_stacks.items():
        if depth:
            problems.append(f"{depth} unclosed B event(s) on thread {key}")
    return problems
