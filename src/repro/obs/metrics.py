"""Process-local metrics registry: counters, gauges, histograms.

The paper's users watch Copernicus through a web interface; its modern
equivalent is a metrics endpoint.  This module is the registry behind
`repro`'s observability layer (:mod:`repro.obs`): every component of
the overlay — transport, servers, workers, controllers, the chaos
harness — registers labelled instruments here, and exporters render
the whole registry as Prometheus text format or JSON lines.

Design notes
------------
* Instruments are *families* keyed by metric name; a family fans out
  into children per label-value tuple (``family.labels(server="srv")``).
  Re-registering a name returns the existing family, so instrumented
  code can call :meth:`MetricsRegistry.inc` without coordinating setup.
* Histograms use fixed, cumulative buckets (Prometheus semantics:
  ``le`` upper bounds plus ``+Inf``), so exporting and re-parsing is
  lossless — the round-trip property the test suite checks.
* Everything is deterministic and wall-clock-free: values change only
  when instrumented code runs, so two runs of the same seeded scenario
  produce identical dumps — except the byte-accounting series, which
  inherit the one-byte wobble of serialized MD results (they embed a
  measured ``wall_seconds``).
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError

#: Default histogram upper bounds (virtual seconds / generic sizes).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
    100.0, 500.0, 1000.0, 5000.0,
)


class Sample:
    """One exported time-series point: name + labels -> value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str], value: float) -> None:
        self.name = name
        self.labels = labels
        self.value = value

    def key(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        """Hashable identity (name + sorted label pairs)."""
        return (self.name, tuple(sorted(self.labels.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sample({self.name}, {self.labels}, {self.value})"


class _Child:
    """Base class for one labelled instrument instance."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class Counter(_Child):
    """Monotonically increasing value."""

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError("counters can only increase")
        self.value += amount


class Gauge(_Child):
    """A value that can go up and down."""

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (may be negative)."""
        self.value += amount


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ConfigurationError("histogram needs at least one bucket")
        self.counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``(+Inf, count)``."""
        out, running = [], 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out


_TYPES = ("counter", "gauge", "histogram")


class MetricFamily:
    """All children of one metric name, sharing label names and type."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if kind not in _TYPES:
            raise ConfigurationError(f"unknown metric type {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets)
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: str):
        """The child instrument for one label-value combination."""
        if set(labels) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {sorted(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self.buckets)
            self._children[key] = child
        return child

    def samples(self) -> Iterable[Sample]:
        """Flatten children into exportable samples.

        Histograms expand into ``_bucket``/``_sum``/``_count`` series,
        exactly as Prometheus clients do.
        """
        for key in sorted(self._children):
            labels = dict(zip(self.labelnames, key))
            child = self._children[key]
            if self.kind == "histogram":
                for le, cum in child.cumulative():
                    le_str = "+Inf" if math.isinf(le) else _format_value(le)
                    yield Sample(
                        f"{self.name}_bucket", {**labels, "le": le_str}, cum
                    )
                yield Sample(f"{self.name}_sum", dict(labels), child.sum)
                yield Sample(f"{self.name}_count", dict(labels), child.count)
            else:
                yield Sample(self.name, labels, child.value)


class MetricsRegistry:
    """All metric families of one process/deployment."""

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._families: Dict[str, MetricFamily] = {}

    # -- registration ------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(
                name, kind, help=help, labelnames=labelnames, buckets=buckets
            )
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {family.kind}"
            )
        if set(family.labelnames) != set(labelnames):
            raise ConfigurationError(
                f"metric {name!r} already registered with labels "
                f"{sorted(family.labelnames)}, got {sorted(labelnames)}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._family(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family."""
        return self._family(name, "histogram", help, labelnames, buckets)

    # -- one-line instrumentation helpers ----------------------------------

    def inc(self, name: str, amount: float = 1.0, help: str = "", **labels) -> None:
        """Increment counter *name* (auto-registering it on first use)."""
        self.counter(name, help=help, labelnames=sorted(labels)).labels(
            **labels
        ).inc(amount)

    def set_gauge(self, name: str, value: float, help: str = "", **labels) -> None:
        """Set gauge *name* (auto-registering it on first use)."""
        self.gauge(name, help=help, labelnames=sorted(labels)).labels(
            **labels
        ).set(value)

    def observe(self, name: str, value: float, help: str = "", **labels) -> None:
        """Observe *value* into histogram *name* (auto-registering)."""
        self.histogram(name, help=help, labelnames=sorted(labels)).labels(
            **labels
        ).observe(value)

    # -- reading -----------------------------------------------------------

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Current value of one counter/gauge child (0.0 when absent).

        The read-side twin of :meth:`inc`/:meth:`set_gauge`: dashboards
        pull their numbers from here instead of scraping component
        attributes.
        """
        family = self._families.get(name)
        if family is None or family.kind == "histogram":
            return default
        key = tuple(str(labels.get(n, "")) for n in family.labelnames)
        child = family._children.get(key)
        return child.value if child is not None else default

    def total(self, name: str) -> float:
        """Sum of one counter/gauge family across all label sets."""
        family = self._families.get(name)
        if family is None or family.kind == "histogram":
            return 0.0
        return sum(child.value for child in family._children.values())

    def families(self) -> List[MetricFamily]:
        """Registered families in name order."""
        return [self._families[n] for n in sorted(self._families)]

    def collect(self) -> List[Sample]:
        """Every exportable sample, deterministically ordered."""
        out: List[Sample] = []
        for family in self.families():
            out.extend(family.samples())
        return out

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Nested ``{name: {label-string: value}}`` view for dashboards."""
        out: Dict[str, Dict[str, float]] = {}
        for sample in self.collect():
            label_str = ",".join(
                f"{k}={v}" for k, v in sorted(sample.labels.items())
            )
            out.setdefault(sample.name, {})[label_str] = sample.value
        return out


# -- exporters ---------------------------------------------------------------


def _format_value(value: float) -> str:
    """Render a float the way Prometheus does (ints stay ints)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")
    )


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples():
            if sample.labels:
                label_str = ",".join(
                    f'{k}="{_escape_label(str(v))}"'
                    for k, v in sample.labels.items()
                )
                lines.append(
                    f"{sample.name}{{{label_str}}} {_format_value(sample.value)}"
                )
            else:
                lines.append(f"{sample.name} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def to_json_lines(registry: MetricsRegistry) -> str:
    """One JSON object per sample, one sample per line."""
    lines = []
    for family in registry.families():
        for sample in family.samples():
            lines.append(
                json.dumps(
                    {
                        "name": sample.name,
                        "type": family.kind,
                        "labels": sample.labels,
                        "value": sample.value,
                    },
                    sort_keys=True,
                )
            )
    return "\n".join(lines) + "\n"


def _parse_label_block(block: str) -> Dict[str, str]:
    """Parse ``k="v",k2="v2"`` respecting escaped quotes."""
    labels: Dict[str, str] = {}
    i, n = 0, len(block)
    while i < n:
        eq = block.index("=", i)
        key = block[i:eq].strip().lstrip(",").strip()
        assert block[eq + 1] == '"', f"malformed label block {block!r}"
        j = eq + 2
        out = []
        while j < n:
            ch = block[j]
            if ch == "\\":
                nxt = block[j + 1]
                out.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt)
                )
                j += 2
                continue
            if ch == '"':
                break
            out.append(ch)
            j += 1
        labels[key] = "".join(out)
        i = j + 1
    return labels


def parse_prometheus_text(
    text: str,
) -> Tuple[Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float], Dict[str, str]]:
    """Parse Prometheus text format back into ``{sample-key: value}``.

    Returns ``(values, types)`` where *values* maps
    ``(name, sorted-label-pairs)`` to the parsed float and *types* maps
    family name to its declared type.  Used by the exporter round-trip
    tests; intentionally strict — malformed lines raise.
    """
    values: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    types: Dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name = line[: line.index("{")]
            block = line[line.index("{") + 1 : line.rindex("}")]
            labels = _parse_label_block(block)
            value_str = line[line.rindex("}") + 1 :].strip()
        else:
            name, value_str = line.rsplit(None, 1)
            labels = {}
        if value_str == "+Inf":
            value = math.inf
        elif value_str == "-Inf":
            value = -math.inf
        else:
            value = float(value_str)
        values[(name, tuple(sorted(labels.items())))] = value
    return values, types
