"""Pluggable adaptive-sampling strategies: the ``Adapter`` protocol.

MAccelerator's thesis is that the *selection scheme* — which
microstates new trajectories are spawned from — is a first-class
design axis of adaptive sampling, alongside adaptive frequency and
degree of parallelization.  This module turns the MSM controller's
weighting step into that axis: an :class:`Adapter` maps a transition
count matrix to spawning weights, a registry maps scheme names to
adapter factories, and :func:`register_adapter` lets third parties add
schemes without touching :mod:`repro.core`.

Shipped schemes (the MAccelerator set):

``uniform``
    Even weights over discovered states (the paper's *even* regime).
``min-counts``
    Weights ``1 / (1 + visits)`` — explore least-visited states.
``weighted-counts``
    ``(1 + visits)^(-n)`` with tunable exponent *n*: ``n = 0`` is
    uniform, ``n = 1`` is min-counts, larger *n* explores harder.
``uncertainty``
    Dirichlet-posterior transition-uncertainty weights (the paper's
    *adaptive* regime).

The pre-laboratory scheme names ``even`` / ``adaptive`` /
``mincounts`` keep working through deprecation shims
(:data:`LEGACY_SCHEME_ALIASES`); new code should use the canonical
names above.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Union

import numpy as np

from repro.msm.adaptive import (
    even_weights,
    mincounts_weights,
    uncertainty_weights,
    weighted_counts_weights,
)
from repro.util.errors import ConfigurationError

__all__ = [
    "Adapter",
    "UniformAdapter",
    "MinCountsAdapter",
    "WeightedCountsAdapter",
    "UncertaintyAdapter",
    "LEGACY_SCHEME_ALIASES",
    "register_adapter",
    "registered_adapters",
    "normalize_scheme",
    "resolve_adapter",
]


class Adapter(abc.ABC):
    """One adaptive-sampling selection scheme.

    Given the generation's transition count matrix, produce the
    normalised spawning weights the controller hands to
    :func:`repro.msm.adaptive.allocate_starts`.  Adapters must be
    deterministic functions of their inputs — all randomness in the
    adaptive loop lives in the controller's seeded streams — so a
    sweep over schemes is reproducible bit for bit.
    """

    #: Canonical scheme name (set per subclass; used in reports).
    name: str = "adapter"

    @abc.abstractmethod
    def weights(self, counts: np.ndarray) -> np.ndarray:
        """Spawning weights (non-negative, summing to 1) from counts."""

    def describe(self) -> Dict:
        """Report-friendly description (name plus tunable parameters)."""
        return {"scheme": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


class UniformAdapter(Adapter):
    """Even weights over discovered states (the paper's early regime)."""

    name = "uniform"

    def weights(self, counts: np.ndarray) -> np.ndarray:
        """Uniform over visited states."""
        return even_weights(counts)


class MinCountsAdapter(Adapter):
    """Explore least-visited states: weights ``1 / (1 + visits)``."""

    name = "min-counts"

    def weights(self, counts: np.ndarray) -> np.ndarray:
        """Inverse-visit-count weights."""
        return mincounts_weights(counts)


class WeightedCountsAdapter(Adapter):
    """``(1 + visits)^(-n)`` with a tunable exploration exponent *n*."""

    name = "weighted-counts"

    def __init__(self, n: float = 1.0) -> None:
        if n < 0:
            raise ConfigurationError(f"exponent n must be >= 0, got {n}")
        self.n = float(n)

    def weights(self, counts: np.ndarray) -> np.ndarray:
        """Weighted-counts weights at this adapter's exponent."""
        return weighted_counts_weights(counts, n=self.n)

    def describe(self) -> Dict:
        """Scheme name plus the exponent."""
        return {"scheme": self.name, "n": self.n}


class UncertaintyAdapter(Adapter):
    """Transition-uncertainty weights (the paper's *adaptive* regime)."""

    name = "uncertainty"

    def __init__(self, prior: float = 1.0) -> None:
        if prior <= 0:
            raise ConfigurationError(f"prior must be positive, got {prior}")
        self.prior = float(prior)

    def weights(self, counts: np.ndarray) -> np.ndarray:
        """Dirichlet-posterior row-variance weights."""
        return uncertainty_weights(counts, prior=self.prior)

    def describe(self) -> Dict:
        """Scheme name plus the Dirichlet prior strength."""
        return {"scheme": self.name, "prior": self.prior}


#: Scheme registry: canonical name -> adapter factory (kwargs allowed).
_ADAPTER_REGISTRY: Dict[str, Callable[..., Adapter]] = {
    "uniform": UniformAdapter,
    "min-counts": MinCountsAdapter,
    "weighted-counts": WeightedCountsAdapter,
    "uncertainty": UncertaintyAdapter,
}

#: Pre-laboratory scheme names, kept working with a deprecation shim.
LEGACY_SCHEME_ALIASES: Dict[str, str] = {
    "even": "uniform",
    "adaptive": "uncertainty",
    "mincounts": "min-counts",
}


def register_adapter(
    name: str, factory: Callable[..., Adapter], overwrite: bool = False
) -> None:
    """Register an adapter *factory* under a canonical scheme *name*.

    The plugin hook: once registered, the scheme is accepted anywhere a
    weighting name is (``MSMProjectConfig.weighting``, the sweep
    harness, the CLI) without touching core code.

    Raises
    ------
    ConfigurationError
        If *name* collides with an existing scheme or legacy alias and
        *overwrite* is not set, or *factory* is not callable.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError("adapter name must be a non-empty string")
    if not callable(factory):
        raise ConfigurationError("adapter factory must be callable")
    if not overwrite and (
        name in _ADAPTER_REGISTRY or name in LEGACY_SCHEME_ALIASES
    ):
        raise ConfigurationError(
            f"adapter {name!r} is already registered; pass overwrite=True "
            f"to replace it"
        )
    _ADAPTER_REGISTRY[name] = factory


def registered_adapters() -> List[str]:
    """Canonical scheme names, sorted (legacy aliases excluded)."""
    return sorted(_ADAPTER_REGISTRY)


def normalize_scheme(scheme: str) -> str:
    """Canonicalise a scheme name, warning on legacy aliases.

    Raises
    ------
    ConfigurationError
        If *scheme* names no registered adapter; the message lists the
        registered scheme names so the fix is in the traceback.
    """
    if scheme in LEGACY_SCHEME_ALIASES:
        from repro.compat import warn_deprecated

        canonical = LEGACY_SCHEME_ALIASES[scheme]
        warn_deprecated(
            f"weighting scheme {scheme!r}",
            f"{canonical!r} (see repro.lab.adapters)",
            stacklevel=4,
        )
        return canonical
    if scheme not in _ADAPTER_REGISTRY:
        raise ConfigurationError(
            f"unknown weighting scheme {scheme!r}; registered adapters: "
            f"{registered_adapters()}"
        )
    return scheme


def resolve_adapter(
    scheme: Union[str, Adapter], **params
) -> Adapter:
    """Coerce a scheme name (or pass through an instance) to an Adapter.

    ``params`` are forwarded to the registered factory (e.g.
    ``resolve_adapter("weighted-counts", n=2.0)``); passing params with
    an :class:`Adapter` instance is an error, since the instance is
    already configured.
    """
    if isinstance(scheme, Adapter):
        if params:
            raise ConfigurationError(
                "cannot apply weighting_params to an Adapter instance"
            )
        return scheme
    if not isinstance(scheme, str):
        raise ConfigurationError(
            f"weighting must be a scheme name or Adapter instance, "
            f"got {type(scheme).__name__}"
        )
    canonical = normalize_scheme(scheme)
    return _ADAPTER_REGISTRY[canonical](**params)
