"""The adaptive-strategy laboratory.

`repro.lab` is the scoreboard for adaptive sampling: pluggable
selection schemes (:mod:`repro.lab.adapters`), exact-ground-truth
Markov-chain toy systems (:mod:`repro.md.models.markov_chain`), a
model-vs-truth :class:`ConvergenceChecker`
(:mod:`repro.lab.convergence`), and a sweep harness that drives the
[scheme x adaptive frequency x parallelism] grid through the DES and
reports which adaptive scheme wins where (:mod:`repro.lab.sweep`).
"""

__all__ = [
    "Adapter",
    "UniformAdapter",
    "MinCountsAdapter",
    "WeightedCountsAdapter",
    "UncertaintyAdapter",
    "register_adapter",
    "registered_adapters",
    "resolve_adapter",
    "ConvergenceChecker",
    "ConvergenceReport",
    "SweepConfig",
    "SweepResult",
    "run_sweep",
    "render_report",
]

_LAZY = {
    "Adapter": ("repro.lab.adapters", "Adapter"),
    "UniformAdapter": ("repro.lab.adapters", "UniformAdapter"),
    "MinCountsAdapter": ("repro.lab.adapters", "MinCountsAdapter"),
    "WeightedCountsAdapter": ("repro.lab.adapters", "WeightedCountsAdapter"),
    "UncertaintyAdapter": ("repro.lab.adapters", "UncertaintyAdapter"),
    "register_adapter": ("repro.lab.adapters", "register_adapter"),
    "registered_adapters": ("repro.lab.adapters", "registered_adapters"),
    "resolve_adapter": ("repro.lab.adapters", "resolve_adapter"),
    "ConvergenceChecker": ("repro.lab.convergence", "ConvergenceChecker"),
    "ConvergenceReport": ("repro.lab.convergence", "ConvergenceReport"),
    "SweepConfig": ("repro.lab.sweep", "SweepConfig"),
    "SweepResult": ("repro.lab.sweep", "SweepResult"),
    "run_sweep": ("repro.lab.sweep", "run_sweep"),
    "render_report": ("repro.lab.sweep", "render_report"),
}


def __getattr__(name: str):
    # Lazy exports keep `repro.core.msm_controller -> repro.lab.adapters`
    # from dragging in repro.lab.sweep (which imports repro.api and
    # would close an import cycle back into repro.core).
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
