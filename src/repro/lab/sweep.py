"""The laboratory sweep: scheme x adaptive frequency x parallelism.

MAccelerator's design-space claim is that three axes determine how
much adaptive sampling buys you: the *selection scheme* (which states
new trajectories start from), the *adaptive frequency* (how often the
model is rebuilt and spawns redirected — here, how few steps each
command runs before the generation boundary), and the *degree of
parallelization* (how many trajectories run per generation).  This
module drives that grid through the real deployment stack — every cell
is a full :func:`repro.api.run` with the adaptive MSM controller, a
ground-truth Markov-chain model and a
:class:`~repro.lab.convergence.ConvergenceChecker` — under one fixed
simulated-step budget, then scores each cell by time-to-threshold on a
model-vs-truth metric.

Outputs are deliberately wall-clock-free so ``BENCH_adaptive.json`` is
bit-identical across reruns at the same seed: simulated steps are the
only clock.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.lab.convergence import ConvergenceChecker, time_to_threshold
from repro.md.models.markov_chain import build_markov_chain
from repro.util.errors import ConfigurationError

__all__ = ["SweepConfig", "SweepResult", "run_sweep", "render_report"]


@dataclass
class SweepConfig:
    """One laboratory sweep: the grid, the budget and the scoring rule.

    Attributes
    ----------
    model / model_params:
        A registered ground-truth chain model (``markov-ala20`` /
        ``markov-mb``).
    schemes:
        Adapter scheme names to race (resolved through the registry,
        so registered third-party schemes work too).
    steps_per_command:
        The adaptive-frequency axis: steps each command runs before
        its generation boundary — smaller means the strategy adapts
        more often.
    n_trajectories:
        The parallelism axis: concurrent trajectories per generation.
    total_steps:
        Fixed aggregate simulated-step budget per cell; generations
        per cell are derived as ``total_steps // (steps * trajs)`` so
        every cell spends the same simulated time.
    metric / threshold:
        Scoring rule: simulated steps until *metric* (a
        :class:`ConvergenceChecker` key, default ``stationary_tv``)
        first drops to *threshold*.
    baseline:
        The scheme speedups are quoted against (must be in *schemes*).
    """

    model: str = "markov-ala20"
    model_params: Dict = field(default_factory=dict)
    schemes: Sequence[str] = ("uniform", "min-counts", "uncertainty")
    steps_per_command: Sequence[int] = (200, 400)
    n_trajectories: Sequence[int] = (4, 8)
    total_steps: int = 96000
    report_interval: int = 10
    lag_frames: int = 2
    n_clusters: int = 64
    seed: int = 0
    n_workers: int = 1
    metric: str = "stationary_tv"
    threshold: float = 0.35
    baseline: str = "uniform"

    def __post_init__(self) -> None:
        from repro.lab.adapters import normalize_scheme

        self.schemes = tuple(normalize_scheme(s) for s in self.schemes)
        self.steps_per_command = tuple(int(s) for s in self.steps_per_command)
        self.n_trajectories = tuple(int(p) for p in self.n_trajectories)
        self.baseline = normalize_scheme(self.baseline)
        if not self.schemes:
            raise ConfigurationError("sweep needs at least one scheme")
        if self.baseline not in self.schemes:
            raise ConfigurationError(
                f"baseline {self.baseline!r} must be one of the swept "
                f"schemes {list(self.schemes)}"
            )
        if any(s < 1 for s in self.steps_per_command) or not self.steps_per_command:
            raise ConfigurationError("steps_per_command entries must be >= 1")
        if any(p < 1 for p in self.n_trajectories) or not self.n_trajectories:
            raise ConfigurationError("n_trajectories entries must be >= 1")
        if self.total_steps < 1:
            raise ConfigurationError("total_steps must be >= 1")

    def generations_for(self, steps: int, trajs: int) -> int:
        """Generations a cell gets under the fixed step budget."""
        return max(2, self.total_steps // (steps * trajs))

    def to_dict(self) -> Dict:
        """JSON-ready copy of the grid definition."""
        return {
            "model": self.model,
            "model_params": dict(self.model_params),
            "schemes": list(self.schemes),
            "steps_per_command": list(self.steps_per_command),
            "n_trajectories": list(self.n_trajectories),
            "total_steps": self.total_steps,
            "report_interval": self.report_interval,
            "lag_frames": self.lag_frames,
            "n_clusters": self.n_clusters,
            "seed": self.seed,
            "n_workers": self.n_workers,
            "metric": self.metric,
            "threshold": self.threshold,
            "baseline": self.baseline,
        }


def _jsonable(value):
    """NaN/inf -> None so the JSON is strict and diff-stable."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _run_cell(config: SweepConfig, scheme: str, steps: int, trajs: int) -> Dict:
    """Run one grid cell through the full deployment stack."""
    from repro.api import run as api_run
    from repro.core.msm_controller import AdaptiveMSMController, MSMProjectConfig

    spec = build_markov_chain(config.model, **config.model_params).spec
    checker = ConvergenceChecker(spec)
    generations = config.generations_for(steps, trajs)
    msm_config = MSMProjectConfig(
        model=config.model,
        model_params=dict(config.model_params),
        n_starting_conformations=1,
        trajectories_per_start=trajs,
        steps_per_command=steps,
        report_interval=config.report_interval,
        n_clusters=config.n_clusters,
        lag_frames=config.lag_frames,
        n_generations=generations,
        weighting=scheme,
        integrator="markov-chain",
        seed=config.seed,
    )
    controller = AdaptiveMSMController(msm_config, convergence=checker)
    outcome = api_run(
        controller=controller,
        name=f"lab-{scheme}-f{steps}-p{trajs}",
        n_workers=config.n_workers,
        seed=config.seed,
        segment_steps=max(steps, 1),
    )
    history = [
        {key: _jsonable(value) for key, value in record.items()}
        for record in checker.history
    ]
    return {
        "scheme": scheme,
        "steps_per_command": steps,
        "n_trajectories": trajs,
        "n_generations": generations,
        "simulated_steps": controller.simulated_steps,
        "status": outcome.status,
        "time_to_threshold": _jsonable(
            time_to_threshold(
                checker.history,
                metric=config.metric,
                threshold=config.threshold,
            )
        ),
        "final": history[-1] if history else {},
        "history": history,
    }


def _compare_cell(
    config: SweepConfig, cells: List[Dict], steps: int, trajs: int
) -> Dict:
    """Baseline-relative scoring of one (frequency, parallelism) cell."""
    times = {
        cell["scheme"]: cell["time_to_threshold"]
        for cell in cells
        if cell["steps_per_command"] == steps
        and cell["n_trajectories"] == trajs
    }
    base = times.get(config.baseline)
    cap = float(config.total_steps)
    speedups: Dict[str, Optional[float]] = {}
    for scheme, tt in times.items():
        if scheme == config.baseline:
            continue
        if tt is None and base is None:
            # both censored at the budget: no information either way
            speedups[scheme] = None
        else:
            # censored sides are scored at the budget cap, so the ratio
            # is a bound (lower bound when the baseline is censored,
            # upper bound when the scheme is) rather than 0/inf
            speedups[scheme] = (cap if base is None else base) / (
                cap if tt is None else tt
            )
    reached = {s: t for s, t in times.items() if t is not None}
    winner = min(reached, key=reached.get) if reached else None
    return {
        "steps_per_command": steps,
        "n_trajectories": trajs,
        "baseline": config.baseline,
        "time_to_threshold": times,
        "speedup_vs_baseline": {
            scheme: _jsonable(value) for scheme, value in speedups.items()
        },
        "winner": winner,
    }


@dataclass
class SweepResult:
    """All cells of one sweep plus the baseline-relative comparisons."""

    config: SweepConfig
    cells: List[Dict]
    comparisons: List[Dict]

    def to_dict(self) -> Dict:
        """The ``BENCH_adaptive.json`` payload (wall-clock-free)."""
        return {
            "version": 1,
            "kind": "adaptive-strategy-sweep",
            "config": self.config.to_dict(),
            "cells": self.cells,
            "comparisons": self.comparisons,
        }

    def to_json(self) -> str:
        """Deterministic JSON text (sorted keys, strict floats)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True, allow_nan=False)

    def speedup(
        self, scheme: str, steps: Optional[int] = None, trajs: Optional[int] = None
    ) -> Optional[float]:
        """Speedup of *scheme* vs the baseline in one cell.

        Defaults to the first grid cell; ``None`` means neither side
        reached the threshold.
        """
        steps = self.config.steps_per_command[0] if steps is None else steps
        trajs = self.config.n_trajectories[0] if trajs is None else trajs
        for comparison in self.comparisons:
            if (
                comparison["steps_per_command"] == steps
                and comparison["n_trajectories"] == trajs
            ):
                return comparison["speedup_vs_baseline"].get(scheme)
        return None

    def capped_time(
        self, scheme: str, steps: Optional[int] = None, trajs: Optional[int] = None
    ) -> float:
        """Time-to-threshold of *scheme* in one cell, capped at the budget.

        A scheme that never reached the threshold is scored at
        ``config.total_steps`` — a conservative lower bound on its true
        time-to-threshold, which makes cross-seed aggregates (the CI
        regression floor) well-defined for rare-event cells.
        """
        steps = self.config.steps_per_command[0] if steps is None else steps
        trajs = self.config.n_trajectories[0] if trajs is None else trajs
        for cell in self.cells:
            if (
                cell["scheme"] == scheme
                and cell["steps_per_command"] == steps
                and cell["n_trajectories"] == trajs
            ):
                tt = cell["time_to_threshold"]
                return float(self.config.total_steps if tt is None else tt)
        raise ConfigurationError(
            f"no cell for scheme={scheme!r} steps={steps} trajs={trajs}"
        )


def run_sweep(config: SweepConfig, log=None) -> SweepResult:
    """Run the full grid; deterministic for a fixed config.

    *log*, when given, receives one progress line per completed cell.
    """
    cells: List[Dict] = []
    for steps in config.steps_per_command:
        for trajs in config.n_trajectories:
            for scheme in config.schemes:
                cell = _run_cell(config, scheme, steps, trajs)
                cells.append(cell)
                if log is not None:
                    tt = cell["time_to_threshold"]
                    log(
                        f"[lab] {scheme:>16s} f={steps:<5d} p={trajs:<3d} "
                        f"time-to-threshold="
                        f"{'never' if tt is None else f'{tt:.0f} steps'}"
                    )
    comparisons = [
        _compare_cell(config, cells, steps, trajs)
        for steps in config.steps_per_command
        for trajs in config.n_trajectories
    ]
    return SweepResult(config=config, cells=cells, comparisons=comparisons)


def _format_tt(value) -> str:
    return "never" if value is None else f"{value:,.0f}"


def _format_speedup(value) -> str:
    if value is None:
        return "n/a"
    return f"{value:.2f}x"


def _speedup_label(comparison: Dict, scheme: str, baseline: str) -> str:
    """Speedup with a >=/<= prefix when one side was budget-censored."""
    value = comparison["speedup_vs_baseline"].get(scheme)
    if value is None:
        return "n/a"
    base_tt = comparison["time_to_threshold"].get(baseline)
    scheme_tt = comparison["time_to_threshold"].get(scheme)
    prefix = ">=" if base_tt is None else ("<=" if scheme_tt is None else "")
    return prefix + _format_speedup(value)


def render_report(result: SweepResult) -> str:
    """The "which adaptive scheme wins where" markdown report."""
    config = result.config
    lines = [
        "# Adaptive-strategy sweep report",
        "",
        f"Model: `{config.model}` | metric: `{config.metric}` <= "
        f"{config.threshold} | budget: {config.total_steps:,} simulated "
        f"steps per cell | seed: {config.seed}",
        "",
        "Time-to-threshold is in *simulated steps* (lower is better); "
        f"speedups are vs `{config.baseline}` in the same cell.",
        "",
        "## Grid",
        "",
        "| steps/command | parallel trajs | scheme | time-to-threshold "
        "| speedup vs baseline | final "
        + config.metric.replace("_", " ")
        + " |",
        "|---:|---:|:---|---:|---:|---:|",
    ]
    by_cell = {
        (c["steps_per_command"], c["n_trajectories"]): c
        for c in result.comparisons
    }
    for cell in result.cells:
        key = (cell["steps_per_command"], cell["n_trajectories"])
        comparison = by_cell[key]
        if cell["scheme"] == config.baseline:
            speedup = "1.00x"
        else:
            speedup = _speedup_label(comparison, cell["scheme"], config.baseline)
        final_metric = cell["final"].get(config.metric)
        lines.append(
            f"| {cell['steps_per_command']} | {cell['n_trajectories']} "
            f"| `{cell['scheme']}` | {_format_tt(cell['time_to_threshold'])} "
            f"| {speedup} "
            f"| {'n/a' if final_metric is None else f'{final_metric:.3f}'} |"
        )
    lines += ["", "## Which scheme wins where", ""]
    for comparison in result.comparisons:
        winner = comparison["winner"]
        lines.append(
            f"- steps/command={comparison['steps_per_command']}, "
            f"parallel={comparison['n_trajectories']}: "
            + (
                f"**`{winner}`** wins"
                if winner
                else "no scheme reached the threshold"
            )
        )
    lines += [
        "",
        "## Speedup vs baseline (time-to-threshold)",
        "",
        "```",
    ]
    for comparison in result.comparisons:
        header = (
            f"f={comparison['steps_per_command']} "
            f"p={comparison['n_trajectories']}"
        )
        for scheme, value in sorted(
            comparison["speedup_vs_baseline"].items()
        ):
            if value is None:
                bar, label = "", "n/a"
            else:
                bar = "#" * min(int(round(value * 10)), 40)
                label = _speedup_label(comparison, scheme, config.baseline)
            lines.append(f"{header}  {scheme:>16s} |{bar:<40s}| {label}")
    lines += ["```", ""]
    return "\n".join(lines)
