"""Model-vs-truth scoring for the adaptive-strategy laboratory.

A :class:`ConvergenceChecker` is built from a
:class:`~repro.md.models.markov_chain.MarkovChainSpec` — the *exact*
transition matrix the toy system samples from — and scores the MSM
implied by a pool of trajectories against it:

* **stationary_tv** — total-variation distance between the estimated
  stationary distribution (reversible maximum-likelihood estimate on
  the trajectories' largest weakly-connected component, embedded back
  into all ``K`` true states) and the exact one.  Undiscovered states
  carry their full stationary mass as error, so the metric rewards
  exploration — exactly the axis adaptive schemes compete on.  The
  reversible estimator matters: it infers relative basin populations
  from barrier-top statistics without waiting for rare re-crossing
  events, which is also the production-MSM practice.
* **timescale_rel_error** — relative error of the slowest implied
  timescale (both sides in simulation steps; the model side accounts
  for the frame stride via the lag conversion, since implied
  timescales are invariant under matrix powers but transition
  probabilities are not).
* **frobenius_error** — relative Frobenius distance between the
  frame-resolution truth ``T^(stride * lag)`` and the full-``K``
  estimate (undiscovered states are identity rows, a documented error
  contribution).

Each evaluation appends a plain-scalar record (generation, simulated
steps, metrics) to ``history``; :class:`ConvergenceReport` wraps such
a history with the time-to-threshold arithmetic the sweep harness and
CI regression floor read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.md.models.markov_chain import MarkovChainSpec
from repro.msm.analysis import implied_timescales, stationary_distribution
from repro.msm.connectivity import trim_counts
from repro.msm.counts import count_matrix_multi
from repro.msm.estimation import (
    estimate_transition_matrix,
    reversible_transition_matrix,
)
from repro.util.errors import ConfigurationError, EstimationError

__all__ = ["ConvergenceChecker", "ConvergenceReport", "time_to_threshold"]


def time_to_threshold(
    history: Sequence[Dict],
    metric: str = "stationary_tv",
    threshold: float = 0.2,
) -> Optional[float]:
    """Simulated steps at which *metric* first drops to *threshold*.

    Linearly interpolates between the generation records bracketing the
    crossing (the metric is only measured at generation boundaries);
    returns ``None`` if the threshold is never reached.
    """
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be positive, got {threshold}")
    prev_steps, prev_value = 0.0, None
    for record in history:
        steps = float(record["simulated_steps"])
        value = float(record[metric])
        if np.isfinite(value) and value <= threshold:
            if prev_value is None or prev_value <= threshold:
                return steps
            frac = (prev_value - threshold) / (prev_value - value)
            return prev_steps + frac * (steps - prev_steps)
        if np.isfinite(value):
            prev_steps, prev_value = steps, value
    return None


@dataclass
class ConvergenceReport:
    """A scored run: the per-generation history plus its headline numbers."""

    history: List[Dict] = field(default_factory=list)

    def metric(self, key: str) -> np.ndarray:
        """One metric as an array over generations."""
        return np.array([record[key] for record in self.history], dtype=float)

    def time_to_threshold(
        self, metric: str = "stationary_tv", threshold: float = 0.2
    ) -> Optional[float]:
        """See :func:`time_to_threshold`."""
        return time_to_threshold(self.history, metric=metric, threshold=threshold)

    def final(self) -> Dict:
        """The last generation's record (empty dict if never evaluated)."""
        return dict(self.history[-1]) if self.history else {}


class ConvergenceChecker:
    """Scores trajectory pools against an exact chain spec.

    Duck-typed against the controller hook: the
    :class:`~repro.core.msm_controller.AdaptiveMSMController` calls
    ``evaluate(frames_by_traj, lag_frames=..., frame_stride=...,
    generation=..., simulated_steps=...)`` at every generation boundary
    and records the returned scalars.
    """

    def __init__(self, spec: MarkovChainSpec, prior: float = 0.0) -> None:
        self.spec = spec
        self.prior = float(prior)
        self.truth_stationary = spec.stationary_distribution()
        truth_ts = implied_timescales(spec.transition_matrix, lag_time=1.0, k=1)
        self.truth_timescale = float(truth_ts[0])
        if not np.isfinite(self.truth_timescale):
            raise ConfigurationError(
                "chain spec has no finite slowest timescale; not a usable "
                "ground truth"
            )
        self.history: List[Dict] = []

    def report(self) -> ConvergenceReport:
        """The accumulated history as a :class:`ConvergenceReport`."""
        return ConvergenceReport(history=list(self.history))

    def evaluate(
        self,
        frames_by_traj: Sequence[np.ndarray],
        *,
        lag_frames: int,
        frame_stride: int = 1,
        generation: int = 0,
        simulated_steps: int = 0,
    ) -> Dict:
        """Score the pool; append and return the plain-scalar record."""
        spec = self.spec
        n_states = spec.n_states
        dtrajs = [
            spec.discretize(np.asarray(frames))
            for frames in frames_by_traj
            if len(frames)
        ]
        try:
            counts = count_matrix_multi(dtrajs, n_states, lag_frames)
        except EstimationError:
            # nothing countable yet (no trajectories, or all shorter
            # than the lag): score the empty model honestly
            counts = np.zeros((n_states, n_states))
        visited = (counts.sum(axis=0) + counts.sum(axis=1)) > 0
        step_lag = int(lag_frames) * int(frame_stride)
        truth_frame = spec.frame_matrix(step_lag)

        record: Dict = {
            "generation": int(generation),
            "simulated_steps": int(simulated_steps),
            "n_states_discovered": int(visited.sum()),
            "discovered_fraction": float(visited.mean()),
        }

        # full-K estimate: undiscovered/unleft states are identity rows
        estimate_full = estimate_transition_matrix(counts, prior=self.prior)
        record["frobenius_error"] = float(
            np.linalg.norm(estimate_full - truth_frame)
            / np.linalg.norm(truth_frame)
        )

        # spectral quantities from the reversible MLE on the largest
        # weakly-connected component (strong connectivity would gate
        # everything on rare re-crossing events instead)
        stationary_tv = 1.0
        timescale_rel_error = 1.0
        timescale_estimate = float("nan")
        trimmed, kept = trim_counts(counts, directed=False)
        if len(kept) >= 1 and trimmed.sum() > 0:
            try:
                try:
                    # 1e-6 in the symmetric flows is far below the tv
                    # resolution this metric is read at; the default
                    # 1e-10 is unreachable on single-count edges
                    estimate_core = reversible_transition_matrix(
                        trimmed, tol=1e-6, max_iter=30000
                    )
                except EstimationError:
                    # sparse early pools: fall back to the forward MLE
                    # with a small regularising prior (no absorbing
                    # rows) rather than a worst-case score
                    estimate_core = estimate_transition_matrix(
                        trimmed, prior=max(self.prior, 1e-3)
                    )
                pi_full = np.zeros(n_states)
                pi_full[np.asarray(kept, dtype=int)] = stationary_distribution(
                    estimate_core
                )
                stationary_tv = 0.5 * float(
                    np.abs(pi_full - self.truth_stationary).sum()
                )
                if len(kept) >= 2:
                    ts = implied_timescales(
                        estimate_core, lag_time=float(step_lag), k=1
                    )[0]
                    if np.isfinite(ts):
                        timescale_estimate = float(ts)
                        timescale_rel_error = float(
                            abs(ts - self.truth_timescale)
                            / self.truth_timescale
                        )
            except EstimationError:
                # degenerate early-generation pools keep the worst-case
                # scores; later generations overwrite them honestly
                pass
        record["stationary_tv"] = stationary_tv
        record["timescale_rel_error"] = timescale_rel_error
        record["timescale_estimate"] = timescale_estimate
        record["timescale_true"] = self.truth_timescale
        self.history.append(record)
        return record
