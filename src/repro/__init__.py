"""Copernicus reproduction: parallel adaptive molecular dynamics.

This package is a from-scratch reproduction of

    Pronk et al., "Copernicus: a new paradigm for parallel adaptive
    molecular dynamics", SC 2011.

It contains the Copernicus framework itself (an overlay network of
servers distributing massively parallel simulation *commands* to
workers, driven by plugin *controllers*), every substrate the paper
depends on (a molecular-dynamics engine standing in for Gromacs, a
Markov-state-model library, a Bennett-acceptance-ratio free-energy
estimator, a discrete-event simulation kernel) and a calibrated
performance model that regenerates the paper's scaling figures.

Subpackages
-----------
``repro.util``
    Units, seeded RNG streams, serialization, errors.
``repro.des``
    Discrete-event simulation kernel (generator coroutines).
``repro.md``
    Molecular-dynamics engine: force fields, integrators, models.
``repro.analysis``
    RMSD/Kabsch alignment, statistics, folding observables.
``repro.msm``
    Markov state models: clustering, estimation, validation,
    adaptive-sampling weights.
``repro.net``
    Simulated authenticated overlay network.
``repro.server`` / ``repro.worker``
    Copernicus servers (queues, matching, heartbeats) and workers
    (platforms, executables).
``repro.core``
    The controller framework and the MSM / free-energy plugins.
``repro.fep``
    Bennett acceptance ratio free-energy estimation.
``repro.perfmodel``
    Strong-scaling performance model and scheduler simulation.
"""

from repro.version import __version__

__all__ = ["__version__"]
