"""Weighted histogram analysis method (WHAM).

Combines biased samples from umbrella windows into the unbiased free
energy profile by the standard self-consistent equations
(Kumar et al., J. Comput. Chem. 13, 1011 (1992)):

``P(b) = sum_i n_i(b) / sum_i N_i exp(-(U_i(b) - f_i)/kT)``
``exp(-f_i/kT) = sum_b P(b) exp(-U_i(b)/kT)``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.fep.umbrella import UmbrellaWindow
from repro.util.errors import EstimationError


@dataclass
class WHAMResult:
    """Unbiased profile from WHAM."""

    bin_centers: np.ndarray
    free_energy: np.ndarray          # kT-scaled, min-shifted to 0
    probability: np.ndarray
    window_offsets: np.ndarray       # f_i per window
    n_iterations: int
    converged: bool


def wham(
    samples: Sequence[np.ndarray],
    windows: Sequence[UmbrellaWindow],
    kt: float,
    n_bins: int = 60,
    tol: float = 1e-8,
    max_iter: int = 20000,
) -> WHAMResult:
    """Solve the WHAM equations for 1-D umbrella data.

    Parameters
    ----------
    samples:
        One coordinate array per window.
    windows:
        The bias of each window (aligned with *samples*).

    Raises
    ------
    EstimationError
        On inconsistent input or non-convergence.
    """
    if len(samples) != len(windows) or len(windows) < 2:
        raise EstimationError("need one sample set per window (>= 2 windows)")
    if kt <= 0:
        raise EstimationError("kt must be positive")
    samples = [np.asarray(s, dtype=float) for s in samples]
    if any(len(s) == 0 for s in samples):
        raise EstimationError("every window needs at least one sample")

    lo = min(s.min() for s in samples)
    hi = max(s.max() for s in samples)
    edges = np.linspace(lo, hi, n_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])

    counts = np.stack([np.histogram(s, bins=edges)[0] for s in samples])
    n_per_window = counts.sum(axis=1).astype(float)
    total_counts = counts.sum(axis=0).astype(float)
    bias = np.stack([w.bias(centers) for w in windows])  # (W, B)
    boltz = np.exp(-bias / kt)

    f = np.zeros(len(windows))  # window free energies in kT units of energy
    prob = np.full(n_bins, 1.0 / n_bins)
    it = 0
    for it in range(1, max_iter + 1):
        denom = (n_per_window[:, None] * boltz * np.exp(f / kt)[:, None]).sum(
            axis=0
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            prob_new = np.where(denom > 0, total_counts / denom, 0.0)
        norm = prob_new.sum()
        if norm <= 0:
            raise EstimationError("WHAM produced an empty distribution")
        prob_new /= norm
        z = (boltz * prob_new[None, :]).sum(axis=1)
        if np.any(z <= 0):
            raise EstimationError("a window has no overlap with the data")
        f_new = -kt * np.log(z)
        f_new -= f_new[0]
        delta = np.abs(f_new - f).max()
        prob, f = prob_new, f_new
        if delta < tol:
            break
    converged = delta < tol

    with np.errstate(divide="ignore"):
        fe = -kt * np.log(np.where(prob > 0, prob, np.nan))
    fe -= np.nanmin(fe)
    return WHAMResult(
        bin_centers=centers,
        free_energy=fe,
        probability=prob,
        window_offsets=f,
        n_iterations=it,
        converged=converged,
    )


def free_energy_difference(
    result: WHAMResult, region_a: Tuple[float, float], region_b: Tuple[float, float],
    kt: float,
) -> float:
    """dF = F(B) - F(A) between two coordinate regions (basin integrals)."""
    centers = result.bin_centers
    in_a = (centers >= region_a[0]) & (centers <= region_a[1])
    in_b = (centers >= region_b[0]) & (centers <= region_b[1])
    pa = result.probability[in_a].sum()
    pb = result.probability[in_b].sum()
    if pa <= 0 or pb <= 0:
        raise EstimationError("a region has no probability mass")
    return float(-kt * np.log(pb / pa))
