"""Bennett acceptance ratio (BAR) free-energy estimation.

Given forward work samples ``w_f = U_1(x) - U_0(x)`` with ``x ~ state
0`` and reverse samples ``w_r = U_0(x) - U_1(x)`` with ``x ~ state 1``,
BAR solves

``sum_f fermi(beta (w_f - dF) + M) = sum_r fermi(beta (w_r + dF) - M)``

with ``M = ln(n_f / n_r)``, which is the minimum-variance unbiased
combination of both directions (Bennett 1976).  Exponential averaging
(Zwanzig) is provided as the classic one-sided baseline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.optimize import brentq
from scipy.special import logsumexp

from repro.util.errors import EstimationError


def _check_work(values: np.ndarray, name: str) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or len(values) == 0:
        raise EstimationError(f"{name} must be a non-empty 1-D array")
    if not np.all(np.isfinite(values)):
        raise EstimationError(f"{name} contains non-finite work values")
    return values


def exp_free_energy(forward_work: np.ndarray, kt: float = 1.0) -> float:
    """Zwanzig exponential averaging: ``dF = -kT ln <exp(-w/kT)>``."""
    w = _check_work(forward_work, "forward_work")
    if kt <= 0:
        raise EstimationError("kt must be positive")
    return float(-kt * (logsumexp(-w / kt) - np.log(len(w))))


def _bar_objective(
    df: float, w_f: np.ndarray, w_r: np.ndarray, kt: float, m: float
) -> float:
    # log-sum-exp of fermi sums for numerical stability
    log_f = logsumexp(-np.logaddexp(0.0, (w_f - df) / kt + m))
    log_r = logsumexp(-np.logaddexp(0.0, (w_r + df) / kt - m))
    return log_f - log_r


def bar_free_energy(
    forward_work: np.ndarray,
    reverse_work: np.ndarray,
    kt: float = 1.0,
    tol: float = 1e-10,
) -> float:
    """Solve the BAR self-consistency equation for the free-energy gap.

    Returns dF = F_1 - F_0 in the same energy unit as the work values.
    """
    w_f = _check_work(forward_work, "forward_work")
    w_r = _check_work(reverse_work, "reverse_work")
    if kt <= 0:
        raise EstimationError("kt must be positive")
    m = np.log(len(w_f) / len(w_r))

    # bracket the root around the naive two-sided estimate
    center = 0.5 * (np.mean(w_f) - np.mean(w_r))
    span = max(
        4.0 * (np.std(w_f) + np.std(w_r) + kt),
        abs(np.mean(w_f)) + abs(np.mean(w_r)) + kt,
    )
    lo, hi = center - span, center + span
    f_lo = _bar_objective(lo, w_f, w_r, kt, m)
    f_hi = _bar_objective(hi, w_f, w_r, kt, m)
    for _ in range(60):
        if f_lo * f_hi <= 0:
            break
        span *= 2.0
        lo, hi = center - span, center + span
        f_lo = _bar_objective(lo, w_f, w_r, kt, m)
        f_hi = _bar_objective(hi, w_f, w_r, kt, m)
    else:
        raise EstimationError("could not bracket the BAR root")
    return float(
        brentq(_bar_objective, lo, hi, args=(w_f, w_r, kt, m), xtol=tol)
    )


def bar_error(
    forward_work: np.ndarray,
    reverse_work: np.ndarray,
    df: float,
    kt: float = 1.0,
) -> float:
    """Asymptotic standard error of the BAR estimate (Bennett 1976).

    ``var(dF)/kT^2 = [ <f^2>/<f>^2 - 1 ]/n_f + [ <g^2>/<g>^2 - 1 ]/n_r``
    with ``f = fermi((w_f - dF)/kT + M)`` and ``g = fermi((w_r + dF)/kT - M)``.
    """
    w_f = _check_work(forward_work, "forward_work")
    w_r = _check_work(reverse_work, "reverse_work")
    if kt <= 0:
        raise EstimationError("kt must be positive")
    m = np.log(len(w_f) / len(w_r))

    def fermi(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(np.clip(x, -500, 500)))

    f = fermi((w_f - df) / kt + m)
    g = fermi((w_r + df) / kt - m)
    mean_f, mean_g = f.mean(), g.mean()
    if mean_f <= 0 or mean_g <= 0:
        raise EstimationError("no phase-space overlap; BAR error undefined")
    var = (np.mean(f**2) / mean_f**2 - 1.0) / len(w_f) + (
        np.mean(g**2) / mean_g**2 - 1.0
    ) / len(w_r)
    return float(kt * np.sqrt(max(var, 0.0)))


def bar_with_error(
    forward_work: np.ndarray, reverse_work: np.ndarray, kt: float = 1.0
) -> Tuple[float, float]:
    """Convenience: ``(dF, standard_error)``."""
    df = bar_free_energy(forward_work, reverse_work, kt=kt)
    return df, bar_error(forward_work, reverse_work, df, kt=kt)
