"""The ``fepsample`` executable: sample one lambda window.

A free-energy command samples a single window and evaluates the energy
difference to its neighbours on those samples — the per-window work
values BAR consumes.  Sampling is either exact (harmonic windows admit
direct Boltzmann draws) or by Langevin dynamics on the same potential,
which exercises the full MD code path at a cost.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.fep.systems import HarmonicWindow
from repro.md.forcefield.bonded import HarmonicBondForce  # noqa: F401  (doc ref)
from repro.md.integrators import LangevinIntegrator
from repro.md.simulation import Simulation
from repro.md.system import State, System
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream
from repro.util.units import KB


class _WindowForce:
    """Adapter: a HarmonicWindow as an MD force on one 1-D particle."""

    def __init__(self, window: HarmonicWindow) -> None:
        self.window = window

    def energy_forces(self, positions: np.ndarray):
        """Return (energy, forces) of the window's harmonic bias."""
        x = positions[:, 0]
        energy = float(self.window.energy(x).sum())
        forces = np.zeros_like(positions)
        forces[:, 0] = -self.window.k * (x - self.window.x0)
        return energy, forces


def sample_window(
    window: HarmonicWindow,
    n_samples: int,
    kt: float,
    seed: int,
    method: str = "exact",
    md_steps_per_sample: int = 50,
) -> np.ndarray:
    """Draw Boltzmann samples from one window.

    ``method="exact"`` uses direct Gaussian draws; ``method="md"`` runs
    Langevin dynamics and subsamples, exercising the engine code path.
    """
    rng = RandomStream(seed)
    if method == "exact":
        return window.sample(n_samples, kt, rng)
    if method != "md":
        raise ConfigurationError(f"unknown sampling method {method!r}")
    temperature = kt / KB
    system = System(masses=[1.0], forces=[_WindowForce(window)], dim=1)
    state = State(
        np.array([[window.x0]]),
        system.maxwell_boltzmann_velocities(temperature, rng),
    )
    integrator = LangevinIntegrator(
        0.05, temperature, friction=5.0, rng=rng.spawn(1)[0]
    )
    sim = Simulation(system, integrator, state)
    sim.run(20 * md_steps_per_sample)  # equilibrate
    samples = np.empty(n_samples)
    for i in range(n_samples):
        sim.run(md_steps_per_sample)
        samples[i] = sim.state.positions[0, 0]
    return samples


def run_fep_window(payload: Dict) -> Dict:
    """The ``fepsample`` executable body.

    Payload keys: ``k``, ``x0`` (this window), optional ``k_prev`` /
    ``x0_prev`` and ``k_next`` / ``x0_next`` (neighbours), ``n_samples``,
    ``kt``, ``seed``, ``method``.

    Returns per-neighbour work arrays: ``work_to_prev`` / ``work_to_next``
    are ``U_neighbour(x) - U_self(x)`` on this window's samples.
    """
    window = HarmonicWindow(k=float(payload["k"]), x0=float(payload.get("x0", 0.0)))
    kt = float(payload.get("kt", 1.0))
    n = int(payload.get("n_samples", 100))
    seed = int(payload.get("seed", 0))
    method = payload.get("method", "exact")
    samples = sample_window(window, n, kt, seed, method=method)
    u_self = window.energy(samples)
    out: Dict = {"n_samples": n, "window_index": payload.get("window_index", 0)}
    if "k_next" in payload:
        nxt = HarmonicWindow(
            k=float(payload["k_next"]), x0=float(payload.get("x0_next", 0.0))
        )
        out["work_to_next"] = nxt.energy(samples) - u_self
    if "k_prev" in payload:
        prv = HarmonicWindow(
            k=float(payload["k_prev"]), x0=float(payload.get("x0_prev", 0.0))
        )
        out["work_to_prev"] = prv.energy(samples) - u_self
    return out
