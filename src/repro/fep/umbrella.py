"""Umbrella sampling along a 1-D coordinate.

The paper lists umbrella sampling among the ensemble methods its
framework hosts.  This module provides the sampling side: harmonic
bias windows along a reaction coordinate and a Metropolis sampler of
the biased distribution, producing the per-window sample sets WHAM
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream, ensure_stream


@dataclass(frozen=True)
class UmbrellaWindow:
    """A harmonic bias ``0.5 k (x - center)^2`` on the coordinate."""

    center: float
    k: float

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ConfigurationError("bias spring constant must be positive")

    def bias(self, x: np.ndarray) -> np.ndarray:
        """Bias energy at coordinate values *x*."""
        d = np.asarray(x, dtype=float) - self.center
        return 0.5 * self.k * d * d


def window_ladder(
    lo: float, hi: float, n_windows: int, k: float
) -> List[UmbrellaWindow]:
    """Evenly spaced windows covering ``[lo, hi]``."""
    if n_windows < 2:
        raise ConfigurationError("need at least two windows")
    return [
        UmbrellaWindow(center=float(c), k=k)
        for c in np.linspace(lo, hi, n_windows)
    ]


def metropolis_sample(
    energy: Callable[[float], float],
    window: UmbrellaWindow,
    n_samples: int,
    kt: float,
    rng: int | RandomStream | None = 0,
    step: float = 0.1,
    burn_in: int = 500,
    thin: int = 5,
) -> np.ndarray:
    """Metropolis sampling of ``exp(-(E(x) + bias(x)) / kT)``.

    Parameters
    ----------
    energy:
        The unbiased potential, a scalar function of the coordinate.
    """
    if n_samples < 1 or burn_in < 0 or thin < 1:
        raise ConfigurationError("invalid sampling parameters")
    if kt <= 0 or step <= 0:
        raise ConfigurationError("kt and step must be positive")
    stream = ensure_stream(rng)
    gen = stream.generator
    x = window.center
    e = energy(x) + float(window.bias(x))
    samples = np.empty(n_samples)
    total_moves = burn_in + n_samples * thin
    proposals = gen.normal(scale=step, size=total_moves)
    uniforms = gen.random(total_moves)
    count = 0
    for move in range(total_moves):
        x_new = x + proposals[move]
        e_new = energy(x_new) + float(window.bias(x_new))
        if e_new <= e or uniforms[move] < np.exp(-(e_new - e) / kt):
            x, e = x_new, e_new
        if move >= burn_in and (move - burn_in) % thin == 0:
            samples[count] = x
            count += 1
            if count == n_samples:
                break
    return samples[:count]
