"""Analytic test systems for free-energy estimation.

A lambda *window* is a harmonic potential ``U(x) = 0.5 k (x - x0)^2``
whose spring constant and centre interpolate between two end states.
Harmonic free energies are exact — ``F = -kT/2 ln(2 pi kT / k)`` per
degree of freedom — so every estimator in :mod:`repro.fep.bar` can be
validated quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


@dataclass(frozen=True)
class HarmonicWindow:
    """One lambda state: a 1-D harmonic well."""

    k: float
    x0: float = 0.0

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ConfigurationError(f"spring constant must be positive, got {self.k}")

    def energy(self, x: np.ndarray) -> np.ndarray:
        """Potential energy at positions *x*."""
        d = np.asarray(x, dtype=float) - self.x0
        return 0.5 * self.k * d * d

    def free_energy(self, kt: float) -> float:
        """Absolute free energy, ``-kT/2 ln(2 pi kT / k)``."""
        if kt <= 0:
            raise ConfigurationError("kt must be positive")
        return -0.5 * kt * np.log(2.0 * np.pi * kt / self.k)

    def sample(self, n: int, kt: float, rng: RandomStream) -> np.ndarray:
        """Exact Boltzmann samples (Gaussian with sigma^2 = kT/k)."""
        if n < 1:
            raise ConfigurationError("need at least one sample")
        sigma = np.sqrt(kt / self.k)
        return self.x0 + sigma * rng.normal(size=n)

    @staticmethod
    def interpolate(
        a: "HarmonicWindow", b: "HarmonicWindow", lam: float
    ) -> "HarmonicWindow":
        """Geometric-k / linear-centre interpolation between end states."""
        if not 0.0 <= lam <= 1.0:
            raise ConfigurationError(f"lambda must be in [0, 1], got {lam}")
        k = a.k ** (1.0 - lam) * b.k**lam
        x0 = (1.0 - lam) * a.x0 + lam * b.x0
        return HarmonicWindow(k=k, x0=x0)


def harmonic_free_energy_difference(
    a: HarmonicWindow, b: HarmonicWindow, kt: float
) -> float:
    """Exact dF = F_b - F_a = (kT/2) ln(k_b / k_a)."""
    return b.free_energy(kt) - a.free_energy(kt)


def window_ladder(
    a: HarmonicWindow, b: HarmonicWindow, n_windows: int
) -> list:
    """Evenly spaced lambda windows from *a* to *b* inclusive."""
    if n_windows < 2:
        raise ConfigurationError("need at least two windows")
    lams = np.linspace(0.0, 1.0, n_windows)
    return [HarmonicWindow.interpolate(a, b, lam) for lam in lams]
