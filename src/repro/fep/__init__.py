"""Free-energy perturbation: Bennett acceptance ratio and baselines.

The paper ships a second plugin besides MSM sampling: "Bennett
Acceptance Ratio free energy perturbation calculations".  This
subpackage provides the estimator (with its asymptotic error), the
exponential-averaging (Zwanzig) baseline, analytic harmonic test
systems, and the window sampler the BAR controller's commands execute.
"""

from repro.fep.bar import bar_free_energy, bar_error, exp_free_energy
from repro.fep.systems import HarmonicWindow, harmonic_free_energy_difference
from repro.fep.sampling import run_fep_window, sample_window
from repro.fep.umbrella import UmbrellaWindow, metropolis_sample
from repro.fep.wham import wham, WHAMResult, free_energy_difference

__all__ = [
    "bar_free_energy",
    "bar_error",
    "exp_free_energy",
    "HarmonicWindow",
    "harmonic_free_energy_difference",
    "run_fep_window",
    "sample_window",
    "UmbrellaWindow",
    "metropolis_sample",
    "wham",
    "WHAMResult",
    "free_energy_difference",
]
