"""Platform plugins: how a worker discovers its resources.

Paper section 2.3: "Upon startup, a worker gets its platform from the
user ... The worker then calls an associated platform plugin.  That
plugin determines the available resources, such as number of
processing cores and amount of RAM."
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.util.errors import ConfigurationError


@dataclass
class PlatformInfo:
    """Resources a platform plugin detected."""

    name: str
    cores: int
    nodes: int = 1
    ram_mb: int = 1024
    interconnect: str = "shared-memory"


class SMPPlatform:
    """A shared-memory machine: one node, several cores."""

    name = "smp"

    def __init__(self, cores: Optional[int] = None, ram_mb: int = 4096) -> None:
        if cores is not None and cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {cores}")
        self._cores = cores
        self._ram_mb = ram_mb

    def detect(self) -> PlatformInfo:
        """Detect (or accept user-specified) resources."""
        cores = self._cores if self._cores is not None else os.cpu_count() or 1
        return PlatformInfo(
            name=self.name,
            cores=cores,
            nodes=1,
            ram_mb=self._ram_mb,
            interconnect="shared-memory",
        )


class MPISimPlatform:
    """A simulated message-passing cluster: nodes x cores_per_node.

    Stands in for OpenMPI on a real cluster; the product is what
    matters to workload matching.
    """

    name = "mpi"

    def __init__(
        self,
        nodes: int,
        cores_per_node: int,
        interconnect: str = "infiniband",
        ram_mb_per_node: int = 32768,
    ) -> None:
        if nodes < 1 or cores_per_node < 1:
            raise ConfigurationError(
                f"invalid cluster shape {nodes} x {cores_per_node}"
            )
        self.nodes = nodes
        self.cores_per_node = cores_per_node
        self.interconnect = interconnect
        self.ram_mb_per_node = ram_mb_per_node

    def detect(self) -> PlatformInfo:
        """Report the cluster allocation as one resource pool."""
        return PlatformInfo(
            name=self.name,
            cores=self.nodes * self.cores_per_node,
            nodes=self.nodes,
            ram_mb=self.ram_mb_per_node * self.nodes,
            interconnect=self.interconnect,
        )


#: Platform name -> factory, as user-selectable plugins.
PLATFORM_REGISTRY: Dict[str, type] = {
    SMPPlatform.name: SMPPlatform,
    MPISimPlatform.name: MPISimPlatform,
}
