"""Adaptive command coalescing: merge compatible MD commands into batches.

The batched kernel (:mod:`repro.md.batched`) makes R replicas of one
model nearly as cheap as one, but the distribution stack hands workers
*commands* — one replica each.  This module closes that gap: queued
``mdrun`` commands that agree on every batch-compatible field (model,
step budget, integrator parameters — see
:data:`repro.md.engine.BATCH_COMPATIBLE_FIELDS`) are merged into a
single ``mdrun_batch`` command, executed through
:meth:`~repro.md.engine.MDEngine.run_batched`, and the result split
back into per-command payloads.

The merge depth is *adaptive*: it is whatever compatible work is
actually present, capped by the worker's announced ``batch_capacity``
— a lone command runs serially, a burst of ensemble generation
coalesces to the cap.  Commands carrying a resume checkpoint never
coalesce (a requeued command resumes serially), so recovery paths are
untouched.

Crucially, coalescing is invisible above the worker: every member
command keeps its own lease, trace span, heartbeat checkpoint, journal
record and result submission, and the per-command results are
bit-identical to serial execution (the batched kernel's contract), so
the server's dedup barrier, speculation races and crash recovery work
unchanged on merged commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.command import Command
from repro.md.engine import BatchedMDTask, MDTask
from repro.util.errors import ConfigurationError

#: The only executable whose commands coalesce.
COALESCIBLE_EXECUTABLE = "mdrun"
#: The executable a merged command runs under.
BATCH_EXECUTABLE = "mdrun_batch"


@dataclass
class BatchCommand(Command):
    """A merged command: one ``mdrun_batch`` payload, many members.

    Exists only inside a worker (or its executor) between coalescing
    and result splitting; it never crosses the wire — the members do.
    """

    members: List[Command] = field(default_factory=list)


def coalesce_key(command: Command) -> Optional[Tuple]:
    """Grouping key for *command*, or ``None`` when it must run serially.

    Two commands with equal (non-``None``) keys propagate identically
    batched or not, so they may share one kernel call.
    """
    if command.executable != COALESCIBLE_EXECUTABLE:
        return None
    if command.checkpoint is not None:
        return None
    payload = command.payload
    if payload.get("checkpoint") is not None:
        return None
    # float32 runs are outside the bit-identity contract the batched
    # kernel guarantees, and an explicit dispatch="serial" is a request
    # to stay off the batched path — neither may coalesce.
    if payload.get("precision", "float64") != "float64":
        return None
    if payload.get("dispatch", "auto") == "serial":
        return None
    try:
        return (
            # never merge across tenants: a batch carries one project's
            # journal/lease identity and its riders must share it
            command.project_id,
            command.executable,
            payload["model"],
            int(payload["n_steps"]),
            int(payload.get("report_interval", 100)),
            payload.get("integrator", "langevin"),
            float(payload.get("temperature", 300.0)),
            float(payload.get("friction", 1.0)),
            float(payload.get("timestep", 0.02)),
            payload.get("precision", "float64"),
            payload.get("dispatch", "auto"),
            repr(sorted(payload.get("model_params", {}).items())),
        )
    except (KeyError, TypeError, ValueError):
        return None


def merge_commands(group: Sequence[Command]) -> BatchCommand:
    """Merge same-key commands into one :class:`BatchCommand`."""
    if len(group) < 2:
        raise ConfigurationError("a batch needs >= 2 member commands")
    btask = BatchedMDTask.from_tasks(
        [MDTask.from_payload(command.payload) for command in group],
        batch_id=group[0].command_id,
    )
    return BatchCommand(
        command_id="batch:" + "+".join(c.command_id for c in group),
        project_id=group[0].project_id,
        executable=BATCH_EXECUTABLE,
        payload=btask.to_payload(),
        min_cores=max(c.min_cores for c in group),
        preferred_cores=max(c.preferred_cores for c in group),
        priority=min(c.priority for c in group),
        origin_server=group[0].origin_server,
        members=list(group),
    )


def split_results(batch: BatchCommand, result: dict) -> List[Tuple[Command, dict]]:
    """Pair each member command with its per-command result payload."""
    payloads = result["results"]
    if len(payloads) != len(batch.members):
        raise ConfigurationError(
            f"batch result has {len(payloads)} entries for "
            f"{len(batch.members)} members"
        )
    return list(zip(batch.members, payloads))


def coalesce_commands(
    commands: Sequence[Command], capacity: int
) -> List[Command]:
    """Adaptively merge a command list, preserving first-seen order.

    Greedy over the list: each still-unmerged coalescible command
    starts a group and absorbs later same-key commands up to
    *capacity*.  Groups of one (and non-coalescible commands,
    including already-merged :class:`BatchCommand` entries) pass
    through untouched, so the function is idempotent.
    """
    if capacity <= 1 or len(commands) <= 1:
        return list(commands)
    out: List[Command] = []
    used = [False] * len(commands)
    for i, command in enumerate(commands):
        if used[i]:
            continue
        used[i] = True
        key = coalesce_key(command)
        if key is None:
            out.append(command)
            continue
        group = [command]
        for j in range(i + 1, len(commands)):
            if len(group) >= capacity:
                break
            if not used[j] and coalesce_key(commands[j]) == key:
                group.append(commands[j])
                used[j] = True
        out.append(merge_commands(group) if len(group) > 1 else command)
    return out
