"""Parallel command execution within a worker.

A worker whose platform reports several cores can run the commands of
one workload concurrently — each command in its own OS process, the
in-process analogue of one node hosting several independent
simulations.  Results are byte-identical to serial execution (commands
are deterministic given their payloads); only wall-time changes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.core.command import Command
from repro.util.errors import ConfigurationError
from repro.worker.executable import run_executable


def _run_one(name: str, payload: dict) -> Tuple[dict, bool]:
    """Module-level trampoline (picklable for the process pool)."""
    return run_executable(name, payload)


class ParallelExecutor:
    """Runs a list of commands over a process pool.

    Parameters
    ----------
    n_processes:
        Pool size; match the worker's core count.
    """

    def __init__(self, n_processes: int = 2) -> None:
        if n_processes < 1:
            raise ConfigurationError("n_processes must be >= 1")
        self.n_processes = int(n_processes)

    def run_commands(
        self, commands: Sequence[Command]
    ) -> List[Tuple[Command, Optional[dict]]]:
        """Execute every command; returns ``[(command, result), ...]``.

        Results arrive in submission order.  A command whose checkpoint
        is set resumes from it, exactly as in serial execution.  With
        one process (or one command) the pool is skipped entirely.
        """
        prepared: List[Tuple[Command, dict]] = []
        for command in commands:
            payload = dict(command.payload)
            if command.checkpoint is not None:
                payload["checkpoint"] = command.checkpoint
            prepared.append((command, payload))

        if self.n_processes == 1 or len(prepared) <= 1:
            out = []
            for command, payload in prepared:
                result, _ = _run_one(command.executable, payload)
                out.append((command, result))
            return out

        with ProcessPoolExecutor(max_workers=self.n_processes) as pool:
            futures = [
                pool.submit(_run_one, command.executable, payload)
                for command, payload in prepared
            ]
            out = []
            for (command, _), future in zip(prepared, futures):
                result, _ = future.result()
                out.append((command, result))
            return out
