"""Parallel command execution within a worker.

A worker whose platform reports several cores can run the commands of
one workload concurrently — each command in its own OS process, the
in-process analogue of one node hosting several independent
simulations.  Compatible MD commands can additionally be *coalesced*
(``coalesce_limit``) into batched kernel calls before distribution, so
one process propagates a whole replica stack.  Results are
byte-identical to serial execution either way (commands are
deterministic given their payloads, and the batched kernel is
bit-identical per replica); only wall-time changes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.command import Command
from repro.util.errors import ConfigurationError
from repro.worker.coalesce import BatchCommand, coalesce_commands, split_results
from repro.worker.executable import run_executable


def _run_one(name: str, payload: dict) -> Tuple[dict, bool]:
    """Module-level trampoline (picklable for the process pool)."""
    return run_executable(name, payload)


class ParallelExecutor:
    """Runs a list of commands over a process pool.

    Parameters
    ----------
    n_processes:
        Pool size; match the worker's core count.
    coalesce_limit:
        Maximum compatible MD commands merged into one batched kernel
        call before distribution over the pool (1 = no coalescing; see
        :mod:`repro.worker.coalesce`).
    """

    def __init__(self, n_processes: int = 2, coalesce_limit: int = 1) -> None:
        if n_processes < 1:
            raise ConfigurationError("n_processes must be >= 1")
        if coalesce_limit < 1:
            raise ConfigurationError("coalesce_limit must be >= 1")
        self.n_processes = int(n_processes)
        self.coalesce_limit = int(coalesce_limit)

    def run_commands(
        self, commands: Sequence[Command]
    ) -> List[Tuple[Command, Optional[dict]]]:
        """Execute every command; returns ``[(command, result), ...]``.

        Results are returned in submission order, one entry per input
        command even when commands were coalesced into shared batched
        executions.  A command whose checkpoint is set resumes from it,
        exactly as in serial execution.  With one process (or one
        prepared execution) the pool is skipped entirely.
        """
        entries = coalesce_commands(commands, self.coalesce_limit)
        prepared: List[Tuple[Command, dict]] = []
        for entry in entries:
            payload = dict(entry.payload)
            if entry.checkpoint is not None:
                payload["checkpoint"] = entry.checkpoint
            prepared.append((entry, payload))

        if self.n_processes == 1 or len(prepared) <= 1:
            raw = []
            for entry, payload in prepared:
                result, _ = _run_one(entry.executable, payload)
                raw.append((entry, result))
        else:
            with ProcessPoolExecutor(max_workers=self.n_processes) as pool:
                futures = [
                    pool.submit(_run_one, entry.executable, payload)
                    for entry, payload in prepared
                ]
                raw = []
                for (entry, _), future in zip(prepared, futures):
                    result, _ = future.result()
                    raw.append((entry, result))

        # expand batches back to per-command results, in submission order
        by_id: Dict[str, Tuple[Command, Optional[dict]]] = {}
        for entry, result in raw:
            if isinstance(entry, BatchCommand):
                for member, member_result in split_results(entry, result):
                    by_id[member.command_id] = (member, member_result)
            else:
                by_id[entry.command_id] = (entry, result)
        return [by_id[command.command_id] for command in commands]
