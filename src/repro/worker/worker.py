"""The worker client: announce, fetch workloads, execute, heartbeat.

A worker bootstraps by conveying its platform resources and installed
executables to its nearest server, then loops: request a workload,
execute each command in checkpointed segments (heartbeating with the
latest checkpoint after every segment — the shared-filesystem recovery
path of paper section 2.3), and return results.

Failure injection: ``crash()`` makes the worker stop mid-segment and
never heartbeat again, which is exactly how a node loss looks to the
server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.command import Command
from repro.net.protocol import Message, MessageType
from repro.net.transport import Endpoint, Network
from repro.obs.trace import Span, trace_id_for
from repro.worker.coalesce import BatchCommand, coalesce_commands, split_results
from repro.worker.executable import ExecutableRegistry, default_registry
from repro.worker.platform import SMPPlatform
from repro.util.errors import ConfigurationError, TransientCommunicationError


@dataclass
class ExecutionRecord:
    """Bookkeeping for one executed command."""

    command_id: str
    segments: int = 0
    completed: bool = False


@dataclass
class _ActiveCommand:
    """A command mid-execution, parked between paced work cycles."""

    command: Command
    payload: dict
    record: ExecutionRecord
    accumulated: Optional[dict] = None
    #: The open ``worker.execute`` span covering this execution.
    span: Optional[Span] = None
    #: For a coalesced batch: per-member state (command, record, span).
    #: Members carry the observable identity — the batch itself opens
    #: no span and joins no history, so traces and records are
    #: indistinguishable from unmerged execution.
    members: Optional[List["_ActiveCommand"]] = None


class Worker(Endpoint):
    """A worker attached to a server.

    Parameters
    ----------
    name / network:
        Endpoint identity.
    server:
        Name of the nearest server (must be linked on the overlay).
    platform:
        A platform plugin instance (default: SMP with 1 core).
    executables:
        Installed executables (default: all built-ins).
    segment_steps:
        MD steps between checkpoint heartbeats while executing.
    segments_per_cycle:
        When set, at most this many segments execute per
        :meth:`work_once` call; the command parks and resumes next
        cycle.  This makes execution take *virtual time* — the pacing
        knob behind the chaos ``STRAGGLER`` fault (``None`` = run every
        command to completion within one cycle, the historic behavior).
    pending_results_limit:
        Cap on parked undeliverable results; beyond it the oldest is
        dropped (and counted) — a long partition must not grow worker
        memory without bound.
    batch_capacity:
        Maximum compatible ``mdrun`` commands coalesced into one
        batched kernel call (see :mod:`repro.worker.coalesce`).  The
        default of 1 disables coalescing; the capacity is announced to
        the server so workload matching can hand over rider commands.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        server: str,
        platform=None,
        executables: Optional[ExecutableRegistry] = None,
        segment_steps: int = 2000,
        segments_per_cycle: Optional[int] = None,
        pending_results_limit: int = 64,
        batch_capacity: int = 1,
    ) -> None:
        super().__init__(name, network)
        if segment_steps < 1:
            raise ConfigurationError("segment_steps must be >= 1")
        if segments_per_cycle is not None and segments_per_cycle < 1:
            raise ConfigurationError("segments_per_cycle must be >= 1")
        if pending_results_limit < 1:
            raise ConfigurationError("pending_results_limit must be >= 1")
        if batch_capacity < 1:
            raise ConfigurationError("batch_capacity must be >= 1")
        self.server = server
        self.platform = platform or SMPPlatform(cores=1)
        self.executables = executables or default_registry()
        self.segment_steps = segment_steps
        self.segments_per_cycle = segments_per_cycle
        self.batch_capacity = int(batch_capacity)
        self.crashed = False
        #: Degradation factor in (0, 1]: fraction of ``segment_steps``
        #: actually executed per segment (chaos "slow worker" fault).
        self.throttle = 1.0
        #: Seconds this worker's heartbeat/poll schedule is offset from
        #: the deployment's cycle boundary (seeded jitter; breaks the
        #: thundering herd of every worker beating in lockstep).
        self.poll_offset = 0.0
        #: Executed-command log (for tests and reports).
        self.history: List[ExecutionRecord] = []
        #: Results that could not reach the server (partition/crash);
        #: resubmitted at the start of the next work cycle.  Bounded by
        #: ``pending_results_limit`` and deduplicated by command id.
        self._pending_results: List[Tuple[Command, dict]] = []
        self.pending_results_limit = pending_results_limit
        #: Parked results dropped because the bound was hit.
        self.pending_results_dropped = 0
        #: The command currently mid-execution under pacing, if any.
        self._active: Optional[_ActiveCommand] = None
        #: Commands fetched but not yet started (pacing backlog).
        self._backlog: List[Command] = []
        #: Crash trigger: called before each segment; return True to die.
        self._crash_hook: Optional[Callable[[str, int], bool]] = None
        #: Finished ``worker.execute`` spans by command id, kept until
        #: the result is delivered so retries re-send the same context.
        self._exec_spans: Dict[str, Span] = {}

    def _count(self, name: str, amount: float = 1.0, help: str = "") -> None:
        """Increment a worker-labelled counter on the shared registry."""
        self.obs.metrics.inc(name, amount, help=help, worker=self.name)

    # -- endpoint ------------------------------------------------------------

    def handle(self, message: Message) -> Optional[dict]:
        """Workers ignore overlay fetches; they initiate all their traffic."""
        if message.type == MessageType.COMMAND_FETCH:
            return None  # not a server: keep walking
        return None

    # -- failure injection --------------------------------------------------

    def crash(self) -> None:
        """Simulate node loss: stop executing and never heartbeat again."""
        self.crashed = True

    def set_crash_hook(self, hook: Callable[[str, int], bool]) -> None:
        """Install a predicate ``(command_id, segment_index) -> bool``
        that, when returning True, kills the worker mid-command."""
        self._crash_hook = hook

    # -- protocol actions --------------------------------------------------

    def capabilities_payload(self) -> dict:
        """The announce body: platform resources plus executables."""
        info = self.platform.detect()
        return {
            "worker": self.name,
            "platform": info.name,
            "cores": info.cores,
            "executables": self.executables.names,
            "batch_capacity": self.batch_capacity,
        }

    def announce(self, now: float = 0.0) -> dict:
        """Present this worker to its server."""
        payload = self.capabilities_payload()
        payload["now"] = now
        return self.send(self.server, MessageType.WORKER_ANNOUNCE, payload)

    def heartbeat(
        self, now: float, checkpoints: Optional[Dict[str, dict]] = None
    ) -> Optional[dict]:
        """Send a liveness signal (suppressed when crashed).

        A heartbeat lost to a transient fault (partition, crashed
        server) is simply skipped — the worker keeps executing and
        retries liveness on the next cycle, exactly like a real node
        behind a flaky uplink.
        """
        if self.crashed:
            return None
        body = {"worker": self.name, "now": now}
        if checkpoints:
            body["checkpoints"] = checkpoints
        try:
            return self.send(self.server, MessageType.HEARTBEAT, body)
        except TransientCommunicationError:
            return None

    def request_workload(self, now: float = 0.0) -> List[Command]:
        """Ask the server for commands matching this worker.

        Returns an empty workload when the server is transiently
        unreachable (the worker idles this cycle and polls again).
        The request carries the worker's clock so the server can gate
        quarantined workers against virtual time.
        """
        if self.crashed:
            return []
        payload = self.capabilities_payload()
        payload["now"] = now
        try:
            response = self.send(
                self.server,
                MessageType.WORKLOAD_REQUEST,
                payload,
            )
        except TransientCommunicationError:
            return []
        return [Command.from_payload(p) for p in response.get("commands", [])]

    def run_command(self, command: Command, now: float = 0.0) -> Optional[dict]:
        """Execute one command in checkpointed segments.

        Returns the final result payload, or ``None`` if the worker
        crashed mid-command (the server will detect it by heartbeat
        timeout and requeue from the last checkpoint) — or, under
        pacing (``segments_per_cycle``), if the command parked to
        resume on the next work cycle.
        """
        if isinstance(command, BatchCommand):
            return self._start_batch(command, now)
        record = ExecutionRecord(command_id=command.command_id)
        self.history.append(record)
        payload = dict(command.payload)
        if command.checkpoint is not None:
            payload["checkpoint"] = command.checkpoint
        active = _ActiveCommand(
            command=command,
            payload=payload,
            record=record,
            span=self._begin_exec_span(command, now),
        )
        return self._execute(active, now)

    def _begin_exec_span(self, command: Command, now: float) -> Span:
        """Open the ``worker.execute`` span for one command."""
        ctx = command.trace or {}
        return self.obs.tracer.begin(
            "worker.execute",
            now,
            ctx.get("trace_id")
            or trace_id_for(command.project_id, command.command_id),
            component=self.name,
            parent_id=ctx.get("span_id"),
            command=command.command_id,
        )

    def _start_batch(self, batch: BatchCommand, now: float) -> Optional[dict]:
        """Begin executing a coalesced batch.

        Observability is per member: each member command gets its own
        execution record and ``worker.execute`` span, exactly as if it
        ran unmerged; the batch wrapper itself stays invisible.
        """
        members: List[_ActiveCommand] = []
        for member in batch.members:
            record = ExecutionRecord(command_id=member.command_id)
            self.history.append(record)
            members.append(
                _ActiveCommand(
                    command=member,
                    payload={},
                    record=record,
                    span=self._begin_exec_span(member, now),
                )
            )
        self._count(
            "repro_worker_commands_coalesced_total",
            amount=len(members),
            help="Commands executed inside coalesced batches.",
        )
        active = _ActiveCommand(
            command=batch,
            payload=dict(batch.payload),
            record=ExecutionRecord(command_id=batch.command_id),
            members=members,
        )
        return self._execute(active, now)

    def _execute(self, active: _ActiveCommand, now: float) -> Optional[dict]:
        """Run (or resume) one command until done, crash, or budget.

        For a coalesced batch every observable action — crash-hook
        probe, span, execution record, heartbeat checkpoint — happens
        per member command, so the server sees exactly what unmerged
        execution would have produced.
        """
        command = active.command
        # observable identity: the member commands, or the command itself
        tracked = active.members if active.members is not None else [active]
        executed = 0
        while True:
            if self.crashed or (
                self._crash_hook
                and any(
                    self._crash_hook(t.command.command_id, t.record.segments)
                    for t in tracked
                )
            ):
                self.crashed = True
                self._active = None
                self._count(
                    "repro_worker_crashes_total",
                    help="Worker deaths (mid-command node loss).",
                )
                for t in tracked:
                    if t.span is not None:
                        self.obs.tracer.end(
                            t.span,
                            now,
                            crashed=True,
                            segments=t.record.segments,
                        )
                return None
            if (
                self.segments_per_cycle is not None
                and executed >= self.segments_per_cycle
            ):
                # budget exhausted: park; the latest checkpoint was
                # already heartbeated, so the server can still recover
                self._active = active
                return None
            result, completed = self.executables.run(
                command.executable,
                active.payload,
                abort_after_steps=max(1, int(self.segment_steps * self.throttle)),
            )
            executed += 1
            for t in tracked:
                t.record.segments += 1
            self._count(
                "repro_worker_segments_total",
                help="Checkpointed execution segments run.",
            )
            active.accumulated = self._merge_segment(active.accumulated, result)
            if completed:
                self._active = None
                self._count(
                    "repro_worker_commands_completed_total",
                    amount=len(tracked),
                    help="Commands executed to completion.",
                )
                for t in tracked:
                    t.record.completed = True
                    if t.span is not None:
                        self.obs.tracer.end(
                            t.span,
                            now,
                            completed=True,
                            segments=t.record.segments,
                        )
                        self._exec_spans[t.command.command_id] = t.span
                self.heartbeat(now)
                return active.accumulated
            # continue from the returned checkpoint(s), heartbeating so
            # the server can recover the command(s) if this worker dies
            if active.members is not None:
                checkpoints = [r["checkpoint"] for r in result["results"]]
                active.payload["checkpoints"] = checkpoints
                self.heartbeat(
                    now,
                    # checkpoints are keyed by the *scoped* command key:
                    # this worker may hold work from several tenants
                    checkpoints={
                        t.command.scoped_id: cp
                        for t, cp in zip(active.members, checkpoints)
                    },
                )
            else:
                active.payload["checkpoint"] = result["checkpoint"]
                self.heartbeat(
                    now, checkpoints={command.scoped_id: result["checkpoint"]}
                )

    @staticmethod
    def _merge_segment(
        accumulated: Optional[dict], segment: dict
    ) -> dict:
        """Concatenate per-segment outputs into one command result."""
        if accumulated is None:
            return dict(segment)
        merged = dict(segment)
        if "results" in segment and "results" in accumulated:
            # batched payload: merge the per-member results elementwise
            merged["results"] = [
                Worker._merge_segment(prev, cur)
                for prev, cur in zip(accumulated["results"], segment["results"])
            ]
            return merged
        if "frames" in segment and "frames" in accumulated:
            import numpy as np

            prev_f, prev_t = accumulated["frames"], accumulated["times"]
            cur_f, cur_t = segment["frames"], segment["times"]
            if len(prev_f) and len(cur_f):
                # segments overlap at the checkpoint frame; drop duplicates
                keep = cur_t > prev_t[-1] + 1e-12
                cur_f, cur_t = cur_f[keep], cur_t[keep]
            merged["frames"] = np.concatenate([prev_f, cur_f]) if len(prev_f) else cur_f
            merged["times"] = np.concatenate([prev_t, cur_t]) if len(prev_t) else cur_t
        if "steps_completed" in segment and "steps_completed" in accumulated:
            merged["steps_completed"] = (
                accumulated["steps_completed"] + segment["steps_completed"]
            )
        if "wall_seconds" in segment and "wall_seconds" in accumulated:
            merged["wall_seconds"] = (
                accumulated["wall_seconds"] + segment["wall_seconds"]
            )
        return merged

    def submit_result(self, command: Command, result: dict) -> Optional[dict]:
        """Return a finished command's output to the server.

        If the server is transiently unreachable the result is parked
        and resubmitted on the next work cycle — finished work is never
        thrown away just because the uplink flapped.  (The server
        deduplicates, so a result that *did* arrive before the response
        was lost completes the command exactly once.)
        """
        if self.crashed:
            return None
        headers: dict = {}
        span = self._exec_spans.get(command.command_id)
        if span is not None:
            # the execution span's context + end time ride in headers so
            # the server can stitch a result.transfer span onto the trace
            span.context().inject(headers)
            if span.finished:
                headers["exec_end"] = span.end
        try:
            response = self.send(
                self.server,
                MessageType.COMMAND_RESULT,
                {
                    "worker": self.name,
                    "command": command.to_payload(),
                    "result": result,
                },
                headers=headers,
            )
        except TransientCommunicationError:
            self._park_result(command, result)
            return None
        self._exec_spans.pop(command.command_id, None)
        self._count(
            "repro_worker_results_delivered_total",
            help="Results that reached the server.",
        )
        return response

    def _park_result(self, command: Command, result: dict) -> None:
        """Park an undeliverable result, deduplicated and bounded.

        A result re-parked for a command already waiting replaces the
        old entry (one delivery is enough — the server dedups anyway);
        when the bound is hit the oldest parked result is dropped and
        counted, trading that command's redelivery for bounded memory
        (the server's liveness sweep requeues it if it never arrives).
        """
        self._pending_results = [
            entry
            for entry in self._pending_results
            if entry[0].command_id != command.command_id
        ]
        self._pending_results.append((command, result))
        self._count(
            "repro_worker_results_parked_total",
            help="Results parked because the server was unreachable.",
        )
        while len(self._pending_results) > self.pending_results_limit:
            self._pending_results.pop(0)
            self.pending_results_dropped += 1
            self._count(
                "repro_worker_results_dropped_total",
                help="Parked results dropped at the memory bound.",
            )

    def flush_pending_results(self) -> int:
        """Resubmit parked results; returns how many got through."""
        if self.crashed or not self._pending_results:
            return 0
        pending, self._pending_results = self._pending_results, []
        delivered = 0
        for command, result in pending:
            # submit_result re-parks into _pending_results on failure
            if self.submit_result(command, result) is not None:
                delivered += 1
        return delivered

    def work_once(self, now: float = 0.0) -> int:
        """One poll cycle: resume parked work, fetch and run commands.

        Without pacing every fetched command runs to completion within
        the cycle.  With ``segments_per_cycle`` set, a command that
        exhausts its segment budget parks in :attr:`_active` and
        resumes next cycle — only when both the active slot and the
        backlog are empty does the worker poll for a new workload.

        Returns the number of commands completed this cycle.
        """
        done = self.flush_pending_results()
        if self.crashed:
            return done
        if self._active is None and not self._backlog:
            fetched = self.request_workload(now=now)
            # adaptive coalescing: merge whatever compatible work the
            # workload actually contains, up to the announced capacity
            self._backlog.extend(
                coalesce_commands(fetched, self.batch_capacity)
            )
        while True:
            if self._active is not None:
                command = self._active.command
                result = self._execute(self._active, now)
            elif self._backlog:
                command = self._backlog.pop(0)
                result = self.run_command(command, now=now)
            else:
                break
            if result is None:
                break  # crashed mid-command, or parked until next cycle
            if isinstance(command, BatchCommand):
                # split the batch back into per-command results; each is
                # submitted (and deduplicated, journaled, traced) exactly
                # as if its command had run alone
                for member, member_result in split_results(command, result):
                    if self.submit_result(member, member_result) is not None:
                        done += 1
            else:
                response = self.submit_result(command, result)
                if response is not None:
                    done += 1
        return done
