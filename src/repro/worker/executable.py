"""Executable descriptions: what a worker knows how to run.

Paper section 2.3: "the worker searches for all installed
'executables': descriptions of how to execute specific command types
for a specific platform, along with optional binaries to execute."
Here an executable is a named function ``(payload, abort_after_steps)
-> (result_payload, completed)``; the ``mdrun`` entry wraps the MD
engine, the free-energy entry wraps a lambda-window sampler.

Functions are registered at module level (not as closures) so they can
cross a ``ProcessPoolExecutor`` boundary for genuine multi-core
execution of a workload.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.md.engine import BatchedMDTask, MDEngine, MDTask
from repro.util.errors import ConfigurationError

ExecutableFn = Callable[[dict, Optional[int]], Tuple[dict, bool]]


def mdrun_executable(
    payload: dict, abort_after_steps: Optional[int] = None
) -> Tuple[dict, bool]:
    """The MD simulation executable (the Gromacs stand-in)."""
    task = MDTask.from_payload(payload)
    engine = MDEngine()
    result = engine.run(task, abort_after_steps=abort_after_steps)
    return result.to_payload(), result.completed


def mdrun_batch_executable(
    payload: dict, abort_after_steps: Optional[int] = None
) -> Tuple[dict, bool]:
    """Batched MD: R coalesced commands in one kernel call.

    Per-replica outputs (frames, checkpoints, step counts) are
    bit-identical to running each member through ``mdrun`` — see
    :mod:`repro.worker.coalesce`.
    """
    task = BatchedMDTask.from_payload(payload)
    engine = MDEngine()
    result = engine.run_batched(task, abort_after_steps=abort_after_steps)
    return result.to_payload(), result.completed


def fepsample_executable(
    payload: dict, abort_after_steps: Optional[int] = None
) -> Tuple[dict, bool]:
    """Free-energy window sampler (used by the BAR controller)."""
    # Imported lazily to avoid a circular import at module load.
    from repro.fep.sampling import run_fep_window

    return run_fep_window(payload), True


#: Global registry usable from worker subprocesses.
_GLOBAL_EXECUTABLES: Dict[str, ExecutableFn] = {
    "mdrun": mdrun_executable,
    "mdrun_batch": mdrun_batch_executable,
    "fepsample": fepsample_executable,
}


def run_executable(
    name: str, payload: dict, abort_after_steps: Optional[int] = None
) -> Tuple[dict, bool]:
    """Run a registered executable by name (process-pool safe)."""
    try:
        fn = _GLOBAL_EXECUTABLES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown executable {name!r}; known: {sorted(_GLOBAL_EXECUTABLES)}"
        ) from None
    return fn(payload, abort_after_steps)


class ExecutableRegistry:
    """Per-worker view of installed executables."""

    def __init__(self, names: Optional[list] = None) -> None:
        self._names = list(names) if names is not None else list(_GLOBAL_EXECUTABLES)
        for name in self._names:
            if name not in _GLOBAL_EXECUTABLES:
                raise ConfigurationError(f"unknown executable {name!r}")

    @property
    def names(self) -> list:
        """Installed executable names."""
        return list(self._names)

    def run(
        self, name: str, payload: dict, abort_after_steps: Optional[int] = None
    ) -> Tuple[dict, bool]:
        """Execute an installed executable.

        Raises
        ------
        ConfigurationError
            If the executable is not installed on this worker.
        """
        if name not in self._names:
            raise ConfigurationError(
                f"executable {name!r} not installed on this worker"
            )
        return run_executable(name, payload, abort_after_steps)


def default_registry() -> ExecutableRegistry:
    """Registry with every built-in executable installed."""
    return ExecutableRegistry()


def register_executable(name: str, fn: ExecutableFn) -> None:
    """Install a new global executable (plugin mechanism)."""
    if not callable(fn):
        raise ConfigurationError("executable must be callable")
    _GLOBAL_EXECUTABLES[name] = fn
