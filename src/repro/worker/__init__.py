"""Copernicus workers: platforms, executables, the execution loop."""

from repro.worker.platform import SMPPlatform, MPISimPlatform, PLATFORM_REGISTRY
from repro.worker.executable import (
    ExecutableRegistry,
    default_registry,
    run_executable,
)
from repro.worker.worker import Worker

__all__ = [
    "SMPPlatform",
    "MPISimPlatform",
    "PLATFORM_REGISTRY",
    "ExecutableRegistry",
    "default_registry",
    "run_executable",
    "Worker",
]
