"""Command-line client, in the spirit of the paper's ``cpc`` tool.

Copernicus users drive projects through a command-line client; this
module is its reproduction-scale analogue:

* ``python -m repro info`` — versions, registered models/executables;
* ``python -m repro demo-msm`` — run an adaptive MSM project on a
  simulated deployment and print its progress reports;
* ``python -m repro demo-fep`` — run the BAR free-energy project to
  its error target;
* ``python -m repro scaling`` — print the Fig. 7/8/9 rows for chosen
  core counts;
* ``python -m repro obs {metrics,trace,timeline}`` — run a canned
  chaos scenario and export its observability artifacts: a Prometheus
  metrics dump, a Perfetto-loadable Chrome trace, or a per-command
  lifecycle timeline report;
* ``python -m repro soak`` — drive 100+ tenants across a sharded
  fabric under seeded faults, check all fourteen invariants, and emit
  a JSON verdict (nonzero exit on any violation); ``--shard-churn``
  kills a shard mid-run and additionally proves the failover
  exactly-once against a crash-free baseline; ``--partition-churn``
  partitions the shard instead and proves the healed zombie is
  epoch-fenced and demoted, not just survived;
* ``python -m repro lab sweep`` — race adaptive-sampling schemes over
  the [scheme x frequency x parallelism] grid on a ground-truth
  Markov-chain toy, emitting the deterministic ``BENCH_adaptive.json``
  payload and the "which scheme wins where" markdown report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Copernicus reproduction: parallel adaptive MD",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package, model and executable inventory")

    msm = sub.add_parser("demo-msm", help="run an adaptive MSM project")
    msm.add_argument("--model", default="villin-fast")
    msm.add_argument("--starts", type=int, default=2)
    msm.add_argument("--trajs", type=int, default=3)
    msm.add_argument("--steps", type=int, default=2000)
    msm.add_argument("--generations", type=int, default=3)
    msm.add_argument(
        "--weighting",
        choices=["uniform", "min-counts", "weighted-counts", "uncertainty"],
        default="uncertainty",
    )
    msm.add_argument("--seed", type=int, default=0)

    fep = sub.add_parser("demo-fep", help="run the BAR free-energy project")
    fep.add_argument("--windows", type=int, default=5)
    fep.add_argument("--samples", type=int, default=500)
    fep.add_argument("--target-error", type=float, default=0.05)
    fep.add_argument("--seed", type=int, default=0)

    scaling = sub.add_parser("scaling", help="performance-model tables")
    scaling.add_argument(
        "--cores", type=int, nargs="+",
        default=[96, 1536, 5376, 20000, 100000],
    )
    scaling.add_argument(
        "--cores-per-sim", type=int, nargs="+", default=[1, 24, 96]
    )

    recovery = sub.add_parser(
        "demo-recovery", help="kill a worker mid-command; watch the handoff"
    )
    recovery.add_argument("--commands", type=int, default=3)
    recovery.add_argument("--steps", type=int, default=4000)

    umbrella = sub.add_parser(
        "demo-umbrella", help="umbrella sampling + WHAM free-energy profile"
    )
    umbrella.add_argument("--windows", type=int, default=11)
    umbrella.add_argument("--samples", type=int, default=2000)

    obs = sub.add_parser(
        "obs", help="run a scenario and export observability artifacts"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    def _obs_common(p):
        p.add_argument(
            "--scenario",
            choices=["swarm", "straggler", "flapping", "sick-peer"],
            default="swarm",
            help="canned chaos scenario to run (default: swarm)",
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--out", default=None,
            help="write the artifact to this file (default: stdout)",
        )

    metrics = obs_sub.add_parser(
        "metrics", help="dump the run's metrics registry"
    )
    _obs_common(metrics)
    metrics.add_argument(
        "--format", choices=["prometheus", "jsonl"], default="prometheus",
        help="Prometheus text exposition or JSON lines",
    )

    trace = obs_sub.add_parser(
        "trace", help="export the run's spans as Chrome trace JSON"
    )
    _obs_common(trace)

    timeline = obs_sub.add_parser(
        "timeline", help="per-command lifecycle timeline report"
    )
    _obs_common(timeline)

    soak = sub.add_parser(
        "soak",
        help="multi-tenant soak: 100+ tenants under faults + invariants",
    )
    soak.add_argument("--tenants", type=int, default=100)
    soak.add_argument("--shards", type=int, default=4)
    soak.add_argument("--workers-per-shard", type=int, default=3)
    soak.add_argument("--steps", type=int, default=300)
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument(
        "--shard-churn", action="store_true",
        help="kill a shard mid-soak: journaled fabric, monitor-driven "
        "failover, exactly-once proven against a crash-free baseline",
    )
    soak.add_argument(
        "--partition-churn", action="store_true",
        help="partition a shard mid-soak instead of killing it: the "
        "fleet fails over, the partition heals, and the zombie owner "
        "is epoch-fenced and demoted (invariant 14)",
    )
    soak.add_argument(
        "--heal-after", type=int, default=1500,
        help="deliveries until the partition heals (--partition-churn)",
    )
    soak.add_argument(
        "--journal-root", default=None,
        help="journal directory for --shard-churn / --partition-churn "
        "(default: a tempdir)",
    )
    soak.add_argument(
        "--out", default=None,
        help="write the JSON report to this file (default: stdout)",
    )

    lab = sub.add_parser(
        "lab",
        help="adaptive-strategy laboratory: race schemes on exact toys",
    )
    lab_sub = lab.add_subparsers(dest="lab_command", required=True)
    sweep = lab_sub.add_parser(
        "sweep",
        help="scheme x adaptive-frequency x parallelism sweep scored "
        "against an exactly known transition matrix",
    )
    sweep.add_argument(
        "--model", default="markov-ala20",
        help="ground-truth chain model (markov-ala20, markov-mb)",
    )
    sweep.add_argument(
        "--schemes", nargs="+", default=None,
        help="adapter schemes to race (default: uniform min-counts "
        "uncertainty)",
    )
    sweep.add_argument(
        "--steps-per-command", type=int, nargs="+", default=None,
        help="adaptive-frequency axis (steps per command)",
    )
    sweep.add_argument(
        "--trajs", type=int, nargs="+", default=None,
        help="parallelism axis (trajectories per generation)",
    )
    sweep.add_argument("--total-steps", type=int, default=None)
    sweep.add_argument("--metric", default=None)
    sweep.add_argument("--threshold", type=float, default=None)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--json-out", default=None,
        help="write the BENCH_adaptive.json payload to this file",
    )
    sweep.add_argument(
        "--out", default=None,
        help="write the markdown report to this file (default: stdout)",
    )
    return parser


def cmd_info(args, out) -> int:
    """``info``: print package, model and executable inventory."""
    from repro.md.engine import MODEL_REGISTRY
    from repro.worker.executable import _GLOBAL_EXECUTABLES

    print(f"repro {__version__} — Copernicus reproduction (SC11)", file=out)
    print(f"models: {', '.join(sorted(MODEL_REGISTRY))}", file=out)
    print(f"executables: {', '.join(sorted(_GLOBAL_EXECUTABLES))}", file=out)
    return 0


def _deployment(seed: int):
    from repro.net import Network
    from repro.server import CopernicusServer
    from repro.worker import SMPPlatform, Worker

    net = Network(seed=seed)
    server = CopernicusServer("project-server", net)
    worker = Worker(
        "w0", net, server="project-server", platform=SMPPlatform(cores=2)
    )
    net.connect("project-server", "w0")
    worker.announce(0.0)
    return net, server, worker


def cmd_demo_msm(args, out) -> int:
    """``demo-msm``: run an adaptive MSM project end to end."""
    from repro.core import (
        AdaptiveMSMController,
        MSMProjectConfig,
        Project,
        ProjectRunner,
    )

    config = MSMProjectConfig(
        model=args.model,
        n_starting_conformations=args.starts,
        trajectories_per_start=args.trajs,
        steps_per_command=args.steps,
        report_interval=50,
        n_clusters=25,
        lag_frames=5,
        n_generations=args.generations,
        weighting=args.weighting,
        seed=args.seed,
    )
    controller = AdaptiveMSMController(config)
    net, server, worker = _deployment(args.seed)
    runner = ProjectRunner(net, server, [worker])
    runner.submit(Project("demo-msm"), controller)
    print("running adaptive MSM project ...", file=out)
    runner.run()
    for status in runner.status():
        print(f"status: {status}", file=out)
    if controller.native is not None:
        per_gen = controller.min_rmsd_per_generation()
        for gen in sorted(per_gen):
            print(
                f"generation {gen}: min RMSD to native {per_gen[gen]:.3f} nm",
                file=out,
            )
    msm, _ = controller.final_msm()
    print(
        f"final MSM: {msm.n_states} states, slowest timescale "
        f"{msm.timescales(1)[0]:.1f} ps",
        file=out,
    )
    return 0


def cmd_demo_fep(args, out) -> int:
    """``demo-fep``: run the BAR project to its error target."""
    from repro.core import (
        BARController,
        FEPProjectConfig,
        Project,
        ProjectRunner,
    )

    config = FEPProjectConfig(
        n_windows=args.windows,
        samples_per_command=args.samples,
        target_error=args.target_error,
        seed=args.seed,
    )
    controller = BARController(config)
    net, server, worker = _deployment(args.seed)
    runner = ProjectRunner(net, server, [worker])
    runner.submit(Project("demo-fep"), controller)
    print("running BAR free-energy project ...", file=out)
    runner.run()
    print(
        f"dF = {controller.estimate:.4f} +/- {controller.error:.4f} "
        f"(analytic {controller.analytic_reference():.4f}, "
        f"{controller.round + 1} round(s))",
        file=out,
    )
    return 0


def cmd_scaling(args, out) -> int:
    """``scaling``: print performance-model rows for chosen cores."""
    from repro.perfmodel import ProjectSpec
    from repro.perfmodel.scheduler_sim import analytic_result

    header = f"{'N cores':>9s} {'k':>4s} {'hours':>8s} {'efficiency':>11s} {'MB/s':>8s}"
    print(header, file=out)
    for k in args.cores_per_sim:
        for n in args.cores:
            if n < k:
                continue
            spec = ProjectSpec(total_cores=n, cores_per_sim=k)
            result = analytic_result(spec)
            print(
                f"{n:>9d} {k:>4d} {result.hours:>8.1f} "
                f"{result.efficiency:>11.2f} "
                f"{result.avg_bandwidth_mbps:>8.3f}",
                file=out,
            )
    return 0


def cmd_demo_recovery(args, out) -> int:
    """``demo-recovery``: crash a worker and show checkpoint handoff."""
    from repro.core import Command, Project, ProjectRunner
    from repro.core.controller import Controller
    from repro.md.engine import MDTask
    from repro.net import Network
    from repro.server import CopernicusServer
    from repro.worker import SMPPlatform, Worker

    class Swarm(Controller):
        def __init__(self, n, steps):
            self.n, self.steps, self.done = n, steps, []

        def on_project_start(self, project):
            return [
                Command(
                    f"cmd{k}", project.project_id, "mdrun",
                    MDTask(
                        model="villin-fast", n_steps=self.steps,
                        report_interval=500, seed=k, task_id=f"cmd{k}",
                    ).to_payload(),
                )
                for k in range(self.n)
            ]

        def on_command_finished(self, project, command, result):
            self.done.append((command.command_id, result["steps_completed"]))
            return []

        def is_complete(self, project):
            return len(self.done) >= self.n

    net = Network(seed=0)
    server = CopernicusServer("srv", net, heartbeat_interval=60.0)
    flaky = Worker("flaky", net, server="srv", platform=SMPPlatform(cores=1),
                   segment_steps=max(args.steps // 4, 1))
    steady = Worker("steady", net, server="srv", platform=SMPPlatform(cores=1),
                    segment_steps=max(args.steps // 4, 1))
    net.connect("srv", "flaky")
    net.connect("srv", "steady")
    flaky.announce(0.0)
    steady.announce(0.0)
    flaky.set_crash_hook(lambda cid, seg: seg == 2)
    controller = Swarm(args.commands, args.steps)
    runner = ProjectRunner(net, server, [flaky, steady], tick=90.0)
    runner.submit(Project("swarm"), controller)
    runner.run()
    for cid, steps in sorted(controller.done):
        note = "  <- resumed from dead worker's checkpoint" if steps < args.steps else ""
        print(f"{cid}: {steps} steps{note}", file=out)
    print(
        f"commands requeued after failures: {server.requeued_after_failure}",
        file=out,
    )
    return 0


def cmd_demo_umbrella(args, out) -> int:
    """``demo-umbrella``: umbrella sampling + WHAM vs analytic."""
    import numpy as np

    from repro.fep.umbrella import metropolis_sample, window_ladder
    from repro.fep.wham import free_energy_difference, wham

    def potential(x):
        return 3.0 * (x * x - 1.0) ** 2 + 0.8 * x

    windows = window_ladder(-1.8, 1.8, args.windows, k=15.0)
    samples = [
        metropolis_sample(potential, w, args.samples, 1.0, rng=100 + i, step=0.25)
        for i, w in enumerate(windows)
    ]
    result = wham(samples, windows, kt=1.0, n_bins=40)
    df = free_energy_difference(result, (-1.8, 0.0), (0.0, 1.8), kt=1.0)
    xs = np.linspace(-2.2, 2.2, 2001)
    p = np.exp(-np.array([potential(x) for x in xs]))
    pa = np.trapezoid(np.where(xs < 0, p, 0), xs)
    pb = np.trapezoid(np.where(xs >= 0, p, 0), xs)
    exact = -np.log(pb / pa)
    print(
        f"WHAM basin dF = {df:+.3f} kT (analytic {exact:+.3f} kT, "
        f"{result.n_iterations} iterations)",
        file=out,
    )
    return 0


def _run_obs_scenario(args) -> dict:
    """Run the chosen canned chaos scenario deterministically.

    Every scenario returns the shared :class:`~repro.obs.Observability`
    hub under the ``"obs"`` key, plus the runner for timeline builds.
    """
    from repro.testing import scenarios

    runners = {
        "swarm": scenarios.run_swarm_under_faults,
        "straggler": scenarios.run_swarm_with_straggler,
        "flapping": scenarios.run_swarm_with_flapping_worker,
        "sick-peer": scenarios.run_relay_with_sick_peer,
    }
    return runners[args.scenario](seed=args.seed)


def _emit(text: str, args, out) -> None:
    """Write *text* to ``--out`` when given, else to the CLI stream."""
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        print(text, file=out, end="" if text.endswith("\n") else "\n")


def cmd_obs(args, out) -> int:
    """``obs``: export metrics, traces or timelines from a canned run.

    ``repro obs metrics`` dumps the deployment's shared metrics
    registry, either as Prometheus text exposition (default; feed it to
    ``promtool`` or re-parse it with
    :func:`repro.obs.metrics.parse_prometheus_text`) or as JSON lines.

    ``repro obs trace`` exports every span the run recorded as Chrome
    trace-event JSON — load the file in Perfetto or ``chrome://tracing``
    to see each command's issue → queue → execute → transfer → apply
    arc laid out per component.  The export is validated before it is
    written; malformed traces fail the command with a nonzero exit.

    ``repro obs timeline`` prints the per-command lifecycle report:
    queue / compute / transfer / controller phase breakdown, critical
    path and utilization, reconstructed from the run's event log and
    spans.

    All three share ``--scenario`` (which canned chaos scenario to run)
    and ``--seed``; the same seed reproduces the identical artifact.
    """
    scenario = _run_obs_scenario(args)
    obs = scenario.obs
    if args.obs_command == "metrics":
        if args.format == "prometheus":
            _emit(obs.export_prometheus(), args, out)
        else:
            _emit(obs.export_json_lines(), args, out)
        return 0
    if args.obs_command == "trace":
        import json

        from repro.obs.trace import to_chrome_trace, validate_chrome_trace

        trace = to_chrome_trace(obs.tracer)
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems:
                print(f"trace validation: {problem}", file=sys.stderr)
            return 1
        _emit(json.dumps(trace, indent=2) + "\n", args, out)
        return 0
    # timeline
    from repro.obs.timeline import timeline_report_for

    report = timeline_report_for(scenario.runner)
    _emit(report.render_text() + "\n", args, out)
    return 0


def cmd_soak(args, out) -> int:
    """``soak``: run the multi-tenant soak and emit its JSON verdict.

    Drives ``--tenants`` concurrent projects (heterogeneous quotas,
    weights and backpressure caps; colliding command ids) across
    ``--shards`` chaos-wrapped shard servers, checks all fourteen
    invariants, and writes a JSON report: the verdict, every
    violation, the chaos summary and the per-tenant ledger rollup.
    Exit code is nonzero when any invariant failed or any tenant did
    not complete — CI consumes that directly.

    ``--shard-churn`` swaps in the shard-failover scenario: journals
    attached, a shard killed mid-run, the gateway's monitor detecting
    the death, the displaced projects migrated — the report then also
    carries the victim, the migration ledger and the ``exactly_once``
    verdict against a crash-free baseline of the same seed, and a
    failed verdict (or a result set differing from the baseline's)
    exits nonzero.

    ``--partition-churn`` runs the partition-with-heal variant: the
    victim is cut off from the gateway rather than killed, keeps
    serving its island as a split-brain zombie, and is epoch-fenced
    and demoted when the link heals.  The report additionally carries
    the fencing counters, the demotion reports and the zombie's
    locally-applied (fenced) completions; zero demotions or zero
    fencing rejections exits nonzero.
    """
    import json
    import tempfile

    from repro.testing.soak import (
        run_multitenant_soak,
        run_multitenant_with_partitioned_shard,
        run_multitenant_with_shard_crash,
    )

    if args.shard_churn and args.partition_churn:
        print(
            "--shard-churn and --partition-churn are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.partition_churn:
        with tempfile.TemporaryDirectory() as scratch:
            result = run_multitenant_with_partitioned_shard(
                args.journal_root or scratch,
                n_tenants=args.tenants,
                n_shards=args.shards,
                workers_per_shard=args.workers_per_shard,
                n_steps=args.steps,
                heal_after=args.heal_after,
                seed=args.seed,
            )
    elif args.shard_churn:
        with tempfile.TemporaryDirectory() as scratch:
            result = run_multitenant_with_shard_crash(
                args.journal_root or scratch,
                n_tenants=args.tenants,
                n_shards=args.shards,
                workers_per_shard=args.workers_per_shard,
                n_steps=args.steps,
                seed=args.seed,
            )
    else:
        result = run_multitenant_soak(
            n_tenants=args.tenants,
            n_shards=args.shards,
            workers_per_shard=args.workers_per_shard,
            n_steps=args.steps,
            seed=args.seed,
        )
    completed = result.completed_tenants()
    report = {
        "seed": args.seed,
        "tenants": len(result.specs),
        "completed": completed,
        "invariants_ok": not result.violations,
        "violations": result.violations,
        "chaos": result.chaos,
        "per_tenant": result.report,
    }
    ok = not result.violations and completed == len(result.specs)
    if args.shard_churn or args.partition_churn:
        churn = {
            "victim": result.victim,
            "results_before_crash": result.results_before_crash,
            "exactly_once": result.exactly_once,
            "migrations": [
                {
                    "project": m.project_id,
                    "from": m.from_shard,
                    "to": m.to_shard,
                    "replayed": m.replayed,
                    "restored": m.restored,
                    "files_shipped": m.files_shipped,
                    "epoch": m.epoch,
                }
                for m in result.migrations
            ],
            "timeline": result.migration_timeline(),
        }
        ok = ok and result.exactly_once and bool(result.migrations)
        if args.partition_churn:
            churn.update(
                partition_index=result.partition_index,
                heal_index=result.heal_index,
                fencing=result.fencing,
                demotions=result.demotions,
                zombie_completions=[
                    list(entry) for entry in result.zombie_completions
                ],
            )
            report["partition_churn"] = churn
            ok = (
                ok
                and bool(result.demotions)
                and result.fencing["rejections_total"] > 0
            )
        else:
            report["shard_churn"] = churn
    _emit(json.dumps(report, indent=2, default=str) + "\n", args, out)
    if not ok:
        print(
            f"soak FAILED: {len(result.violations)} violations, "
            f"{completed}/{len(result.specs)} tenants complete",
            file=sys.stderr,
        )
    return 0 if ok else 1


def cmd_lab(args, out) -> int:
    """``lab sweep``: run the adaptive-strategy sweep and report it.

    Every cell races one adapter scheme through the full deployment
    stack on a ground-truth Markov-chain model; the run is wall-clock
    free, so the ``--json-out`` payload is bit-identical across reruns
    at the same seed.
    """
    from repro.lab.sweep import SweepConfig, render_report, run_sweep

    overrides = {
        "model": args.model,
        "seed": args.seed,
    }
    if args.schemes is not None:
        overrides["schemes"] = tuple(args.schemes)
    if args.steps_per_command is not None:
        overrides["steps_per_command"] = tuple(args.steps_per_command)
    if args.trajs is not None:
        overrides["n_trajectories"] = tuple(args.trajs)
    if args.total_steps is not None:
        overrides["total_steps"] = args.total_steps
    if args.metric is not None:
        overrides["metric"] = args.metric
    if args.threshold is not None:
        overrides["threshold"] = args.threshold
    config = SweepConfig(**overrides)
    result = run_sweep(config, log=lambda line: print(line, file=out))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(result.to_json() + "\n")
        print(f"wrote {args.json_out}", file=out)
    report = render_report(result)
    _emit(report, args, out)
    return 0


_COMMANDS = {
    "info": cmd_info,
    "demo-msm": cmd_demo_msm,
    "demo-fep": cmd_demo_fep,
    "scaling": cmd_scaling,
    "demo-recovery": cmd_demo_recovery,
    "demo-umbrella": cmd_demo_umbrella,
    "obs": cmd_obs,
    "soak": cmd_soak,
    "lab": cmd_lab,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
