"""Molecular-dynamics engine substrate (the Gromacs substitute).

A compact, vectorised-numpy MD engine providing everything the
Copernicus layer needs from its simulation executable: force fields
(bonded terms, Lennard-Jones + reaction-field nonbonded with cell-list
neighbour search, Gō-type native-contact potentials), integrators
(velocity Verlet, Langevin BAOAB, Nosé–Hoover), trajectory storage and
binary checkpoint/restart, plus model builders for the coarse-grained
villin headpiece used throughout the reproduction.

Units are Gromacs-flavoured: nm, ps, kJ/mol, amu, kelvin.
"""

from repro.md.system import System, State, Topology
from repro.md.integrators import (
    VelocityVerletIntegrator,
    LangevinIntegrator,
    NoseHooverIntegrator,
)
from repro.md.simulation import Simulation, Checkpoint
from repro.md.trajectory import Trajectory
from repro.md.engine import MDEngine, MDTask, MDResult

__all__ = [
    "System",
    "State",
    "Topology",
    "VelocityVerletIntegrator",
    "LangevinIntegrator",
    "NoseHooverIntegrator",
    "Simulation",
    "Checkpoint",
    "Trajectory",
    "MDEngine",
    "MDTask",
    "MDResult",
]
