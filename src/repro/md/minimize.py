"""Energy minimisation: steepest descent and FIRE.

Production MD prepares structures by relaxing clashes before dynamics
(Gromacs' ``em`` step).  Two minimisers:

* :func:`steepest_descent` — robust, with adaptive step control
  (Gromacs' default for initial relaxation);
* :func:`fire_minimize` — FIRE (fast inertial relaxation engine),
  typically several times faster to a given force tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.md.system import System
from repro.util.errors import ConfigurationError


@dataclass
class MinimizationResult:
    """Outcome of a minimisation run."""

    positions: np.ndarray
    energy: float
    max_force: float
    n_steps: int
    converged: bool


def _max_force(forces: np.ndarray) -> float:
    return float(np.sqrt((forces * forces).sum(axis=1).max()))


def steepest_descent(
    system: System,
    positions: np.ndarray,
    tolerance: float = 10.0,
    max_steps: int = 2000,
    initial_step: float = 0.01,
) -> MinimizationResult:
    """Adaptive steepest descent.

    Moves along the force direction with a trust-radius-like step: the
    step grows 1.2x after an energy decrease and shrinks 5x after an
    increase (which is rejected) — Gromacs' classic scheme.

    Parameters
    ----------
    tolerance:
        Convergence threshold on the largest atomic force (kJ/mol/nm).
    """
    if tolerance <= 0 or max_steps < 1 or initial_step <= 0:
        raise ConfigurationError("invalid minimiser parameters")
    x = np.array(positions, dtype=float, copy=True)
    energy, forces = system.energy_forces(x)
    step = initial_step
    n = 0
    for n in range(1, max_steps + 1):
        fmax = _max_force(forces)
        if fmax < tolerance:
            return MinimizationResult(x, energy, fmax, n - 1, True)
        direction = forces / max(fmax, 1e-30)
        trial = x + step * direction
        e_trial, f_trial = system.energy_forces(trial)
        if e_trial < energy:
            x, energy, forces = trial, e_trial, f_trial
            step *= 1.2
        else:
            step /= 5.0
            if step < 1e-10:
                break
    return MinimizationResult(x, energy, _max_force(forces), n, False)


def fire_minimize(
    system: System,
    positions: np.ndarray,
    tolerance: float = 10.0,
    max_steps: int = 5000,
    dt_start: float = 0.002,
    dt_max: float = 0.02,
) -> MinimizationResult:
    """FIRE: MD-with-friction minimisation (Bitzek et al., PRL 2006)."""
    if tolerance <= 0 or max_steps < 1 or dt_start <= 0 or dt_max < dt_start:
        raise ConfigurationError("invalid FIRE parameters")
    x = np.array(positions, dtype=float, copy=True)
    v = np.zeros_like(x)
    energy, forces = system.energy_forces(x)
    dt = dt_start
    alpha = 0.1
    n_positive = 0
    n = 0
    inv_m = 1.0 / system.masses[:, None]
    for n in range(1, max_steps + 1):
        fmax = _max_force(forces)
        if fmax < tolerance:
            return MinimizationResult(x, energy, fmax, n - 1, True)
        power = float(np.sum(forces * v))
        if power > 0:
            n_positive += 1
            f_norm = np.sqrt((forces * forces).sum())
            v_norm = np.sqrt((v * v).sum())
            v = (1.0 - alpha) * v + alpha * (forces / max(f_norm, 1e-30)) * v_norm
            if n_positive > 5:
                dt = min(dt * 1.1, dt_max)
                alpha *= 0.99
        else:
            v[:] = 0.0
            dt *= 0.5
            alpha = 0.1
            n_positive = 0
        v = v + dt * forces * inv_m
        x = x + dt * v
        energy, forces = system.energy_forces(x)
    return MinimizationResult(x, energy, _max_force(forces), n, False)
