"""The simulation *executable*: what a Copernicus worker actually runs.

In the paper, workers advertise "executables" (e.g. the Gromacs
binaries) and the server hands them *commands* — serialised task
specifications.  :class:`MDTask` is that specification, :class:`MDEngine`
is the executable, and :class:`MDResult` is the returned output: a
trajectory plus a checkpoint.  Everything crosses the (simulated)
network as plain payload dicts, so tasks survive worker failure and can
be resumed by a different worker from the last checkpoint
(paper section 2.3).
"""

from __future__ import annotations

import time as _walltime
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.md.integrators import (
    LangevinIntegrator,
    NoseHooverIntegrator,
    VelocityVerletIntegrator,
)
from repro.md.models.doublewell import double_well_initial_state, double_well_system
from repro.md.models.muller_brown import (
    muller_brown_initial_state,
    muller_brown_system,
)
from repro.md.models.villin import build_villin
from repro.md.simulation import Checkpoint, Simulation
from repro.md.system import State, System
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


@dataclass
class MDTask:
    """A serialisable simulation command.

    Attributes
    ----------
    model:
        Registered model name (``villin-full``, ``villin-fast``,
        ``muller-brown``, ``double-well``).
    n_steps:
        Total steps the command must complete.
    report_interval:
        Steps between stored frames.
    integrator:
        ``langevin`` (default), ``nose-hoover`` or ``verlet``.
    temperature / friction / timestep:
        Integration parameters (K, 1/ps, ps).
    seed:
        RNG seed for velocities and noise.
    initial_positions:
        Explicit starting coordinates; if ``None``, the model's default
        unfolded/initial builder runs.
    checkpoint:
        Resume payload from a previous partial run.
    model_params:
        Extra keyword arguments for the model builder.
    task_id:
        Opaque identifier assigned by the project controller.
    """

    model: str
    n_steps: int
    report_interval: int = 100
    integrator: str = "langevin"
    temperature: float = 300.0
    friction: float = 1.0
    timestep: float = 0.02
    seed: int = 0
    initial_positions: Optional[np.ndarray] = None
    checkpoint: Optional[Dict] = None
    model_params: Dict = field(default_factory=dict)
    task_id: str = ""

    def to_payload(self) -> Dict:
        """Wire-format dict."""
        payload = {
            "model": self.model,
            "n_steps": int(self.n_steps),
            "report_interval": int(self.report_interval),
            "integrator": self.integrator,
            "temperature": float(self.temperature),
            "friction": float(self.friction),
            "timestep": float(self.timestep),
            "seed": int(self.seed),
            "model_params": dict(self.model_params),
            "task_id": self.task_id,
        }
        if self.initial_positions is not None:
            payload["initial_positions"] = np.asarray(self.initial_positions)
        if self.checkpoint is not None:
            payload["checkpoint"] = self.checkpoint
        return payload

    @classmethod
    def from_payload(cls, payload: Dict) -> "MDTask":
        """Inverse of :meth:`to_payload`."""
        return cls(
            model=payload["model"],
            n_steps=int(payload["n_steps"]),
            report_interval=int(payload.get("report_interval", 100)),
            integrator=payload.get("integrator", "langevin"),
            temperature=float(payload.get("temperature", 300.0)),
            friction=float(payload.get("friction", 1.0)),
            timestep=float(payload.get("timestep", 0.02)),
            seed=int(payload.get("seed", 0)),
            initial_positions=(
                np.asarray(payload["initial_positions"])
                if "initial_positions" in payload
                else None
            ),
            checkpoint=payload.get("checkpoint"),
            model_params=dict(payload.get("model_params", {})),
            task_id=payload.get("task_id", ""),
        )


@dataclass
class MDResult:
    """Output of running (part of) an :class:`MDTask`."""

    task_id: str
    frames: np.ndarray
    times: np.ndarray
    checkpoint: Dict
    steps_completed: int
    completed: bool
    wall_seconds: float
    final_potential_energy: float

    def to_payload(self) -> Dict:
        """Wire-format dict."""
        return {
            "task_id": self.task_id,
            "frames": self.frames,
            "times": self.times,
            "checkpoint": self.checkpoint,
            "steps_completed": int(self.steps_completed),
            "completed": bool(self.completed),
            "wall_seconds": float(self.wall_seconds),
            "final_potential_energy": float(self.final_potential_energy),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "MDResult":
        """Inverse of :meth:`to_payload`."""
        return cls(
            task_id=payload["task_id"],
            frames=np.asarray(payload["frames"]),
            times=np.asarray(payload["times"]),
            checkpoint=payload["checkpoint"],
            steps_completed=int(payload["steps_completed"]),
            completed=bool(payload["completed"]),
            wall_seconds=float(payload["wall_seconds"]),
            final_potential_energy=float(payload["final_potential_energy"]),
        )


def _build_villin_task(task: MDTask):
    variant = task.model.split("-", 1)[1] if "-" in task.model else "full"
    model = build_villin(variant=variant, **task.model_params)
    if task.initial_positions is not None:
        rng = RandomStream(task.seed)
        velocities = model.system.maxwell_boltzmann_velocities(
            task.temperature, rng
        )
        state = State(np.asarray(task.initial_positions, dtype=float), velocities)
    else:
        state = model.extended_state(rng=task.seed, temperature=task.temperature)
    return model.system, state


def _build_muller_brown_task(task: MDTask):
    system = muller_brown_system(**task.model_params)
    if task.initial_positions is not None:
        rng = RandomStream(task.seed)
        velocities = system.maxwell_boltzmann_velocities(task.temperature, rng)
        state = State(np.asarray(task.initial_positions, dtype=float), velocities)
    else:
        state = muller_brown_initial_state(
            rng=task.seed, temperature=task.temperature, **task.model_params
        )
    return system, state


def _build_lj_fluid_task(task: MDTask):
    from repro.md.models.lj_fluid import lj_fluid_state, lj_fluid_system

    system, box = lj_fluid_system(**task.model_params)
    if task.initial_positions is not None:
        rng = RandomStream(task.seed)
        velocities = system.maxwell_boltzmann_velocities(task.temperature, rng)
        state = State(np.asarray(task.initial_positions, dtype=float), velocities)
    else:
        state = lj_fluid_state(
            system, box, temperature=task.temperature, rng=task.seed
        )
    return system, state


def _build_double_well_task(task: MDTask):
    system = double_well_system(**task.model_params)
    if task.initial_positions is not None:
        rng = RandomStream(task.seed)
        velocities = system.maxwell_boltzmann_velocities(task.temperature, rng)
        state = State(np.asarray(task.initial_positions, dtype=float), velocities)
    else:
        width = task.model_params.get("width", 1.0)
        dim = task.model_params.get("dim", 1)
        state = double_well_initial_state(
            rng=task.seed, temperature=task.temperature, width=width, dim=dim
        )
    return system, state


#: Model registry: name -> builder(task) -> (system, initial_state).
MODEL_REGISTRY: Dict[str, Callable] = {
    "villin-full": _build_villin_task,
    "villin-fast": _build_villin_task,
    "muller-brown": _build_muller_brown_task,
    "double-well": _build_double_well_task,
    "lj-fluid": _build_lj_fluid_task,
}


class MDEngine:
    """Executes :class:`MDTask` commands; the worker-side 'executable'.

    Parameters
    ----------
    segment_steps:
        Steps per internal segment; checkpoints are cut at segment
        boundaries, so this is the resume granularity.
    """

    #: Executable identifier matched against command requirements
    #: during resource matching (the paper's "executables").
    name = "mdrun"
    version = "1.0"

    def __init__(self, segment_steps: int = 1000) -> None:
        if segment_steps <= 0:
            raise ConfigurationError("segment_steps must be positive")
        self.segment_steps = int(segment_steps)

    def _make_integrator(self, task: MDTask):
        if task.integrator == "langevin":
            return LangevinIntegrator(
                task.timestep,
                task.temperature,
                friction=task.friction,
                rng=task.seed + 1,
            )
        if task.integrator == "nose-hoover":
            return NoseHooverIntegrator(task.timestep, task.temperature)
        if task.integrator == "verlet":
            return VelocityVerletIntegrator(task.timestep)
        raise ConfigurationError(f"unknown integrator {task.integrator!r}")

    def prepare(self, task: MDTask) -> Simulation:
        """Build the simulation for *task* (resuming its checkpoint if any)."""
        try:
            builder = MODEL_REGISTRY[task.model]
        except KeyError:
            raise ConfigurationError(
                f"unknown model {task.model!r}; known: {sorted(MODEL_REGISTRY)}"
            ) from None
        system, state = builder(task)
        simulation = Simulation(
            system,
            self._make_integrator(task),
            state,
            report_interval=task.report_interval,
        )
        if task.checkpoint is not None:
            simulation.restore(Checkpoint.from_payload(task.checkpoint))
        return simulation

    def run(self, task: MDTask, abort_after_steps: Optional[int] = None) -> MDResult:
        """Run *task* to completion (or abort early, returning a checkpoint).

        Parameters
        ----------
        abort_after_steps:
            If given, stop after at most this many further steps even
            if the task is unfinished — used by failure-injection tests
            and pre-empted workers.  The result then has
            ``completed=False`` and a resumable checkpoint.
        """
        start_wall = _walltime.perf_counter()
        simulation = self.prepare(task)
        start_step = simulation.state.step
        target = task.n_steps
        budget = abort_after_steps if abort_after_steps is not None else target

        while (
            simulation.state.step - start_step < budget
            and simulation.state.step < target
        ):
            remaining_task = target - simulation.state.step
            remaining_budget = budget - (simulation.state.step - start_step)
            chunk = min(self.segment_steps, remaining_task, remaining_budget)
            simulation.run(chunk)

        completed = simulation.state.step >= target
        checkpoint = simulation.checkpoint()
        trajectory = simulation.trajectory
        return MDResult(
            task_id=task.task_id,
            frames=trajectory.frames,
            times=trajectory.times,
            checkpoint=checkpoint.to_payload(),
            steps_completed=simulation.state.step - start_step,
            completed=completed,
            wall_seconds=_walltime.perf_counter() - start_wall,
            final_potential_energy=simulation.potential_energy(),
        )
