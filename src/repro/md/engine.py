"""The simulation *executable*: what a Copernicus worker actually runs.

In the paper, workers advertise "executables" (e.g. the Gromacs
binaries) and the server hands them *commands* — serialised task
specifications.  :class:`MDTask` is that specification, :class:`MDEngine`
is the executable, and :class:`MDResult` is the returned output: a
trajectory plus a checkpoint.  Everything crosses the (simulated)
network as plain payload dicts, so tasks survive worker failure and can
be resumed by a different worker from the last checkpoint
(paper section 2.3).
"""

from __future__ import annotations

import time as _walltime
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.md.batched import BatchedSimulation, make_batched_integrator
from repro.md.dispatch import (
    DEFAULT_DISPATCH,
    DEFAULT_PRECISION,
    resolve_dispatch,
    validate_dispatch,
    validate_precision,
)
from repro.md.integrators import make_integrator
from repro.md.precision import apply_precision
from repro.md.models.doublewell import double_well_initial_state, double_well_system
from repro.md.models.muller_brown import (
    muller_brown_initial_state,
    muller_brown_system,
)
from repro.md.models.villin import build_villin
from repro.md.simulation import Checkpoint, Simulation
from repro.md.system import State, System
from repro.util.errors import ConfigurationError, UnknownModelError
from repro.util.rng import RandomStream


@dataclass
class MDTask:
    """A serialisable simulation command.

    Attributes
    ----------
    model:
        Registered model name (``villin-full``, ``villin-fast``,
        ``muller-brown``, ``double-well``).
    n_steps:
        Total steps the command must complete.
    report_interval:
        Steps between stored frames.
    integrator:
        ``langevin`` (default), ``nose-hoover``, ``verlet`` or
        ``markov-chain`` (for the lab's exact-ground-truth chains).
    temperature / friction / timestep:
        Integration parameters (K, 1/ps, ps).
    seed:
        RNG seed for velocities and noise.
    initial_positions:
        Explicit starting coordinates; if ``None``, the model's default
        unfolded/initial builder runs.
    checkpoint:
        Resume payload from a previous partial run.
    model_params:
        Extra keyword arguments for the model builder.
    task_id:
        Opaque identifier assigned by the project controller.
    precision:
        ``"float64"`` (default, bit-reproducible) or ``"float32"``
        (the opt-in fast path, see :mod:`repro.md.precision`).
        Float32 cannot resume from a checkpoint — resuming requires
        bit-identity — so that combination is rejected here.
    dispatch:
        ``"auto"`` / ``"serial"`` / ``"batched"``: how this task may
        be propagated when stacked (see :mod:`repro.md.dispatch`).
    """

    model: str
    n_steps: int
    report_interval: int = 100
    integrator: str = "langevin"
    temperature: float = 300.0
    friction: float = 1.0
    timestep: float = 0.02
    seed: int = 0
    initial_positions: Optional[np.ndarray] = None
    checkpoint: Optional[Dict] = None
    model_params: Dict = field(default_factory=dict)
    task_id: str = ""
    precision: str = DEFAULT_PRECISION
    dispatch: str = DEFAULT_DISPATCH

    def __post_init__(self) -> None:
        validate_precision(self.precision)
        validate_dispatch(self.dispatch)
        if self.precision != "float64" and self.checkpoint is not None:
            raise ConfigurationError(
                "precision='float32' cannot resume from a checkpoint: "
                "resuming is contractually bit-identical and float32 "
                "trajectories are not bit-reproducible"
            )

    def to_payload(self) -> Dict:
        """Wire-format dict."""
        payload = {
            "model": self.model,
            "n_steps": int(self.n_steps),
            "report_interval": int(self.report_interval),
            "integrator": self.integrator,
            "temperature": float(self.temperature),
            "friction": float(self.friction),
            "timestep": float(self.timestep),
            "seed": int(self.seed),
            "model_params": dict(self.model_params),
            "task_id": self.task_id,
            "precision": self.precision,
            "dispatch": self.dispatch,
        }
        if self.initial_positions is not None:
            payload["initial_positions"] = np.asarray(self.initial_positions)
        if self.checkpoint is not None:
            payload["checkpoint"] = self.checkpoint
        return payload

    @classmethod
    def from_payload(cls, payload: Dict) -> "MDTask":
        """Inverse of :meth:`to_payload`."""
        return cls(
            model=payload["model"],
            n_steps=int(payload["n_steps"]),
            report_interval=int(payload.get("report_interval", 100)),
            integrator=payload.get("integrator", "langevin"),
            temperature=float(payload.get("temperature", 300.0)),
            friction=float(payload.get("friction", 1.0)),
            timestep=float(payload.get("timestep", 0.02)),
            seed=int(payload.get("seed", 0)),
            initial_positions=(
                np.asarray(payload["initial_positions"])
                if "initial_positions" in payload
                else None
            ),
            checkpoint=payload.get("checkpoint"),
            model_params=dict(payload.get("model_params", {})),
            task_id=payload.get("task_id", ""),
            precision=payload.get("precision", DEFAULT_PRECISION),
            dispatch=payload.get("dispatch", DEFAULT_DISPATCH),
        )


@dataclass
class MDResult:
    """Output of running (part of) an :class:`MDTask`."""

    task_id: str
    frames: np.ndarray
    times: np.ndarray
    checkpoint: Dict
    steps_completed: int
    completed: bool
    wall_seconds: float
    final_potential_energy: float

    def to_payload(self) -> Dict:
        """Wire-format dict."""
        return {
            "task_id": self.task_id,
            "frames": self.frames,
            "times": self.times,
            "checkpoint": self.checkpoint,
            "steps_completed": int(self.steps_completed),
            "completed": bool(self.completed),
            "wall_seconds": float(self.wall_seconds),
            "final_potential_energy": float(self.final_potential_energy),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "MDResult":
        """Inverse of :meth:`to_payload`."""
        return cls(
            task_id=payload["task_id"],
            frames=np.asarray(payload["frames"]),
            times=np.asarray(payload["times"]),
            checkpoint=payload["checkpoint"],
            steps_completed=int(payload["steps_completed"]),
            completed=bool(payload["completed"]),
            wall_seconds=float(payload["wall_seconds"]),
            final_potential_energy=float(payload["final_potential_energy"]),
        )


#: Fields that must agree for MDTasks to share one batched propagation.
BATCH_COMPATIBLE_FIELDS = (
    "model",
    "n_steps",
    "report_interval",
    "integrator",
    "temperature",
    "friction",
    "timestep",
    "model_params",
    "precision",
    "dispatch",
)


@dataclass
class BatchedMDTask:
    """R compatible :class:`MDTask` commands stacked into one kernel call.

    Per-replica degrees of freedom (seed, task id, explicit initial
    positions, resume checkpoint) stay per-replica; everything listed
    in :data:`BATCH_COMPATIBLE_FIELDS` is shared — those are exactly
    the fields the distribution stack's command coalescing keys on.
    """

    model: str
    n_steps: int
    seeds: List[int]
    task_ids: List[str]
    report_interval: int = 100
    integrator: str = "langevin"
    temperature: float = 300.0
    friction: float = 1.0
    timestep: float = 0.02
    initial_positions: Optional[List[Optional[np.ndarray]]] = None
    checkpoints: Optional[List[Optional[Dict]]] = None
    model_params: Dict = field(default_factory=dict)
    batch_id: str = ""
    precision: str = DEFAULT_PRECISION
    dispatch: str = DEFAULT_DISPATCH

    def __post_init__(self) -> None:
        n_rep = len(self.seeds)
        if n_rep == 0:
            raise ConfigurationError("a batched task needs >= 1 replica")
        if len(self.task_ids) != n_rep:
            raise ConfigurationError("task_ids/seeds length mismatch")
        for name in ("initial_positions", "checkpoints"):
            per_replica = getattr(self, name)
            if per_replica is not None and len(per_replica) != n_rep:
                raise ConfigurationError(f"{name}/seeds length mismatch")
        validate_precision(self.precision)
        validate_dispatch(self.dispatch)
        if self.precision != "float64":
            raise ConfigurationError(
                "precision='float32' is rejected for batched stacks: "
                "per-replica results of a batch are contractually "
                "bit-identical to serial runs, which float32 cannot "
                "guarantee (run float32 tasks individually instead)"
            )

    @property
    def n_replicas(self) -> int:
        """Number of stacked replica commands."""
        return len(self.seeds)

    @classmethod
    def from_tasks(
        cls, tasks: Sequence[MDTask], batch_id: str = ""
    ) -> "BatchedMDTask":
        """Stack compatible serial tasks (see :data:`BATCH_COMPATIBLE_FIELDS`).

        Raises
        ------
        ConfigurationError
            If any task disagrees on a shared field.
        """
        if not tasks:
            raise ConfigurationError("need at least one task to batch")
        first = tasks[0]
        for task in tasks[1:]:
            for name in BATCH_COMPATIBLE_FIELDS:
                if getattr(task, name) != getattr(first, name):
                    raise ConfigurationError(
                        f"cannot batch tasks differing in {name!r}"
                    )
        initial = [task.initial_positions for task in tasks]
        checkpoints = [task.checkpoint for task in tasks]
        return cls(
            model=first.model,
            n_steps=first.n_steps,
            seeds=[task.seed for task in tasks],
            task_ids=[task.task_id for task in tasks],
            report_interval=first.report_interval,
            integrator=first.integrator,
            temperature=first.temperature,
            friction=first.friction,
            timestep=first.timestep,
            initial_positions=(
                initial if any(p is not None for p in initial) else None
            ),
            checkpoints=(
                checkpoints if any(c is not None for c in checkpoints) else None
            ),
            model_params=dict(first.model_params),
            batch_id=batch_id or first.task_id,
            precision=first.precision,
            dispatch=first.dispatch,
        )

    def replica_task(self, replica: int) -> MDTask:
        """The serial :class:`MDTask` for one replica."""
        return MDTask(
            model=self.model,
            n_steps=self.n_steps,
            report_interval=self.report_interval,
            integrator=self.integrator,
            temperature=self.temperature,
            friction=self.friction,
            timestep=self.timestep,
            seed=self.seeds[replica],
            initial_positions=(
                self.initial_positions[replica]
                if self.initial_positions is not None
                else None
            ),
            checkpoint=(
                self.checkpoints[replica]
                if self.checkpoints is not None
                else None
            ),
            model_params=dict(self.model_params),
            task_id=self.task_ids[replica],
            precision=self.precision,
            dispatch=self.dispatch,
        )

    def tasks(self) -> List[MDTask]:
        """All replica tasks, in replica order."""
        return [self.replica_task(r) for r in range(self.n_replicas)]

    def to_payload(self) -> Dict:
        """Wire-format dict."""
        payload = {
            "model": self.model,
            "n_steps": int(self.n_steps),
            "seeds": [int(seed) for seed in self.seeds],
            "task_ids": list(self.task_ids),
            "report_interval": int(self.report_interval),
            "integrator": self.integrator,
            "temperature": float(self.temperature),
            "friction": float(self.friction),
            "timestep": float(self.timestep),
            "model_params": dict(self.model_params),
            "batch_id": self.batch_id,
            "precision": self.precision,
            "dispatch": self.dispatch,
        }
        if self.initial_positions is not None:
            payload["initial_positions"] = [
                np.asarray(p) if p is not None else None
                for p in self.initial_positions
            ]
        if self.checkpoints is not None:
            payload["checkpoints"] = list(self.checkpoints)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict) -> "BatchedMDTask":
        """Inverse of :meth:`to_payload`."""
        initial = payload.get("initial_positions")
        return cls(
            model=payload["model"],
            n_steps=int(payload["n_steps"]),
            seeds=[int(seed) for seed in payload["seeds"]],
            task_ids=list(payload["task_ids"]),
            report_interval=int(payload.get("report_interval", 100)),
            integrator=payload.get("integrator", "langevin"),
            temperature=float(payload.get("temperature", 300.0)),
            friction=float(payload.get("friction", 1.0)),
            timestep=float(payload.get("timestep", 0.02)),
            initial_positions=(
                [np.asarray(p) if p is not None else None for p in initial]
                if initial is not None
                else None
            ),
            checkpoints=payload.get("checkpoints"),
            model_params=dict(payload.get("model_params", {})),
            batch_id=payload.get("batch_id", ""),
            precision=payload.get("precision", DEFAULT_PRECISION),
            dispatch=payload.get("dispatch", DEFAULT_DISPATCH),
        )


@dataclass
class BatchedMDResult:
    """Per-command results of one batched propagation.

    ``split()`` recovers plain :class:`MDResult` objects whose
    checkpoints, frames and step counts are bit-identical to serial
    execution — the property that lets the distribution stack treat a
    coalesced command group exactly like individually-run commands.

    ``dispatch`` records which path actually propagated the stack
    (``"batched"`` — the vectorised kernel — or ``"serial"`` — the
    per-replica loop, chosen by policy or integrator fallback); since
    both paths are bit-identical it is purely observability.
    """

    results: List[MDResult]
    batch_id: str = ""
    dispatch: str = "batched"

    @property
    def completed(self) -> bool:
        """True when every replica command completed."""
        return all(result.completed for result in self.results)

    def split(self) -> List[MDResult]:
        """Per-command results, aligned with the batched task's replicas."""
        return list(self.results)

    def to_payload(self) -> Dict:
        """Wire-format dict."""
        return {
            "batch_id": self.batch_id,
            "results": [result.to_payload() for result in self.results],
            "dispatch": self.dispatch,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "BatchedMDResult":
        """Inverse of :meth:`to_payload`."""
        return cls(
            results=[MDResult.from_payload(p) for p in payload["results"]],
            batch_id=payload.get("batch_id", ""),
            dispatch=payload.get("dispatch", "batched"),
        )


@dataclass
class BuiltModel:
    """A constructed model: one shared system + a per-task state builder.

    The split is what lets the serial and batched engines share a
    single registry lookup: the (expensive) system is built once, then
    ``state_builder`` is called per task/replica — states depend only
    on the task's seed, initial positions and temperature, so a
    batched stack's replicas are bit-identical to serial runs.
    """

    system: System
    state_builder: Callable[[MDTask], State]


def _explicit_state(system: System, task: MDTask) -> Optional[State]:
    """State from a task's explicit coordinates (velocities thermalised)."""
    if task.initial_positions is None:
        return None
    rng = RandomStream(task.seed)
    velocities = system.maxwell_boltzmann_velocities(task.temperature, rng)
    return State(np.asarray(task.initial_positions, dtype=float), velocities)


def _villin_builder(model: str, model_params: Dict) -> BuiltModel:
    variant = model.split("-", 1)[1] if "-" in model else "full"
    built = build_villin(variant=variant, **model_params)

    def state_builder(task: MDTask) -> State:
        state = _explicit_state(built.system, task)
        if state is not None:
            return state
        return built.extended_state(rng=task.seed, temperature=task.temperature)

    return BuiltModel(built.system, state_builder)


def _muller_brown_builder(model: str, model_params: Dict) -> BuiltModel:
    system = muller_brown_system(**model_params)

    def state_builder(task: MDTask) -> State:
        state = _explicit_state(system, task)
        if state is not None:
            return state
        return muller_brown_initial_state(
            rng=task.seed, temperature=task.temperature, **model_params
        )

    return BuiltModel(system, state_builder)


def _lj_fluid_builder(model: str, model_params: Dict) -> BuiltModel:
    from repro.md.models.lj_fluid import lj_fluid_state, lj_fluid_system

    system, box = lj_fluid_system(**model_params)

    def state_builder(task: MDTask) -> State:
        state = _explicit_state(system, task)
        if state is not None:
            return state
        return lj_fluid_state(
            system, box, temperature=task.temperature, rng=task.seed
        )

    return BuiltModel(system, state_builder)


def _markov_chain_builder(model: str, model_params: Dict) -> BuiltModel:
    from repro.md.models.markov_chain import (
        build_markov_chain,
        markov_chain_initial_state,
    )

    system = build_markov_chain(model, **model_params)
    spec = system.spec

    def state_builder(task: MDTask) -> State:
        state = _explicit_state(system, task)
        if state is not None:
            # snap arbitrary restart coordinates onto the nearest
            # embedding point so the position is a valid chain state
            state.positions[...] = spec.position_of(
                spec.state_of(state.positions)
            )
            return state
        return markov_chain_initial_state(system)

    return BuiltModel(system, state_builder)


def _double_well_builder(model: str, model_params: Dict) -> BuiltModel:
    system = double_well_system(**model_params)
    width = model_params.get("width", 1.0)
    dim = model_params.get("dim", 1)

    def state_builder(task: MDTask) -> State:
        state = _explicit_state(system, task)
        if state is not None:
            return state
        return double_well_initial_state(
            rng=task.seed, temperature=task.temperature, width=width, dim=dim
        )

    return BuiltModel(system, state_builder)


#: Model registry: name -> builder(model, model_params) -> BuiltModel.
#: One lookup shared by the serial and batched execution paths.
MODEL_REGISTRY: Dict[str, Callable[[str, Dict], BuiltModel]] = {
    "villin-full": _villin_builder,
    "villin-fast": _villin_builder,
    "muller-brown": _muller_brown_builder,
    "double-well": _double_well_builder,
    "lj-fluid": _lj_fluid_builder,
    "markov-ala20": _markov_chain_builder,
    "markov-mb": _markov_chain_builder,
}


def register_model(
    name: str, builder: Callable[[str, Dict], BuiltModel]
) -> None:
    """Register (or override) a model builder under *name*."""
    MODEL_REGISTRY[name] = builder


def resolve_model(model: str, model_params: Optional[Dict] = None) -> BuiltModel:
    """Look up and build *model*, raising typed errors for bad names.

    Raises
    ------
    UnknownModelError
        If *model* is not registered (a :class:`ConfigurationError`
        subclass, so pre-registry callers keep working).
    """
    try:
        builder = MODEL_REGISTRY[model]
    except KeyError:
        raise UnknownModelError(
            f"unknown model {model!r}; known: {sorted(MODEL_REGISTRY)}"
        ) from None
    return builder(model, dict(model_params or {}))


def _legacy_task_builder(name: str) -> Callable:
    def build(task: MDTask):
        built = resolve_model(task.model, task.model_params)
        return built.system, built.state_builder(task)

    build.__name__ = name
    return build


_LEGACY_BUILDER_NAMES = (
    "_build_villin_task",
    "_build_muller_brown_task",
    "_build_lj_fluid_task",
    "_build_double_well_task",
)


def __getattr__(name: str):
    if name in _LEGACY_BUILDER_NAMES:
        from repro.compat import warn_deprecated

        warn_deprecated(
            f"repro.md.engine.{name}",
            "repro.md.engine.resolve_model",
            stacklevel=2,
        )
        return _legacy_task_builder(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class MDEngine:
    """Executes :class:`MDTask` commands; the worker-side 'executable'.

    Parameters
    ----------
    segment_steps:
        Steps per internal segment; checkpoints are cut at segment
        boundaries, so this is the resume granularity.
    """

    #: Executable identifier matched against command requirements
    #: during resource matching (the paper's "executables").
    name = "mdrun"
    version = "1.0"

    def __init__(self, segment_steps: int = 1000) -> None:
        if segment_steps <= 0:
            raise ConfigurationError("segment_steps must be positive")
        self.segment_steps = int(segment_steps)

    def _make_integrator(self, task: MDTask):
        return make_integrator(
            task.integrator,
            timestep=task.timestep,
            temperature=task.temperature,
            friction=task.friction,
            seed=task.seed,
        )

    def prepare(self, task: MDTask) -> Simulation:
        """Build the simulation for *task* (resuming its checkpoint if any)."""
        built = resolve_model(task.model, task.model_params)
        system, state = apply_precision(
            built.system, built.state_builder(task), task.precision
        )
        simulation = Simulation(
            system,
            self._make_integrator(task),
            state,
            report_interval=task.report_interval,
        )
        if task.checkpoint is not None:
            simulation.restore(Checkpoint.from_payload(task.checkpoint))
        return simulation

    def run(self, task: MDTask, abort_after_steps: Optional[int] = None) -> MDResult:
        """Run *task* to completion (or abort early, returning a checkpoint).

        Parameters
        ----------
        abort_after_steps:
            If given, stop after at most this many further steps even
            if the task is unfinished — used by failure-injection tests
            and pre-empted workers.  The result then has
            ``completed=False`` and a resumable checkpoint.
        """
        start_wall = _walltime.perf_counter()
        simulation = self.prepare(task)
        start_step = simulation.state.step
        target = task.n_steps
        budget = abort_after_steps if abort_after_steps is not None else target

        while (
            simulation.state.step - start_step < budget
            and simulation.state.step < target
        ):
            remaining_task = target - simulation.state.step
            remaining_budget = budget - (simulation.state.step - start_step)
            chunk = min(self.segment_steps, remaining_task, remaining_budget)
            simulation.run(chunk)

        completed = simulation.state.step >= target
        checkpoint = simulation.checkpoint()
        trajectory = simulation.trajectory
        return MDResult(
            task_id=task.task_id,
            frames=trajectory.frames,
            times=trajectory.times,
            checkpoint=checkpoint.to_payload(),
            steps_completed=simulation.state.step - start_step,
            completed=completed,
            wall_seconds=_walltime.perf_counter() - start_wall,
            final_potential_energy=simulation.potential_energy(),
        )

    def run_batched(
        self,
        btask: BatchedMDTask,
        abort_after_steps: Optional[int] = None,
    ) -> BatchedMDResult:
        """Run a batched task; per-replica results match serial bit-for-bit.

        The task's ``dispatch`` policy decides the path: ``"auto"``
        uses the vectorised kernel only at replica counts where it is
        measured to win (see :mod:`repro.md.dispatch`), ``"serial"`` /
        ``"batched"`` force one.  Integrators without a batched form
        (Nosé–Hoover) always take the serial per-replica loop, so every
        coalescible command is also runnable here.  The chosen path is
        recorded in ``BatchedMDResult.dispatch``.  *abort_after_steps*
        bounds the further steps of every replica, mirroring
        :meth:`run`.
        """
        start_wall = _walltime.perf_counter()
        integrator = make_batched_integrator(
            btask.integrator,
            btask.timestep,
            btask.temperature,
            btask.friction,
            btask.seeds,
        )
        mode = resolve_dispatch(btask.dispatch, btask.n_replicas)
        if integrator is None or mode == "serial":
            return BatchedMDResult(
                results=[
                    self.run(task, abort_after_steps)
                    for task in btask.tasks()
                ],
                batch_id=btask.batch_id,
                dispatch="serial",
            )
        built = resolve_model(btask.model, btask.model_params)
        simulation = BatchedSimulation(
            built.system,
            integrator,
            [built.state_builder(task) for task in btask.tasks()],
            report_interval=btask.report_interval,
        )
        if btask.checkpoints is not None:
            for replica, payload in enumerate(btask.checkpoints):
                if payload is not None:
                    simulation.restore(
                        replica, Checkpoint.from_payload(payload)
                    )
        start_steps = simulation.batch.steps.copy()
        target = btask.n_steps
        budget = abort_after_steps if abort_after_steps is not None else target
        for replica in range(btask.n_replicas):
            # A replica restored at (or past) its target never runs —
            # the serial engine records no frames for it either.
            if start_steps[replica] >= target or budget <= 0:
                simulation.deactivate(replica)

        while True:
            steps = simulation.batch.steps
            remaining = np.minimum(
                target - steps, budget - (steps - start_steps)
            )
            if not np.any(remaining > 0):
                break
            chunk = np.clip(remaining, 0, self.segment_steps)
            simulation.run_to(steps + chunk)

        elapsed = _walltime.perf_counter() - start_wall
        results = []
        for replica in range(btask.n_replicas):
            trajectory = simulation.trajectories[replica]
            step = int(simulation.batch.steps[replica])
            results.append(
                MDResult(
                    task_id=btask.task_ids[replica],
                    frames=trajectory.frames,
                    times=trajectory.times,
                    checkpoint=simulation.checkpoint(replica).to_payload(),
                    steps_completed=step - int(start_steps[replica]),
                    completed=step >= target,
                    # Amortised: the batch ran once for all replicas.
                    wall_seconds=elapsed / btask.n_replicas,
                    # Serial energy path so results are indistinguishable
                    # from individually-run commands.
                    final_potential_energy=built.system.potential_energy(
                        simulation.batch.positions[replica]
                    ),
                )
            )
        return BatchedMDResult(
            results=results, batch_id=btask.batch_id, dispatch="batched"
        )
