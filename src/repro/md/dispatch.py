"""Execution-policy knobs shared by the whole MD surface.

Two keyword-only choices travel with every simulation command
(:class:`~repro.md.engine.MDTask`), every stacked batch
(:class:`~repro.md.engine.BatchedMDTask`) and the public facades
(:meth:`repro.md.simulation.Simulation.configure`,
:class:`repro.api.Ensemble`):

``precision``
    ``"float64"`` (default) — the bit-identity path: trajectories,
    checkpoints and coalesced results are byte-for-byte reproducible
    and guarded by ``tests/test_batched_identity.py``.
    ``"float32"`` — the opt-in fast path with fused force accumulation
    (:mod:`repro.md.precision`): faster and lighter on memory for
    large systems, accurate only to documented tolerance bounds, and
    therefore rejected wherever bit-identity is contractually required
    (resume checkpoints, batched stacks, coalesced commands).

``dispatch``
    How ``run_batched`` propagates a replica stack.  ``"batched"``
    forces the vectorised ``(R, N, dim)`` kernel, ``"serial"`` forces a
    per-replica loop, and ``"auto"`` (default) picks whichever is
    faster for the stack's replica count using the measured crossover
    below.  Per-replica results are bit-identical either way — the
    policy is purely a speed decision, recorded in
    :class:`~repro.md.engine.BatchedMDResult` for observability.
"""

from __future__ import annotations

from repro.util.errors import ConfigurationError

#: Valid ``precision=`` values, default first.
PRECISIONS = ("float64", "float32")
DEFAULT_PRECISION = "float64"

#: Valid ``dispatch=`` values, default first.
DISPATCHES = ("auto", "serial", "batched")
DEFAULT_DISPATCH = "auto"

#: Smallest replica count at which the batched kernel beats R serial
#: runs.  Measured on villin-fast (300 steps, single thread): batched
#: is 0.55x at R=1 and 0.91x at R=2 (per-step Python dispatch plus the
#: scatter-round machinery outweigh the vectorisation win), crosses
#: over at R=3 (1.26x) and grows monotonically from there (1.6x at
#: R=4, 2.9x at R=8, >5x at R=64).  ``dispatch="auto"`` therefore
#: routes stacks below this bound through the serial per-replica loop.
BATCH_DISPATCH_MIN_REPLICAS = 3

#: Upper bound on auto-selected worker batch capacity (one kernel call
#: propagating more replicas than this stops paying for itself).
#: Moved here from ``repro.api`` so the policy lives beside the other
#: dispatch constants; the old name is shimmed with a deprecation.
MAX_AUTO_BATCH = 64


def validate_precision(precision: str) -> str:
    """Return *precision* or raise a typed :class:`ConfigurationError`."""
    if precision not in PRECISIONS:
        raise ConfigurationError(
            f"precision must be one of {PRECISIONS}, got {precision!r}"
        )
    return precision


def validate_dispatch(dispatch: str) -> str:
    """Return *dispatch* or raise a typed :class:`ConfigurationError`."""
    if dispatch not in DISPATCHES:
        raise ConfigurationError(
            f"dispatch must be one of {DISPATCHES}, got {dispatch!r}"
        )
    return dispatch


def resolve_dispatch(dispatch: str, n_replicas: int) -> str:
    """Resolve a dispatch policy to ``"serial"`` or ``"batched"``.

    ``"auto"`` picks the batched kernel only at replica counts where it
    is measured to win (:data:`BATCH_DISPATCH_MIN_REPLICAS`); explicit
    choices pass through unchanged.
    """
    validate_dispatch(dispatch)
    if dispatch != "auto":
        return dispatch
    if n_replicas < BATCH_DISPATCH_MIN_REPLICAS:
        return "serial"
    return "batched"
