"""Simulated domain decomposition: the MPI level of the hierarchy.

Gromacs parallelises one simulation across ranks by spatial domain
decomposition: each rank owns the atoms in a slab of space, computes
the interactions assigned to it, imports *halo* positions it reads but
does not own, and exports the forces it produced on remote atoms.
This module reproduces that layer in-process:

* atoms are assigned to ranks by slabs along one axis (balanced by
  atom count);
* every interaction of every force term is assigned to the rank owning
  its first atom, by *slicing the force objects' index arrays* — so
  the decomposed arithmetic is exactly the serial arithmetic,
  partitioned (the correctness tests assert bitwise equality);
* each rank's halo (read but not owned) and force-export sets are
  derived from its assigned interactions, giving the per-step
  communication volume that the performance model's overhead term
  abstracts.

No real MPI is involved (none is available here); what is preserved is
the decomposition logic, the exactness guarantee and the communication
accounting — the quantities the paper's Fig. 6 reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.md.forcefield.bonded import (
    HarmonicAngleForce,
    HarmonicBondForce,
    PeriodicDihedralForce,
)
from repro.md.forcefield.go_model import GoContactForce
from repro.md.forcefield.nonbonded import (
    ExcludedVolumeForce,
    LennardJonesForce,
    ReactionFieldElectrostatics,
)
from repro.md.neighborlist import AllPairs
from repro.md.system import System
from repro.util.errors import ConfigurationError

#: Bytes per atom position or force record (3 doubles).
BYTES_PER_VECTOR = 24

#: Safety margin (nm) added to nonbonded cutoffs when freezing a
#: decomposition's pair lists at the reference geometry.
_PAIR_SKIN = 0.3


@dataclass
class CommStats:
    """Per-step communication accounting for one decomposition."""

    n_ranks: int
    halo_atoms_per_rank: List[int]
    export_atoms_per_rank: List[int]

    @property
    def total_bytes_per_step(self) -> int:
        """Positions imported plus forces exported, all ranks."""
        return BYTES_PER_VECTOR * (
            sum(self.halo_atoms_per_rank) + sum(self.export_atoms_per_rank)
        )

    @property
    def max_halo(self) -> int:
        """Largest halo across ranks (the latency-critical rank)."""
        return max(self.halo_atoms_per_rank) if self.halo_atoms_per_rank else 0


def _slice_indexed_force(force, keep: np.ndarray):
    """Clone *force* with only the interactions selected by *keep*."""
    if isinstance(force, HarmonicBondForce):
        return HarmonicBondForce(force.pairs[keep], force.r0[keep], force.k[keep])
    if isinstance(force, HarmonicAngleForce):
        return HarmonicAngleForce(
            force.triples[keep], force.theta0[keep], force.k[keep]
        )
    if isinstance(force, PeriodicDihedralForce):
        return PeriodicDihedralForce(
            force.quads[keep],
            force.phi0[keep],
            force.k[keep],
            force.mult[keep],
        )
    if isinstance(force, GoContactForce):
        return GoContactForce(
            force.pairs[keep],
            force.r0[keep],
            epsilon=force.epsilon[keep],
        )
    raise ConfigurationError(
        f"cannot slice force type {type(force).__name__}"
    )


def _interaction_atoms(force) -> Optional[np.ndarray]:
    """Index array (n_interactions, arity) of a force's interactions."""
    if isinstance(force, HarmonicBondForce):
        return force.pairs
    if isinstance(force, HarmonicAngleForce):
        return force.triples
    if isinstance(force, PeriodicDihedralForce):
        return force.quads
    if isinstance(force, GoContactForce):
        return force.pairs
    return None


class _SlicedPairProvider:
    """Static (i, j) arrays as a pair provider for nonbonded slices."""

    def __init__(self, i: np.ndarray, j: np.ndarray) -> None:
        self._i = np.ascontiguousarray(i)
        self._j = np.ascontiguousarray(j)

    def pairs(self, positions):
        """Return the frozen (i, j) pair arrays (positions unused)."""
        return self._i, self._j


def _slice_nonbonded(force, owner_of, rank, positions_hint):
    """Clone a pair-provider force keeping this rank's share of pairs.

    Pair (i, j) belongs to the rank owning i when i+j is even and to
    the rank owning j otherwise — the standard trick that halves the
    systematic skew of "first atom owns the pair" (low-index atoms
    appear first in far more pairs).
    """
    i, j = force.pair_provider.pairs(positions_hint)
    # prune pairs far beyond the cutoff at the reference geometry (with
    # a generous skin so short runs stay exact); an all-pairs provider
    # would otherwise make every rank's halo the whole system
    cutoff = getattr(force, "cutoff", None)
    if cutoff is not None and len(i):
        rij = positions_hint[j] - positions_hint[i]
        box = getattr(force, "box", None)
        if box is not None:
            rij = rij - box * np.round(rij / box)
        r2 = np.sum(rij * rij, axis=1)
        reach = (cutoff + _PAIR_SKIN) ** 2
        i, j = i[r2 < reach], j[r2 < reach]
    responsible = np.where((i + j) % 2 == 0, owner_of[i], owner_of[j])
    keep = responsible == rank
    provider = _SlicedPairProvider(i[keep], j[keep])
    if isinstance(force, LennardJonesForce):
        out = LennardJonesForce(
            provider, force.sigma, force.epsilon, cutoff=force.cutoff,
            box=force.box,
        )
        return out, np.stack([i[keep], j[keep]], axis=1)
    if isinstance(force, ReactionFieldElectrostatics):
        out = ReactionFieldElectrostatics(
            provider, force.charges, cutoff=force.cutoff,
            epsilon_rf=force.epsilon_rf,
        )
        return out, np.stack([i[keep], j[keep]], axis=1)
    if isinstance(force, ExcludedVolumeForce):
        out = ExcludedVolumeForce(
            provider, sigma=force.sigma, epsilon=force.epsilon,
            cutoff_factor=force.cutoff / force.sigma,
        )
        return out, np.stack([i[keep], j[keep]], axis=1)
    raise ConfigurationError(
        f"cannot slice nonbonded force type {type(force).__name__}"
    )


def slab_assignment(
    positions: np.ndarray, n_ranks: int, axis: int = 0
) -> np.ndarray:
    """Owner rank per atom: contiguous slabs balanced by atom count."""
    if n_ranks < 1:
        raise ConfigurationError("n_ranks must be >= 1")
    n = len(positions)
    if n_ranks > n:
        raise ConfigurationError("more ranks than atoms")
    order = np.argsort(positions[:, axis], kind="stable")
    owner = np.empty(n, dtype=int)
    bounds = np.linspace(0, n, n_ranks + 1).astype(int)
    for rank in range(n_ranks):
        owner[order[bounds[rank] : bounds[rank + 1]]] = rank
    return owner


class DomainDecomposition:
    """A system's force computation split across simulated ranks.

    Parameters
    ----------
    system:
        The serial system (its force terms are sliced, never copied
        numerically).
    positions:
        Reference coordinates used to place atoms into slabs (and to
        freeze nonbonded pair lists for AllPairs-style providers).
    n_ranks:
        Number of simulated MPI ranks.
    axis:
        Decomposition axis.
    """

    def __init__(
        self,
        system: System,
        positions: np.ndarray,
        n_ranks: int,
        axis: int = 0,
    ) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.shape != (system.n_atoms, system.dim):
            raise ConfigurationError("positions do not match the system")
        self.system = system
        self.n_ranks = int(n_ranks)
        self.owner_of = slab_assignment(positions, n_ranks, axis=axis)
        self._rank_forces: List[List] = [[] for _ in range(n_ranks)]
        self._touched: List[set] = [set() for _ in range(n_ranks)]

        for force in system.forces:
            atoms = _interaction_atoms(force)
            if atoms is not None:
                first = atoms[:, 0]
                for rank in range(n_ranks):
                    keep = self.owner_of[first] == rank
                    if not np.any(keep):
                        continue
                    self._rank_forces[rank].append(
                        _slice_indexed_force(force, keep)
                    )
                    self._touched[rank].update(atoms[keep].ravel().tolist())
            elif hasattr(force, "pair_provider"):
                for rank in range(n_ranks):
                    sliced, pairs = _slice_nonbonded(
                        force, self.owner_of, rank, positions
                    )
                    if len(pairs) == 0:
                        continue
                    self._rank_forces[rank].append(sliced)
                    self._touched[rank].update(pairs.ravel().tolist())
            else:
                raise ConfigurationError(
                    f"force {type(force).__name__} is not decomposable"
                )

    # -- execution -----------------------------------------------------------

    def compute_forces(
        self, positions: np.ndarray
    ) -> Tuple[float, np.ndarray, CommStats]:
        """Total energy/forces via per-rank partial sums, plus comm stats.

        The result is numerically identical to the serial computation
        term-reordering aside (and bitwise identical per interaction).
        """
        total_energy = 0.0
        total_forces = np.zeros_like(positions)
        halo, exports = [], []
        for rank in range(self.n_ranks):
            rank_energy = 0.0
            rank_forces = np.zeros_like(positions)
            for force in self._rank_forces[rank]:
                e, f = force.energy_forces(positions)
                rank_energy += e
                rank_forces += f
            total_energy += rank_energy
            total_forces += rank_forces
            owned = self.owner_of == rank
            touched = np.zeros(len(positions), dtype=bool)
            if self._touched[rank]:
                touched[np.fromiter(self._touched[rank], dtype=int)] = True
            halo.append(int(np.sum(touched & ~owned)))
            # forces produced on atoms this rank does not own get exported
            produced = np.any(rank_forces != 0.0, axis=1)
            exports.append(int(np.sum(produced & ~owned)))
        stats = CommStats(
            n_ranks=self.n_ranks,
            halo_atoms_per_rank=halo,
            export_atoms_per_rank=exports,
        )
        return total_energy, total_forces, stats

    # -- analysis ---------------------------------------------------------

    def load_balance(self) -> np.ndarray:
        """Interactions assigned per rank (normalised to the mean)."""
        counts = np.array(
            [
                sum(
                    len(_interaction_atoms(f))
                    if _interaction_atoms(f) is not None
                    else len(f.pair_provider.pairs(None)[0])
                    for f in rank_forces
                )
                for rank_forces in self._rank_forces
            ],
            dtype=float,
        )
        mean = counts.mean() if counts.size else 1.0
        return counts / max(mean, 1e-12)

    def communication_summary(self, positions: np.ndarray) -> Dict:
        """Comm volume per step and its scaling interpretation."""
        _, _, stats = self.compute_forces(positions)
        return {
            "n_ranks": self.n_ranks,
            "bytes_per_step": stats.total_bytes_per_step,
            "max_halo_atoms": stats.max_halo,
            "mean_halo_atoms": float(np.mean(stats.halo_atoms_per_rank)),
        }
