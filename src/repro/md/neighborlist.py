"""Neighbour-pair generation: all-pairs and cell lists.

Nonbonded forces are written against a *pair provider*: an object with
``pairs(positions) -> (i, j)`` returning index arrays of candidate
interacting pairs (i < j).  ``AllPairs`` precomputes the full pair list
minus exclusions (ideal below a few hundred particles, where numpy
overhead dominates any pruning win); ``CellList`` bins particles into
cells of the cutoff size so only the 27 neighbouring cells are searched
(linear scaling for large systems).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

import numpy as np

from repro.util.errors import ConfigurationError


def _exclusion_key(n_atoms: int, i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Map pairs to scalar keys for fast set membership tests."""
    return i.astype(np.int64) * n_atoms + j.astype(np.int64)


class AllPairs:
    """Every unordered pair, minus exclusions, precomputed once."""

    #: The pair list never depends on coordinates, so batched force
    #: kernels may share it across every replica of a stack.
    positions_independent = True

    def __init__(
        self, n_atoms: int, exclusions: Optional[Iterable[Tuple[int, int]]] = None
    ) -> None:
        if n_atoms < 1:
            raise ConfigurationError(f"n_atoms must be >= 1, got {n_atoms}")
        self.n_atoms = n_atoms
        iu = np.triu_indices(n_atoms, k=1)
        i, j = iu[0], iu[1]
        if exclusions:
            excl = {(min(a, b), max(a, b)) for a, b in exclusions}
            if excl:
                excl_arr = np.array(sorted(excl), dtype=np.int64)
                keys = _exclusion_key(n_atoms, i, j)
                excl_keys = _exclusion_key(
                    n_atoms, excl_arr[:, 0], excl_arr[:, 1]
                )
                keep = ~np.isin(keys, excl_keys)
                i, j = i[keep], j[keep]
        self._i = np.ascontiguousarray(i)
        self._j = np.ascontiguousarray(j)

    def pairs(self, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return the fixed (i, j) pair arrays (positions unused)."""
        return self._i, self._j

    def __len__(self) -> int:
        return len(self._i)


class CellList:
    """Cutoff-based pair provider using spatial binning.

    Pairs further apart than ``cutoff + skin`` are never returned; the
    skin gives headroom so callers re-using a pair list across a few
    steps stay correct.

    Parameters
    ----------
    cutoff:
        Interaction cutoff (nm).
    skin:
        Extra margin added to the cell size (nm).
    exclusions:
        Pairs never returned.
    """

    #: Pair lists are rebuilt from coordinates, so batched kernels must
    #: fall back to per-replica evaluation.
    positions_independent = False

    def __init__(
        self,
        cutoff: float,
        skin: float = 0.1,
        exclusions: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> None:
        if cutoff <= 0:
            raise ConfigurationError(f"cutoff must be positive, got {cutoff}")
        if skin < 0:
            raise ConfigurationError(f"skin must be >= 0, got {skin}")
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self._excl: Set[Tuple[int, int]] = (
            {(min(a, b), max(a, b)) for a, b in exclusions} if exclusions else set()
        )

    def pairs(self, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate pairs within ``cutoff + skin`` of each other."""
        n = len(positions)
        reach = self.cutoff + self.skin
        origin = positions.min(axis=0)
        cells = np.floor((positions - origin) / reach).astype(np.int64)
        # Hash 3-D (or 2-D) cell coordinates into a single key per atom.
        span = cells.max(axis=0) + 2
        multipliers = np.ones(positions.shape[1], dtype=np.int64)
        for d in range(1, positions.shape[1]):
            multipliers[d] = multipliers[d - 1] * span[d - 1]
        keys = cells @ multipliers

        # Group atom indices by cell.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        cell_starts = np.flatnonzero(
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        )
        cell_map = {}
        boundaries = np.append(cell_starts, n)
        for s, e in zip(boundaries[:-1], boundaries[1:]):
            cell_map[sorted_keys[s]] = order[s:e]

        dim = positions.shape[1]
        offsets = np.array(
            np.meshgrid(*[[-1, 0, 1]] * dim, indexing="ij")
        ).reshape(dim, -1).T

        out_i, out_j = [], []
        unique_cells = np.unique(cells, axis=0)
        for cell in unique_cells:
            key = cell @ multipliers
            members = cell_map[key]
            for off in offsets:
                nkey = (cell + off) @ multipliers
                others = cell_map.get(nkey)
                if others is None:
                    continue
                if nkey < key:
                    continue  # each cell pair visited once
                if nkey == key:
                    ii, jj = np.triu_indices(len(members), k=1)
                    out_i.append(members[ii])
                    out_j.append(members[jj])
                else:
                    ii = np.repeat(members, len(others))
                    jj = np.tile(others, len(members))
                    out_i.append(ii)
                    out_j.append(jj)

        if not out_i:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        i = np.concatenate(out_i)
        j = np.concatenate(out_j)
        # Orient (i < j) and drop pairs beyond the reach or excluded.
        swap = i > j
        i2 = np.where(swap, j, i)
        j2 = np.where(swap, i, j)
        d = positions[j2] - positions[i2]
        within = np.sum(d * d, axis=1) <= reach * reach
        i2, j2 = i2[within], j2[within]
        if self._excl:
            excl_arr = np.array(sorted(self._excl), dtype=np.int64)
            keys_p = _exclusion_key(n, i2, j2)
            keys_e = _exclusion_key(n, excl_arr[:, 0], excl_arr[:, 1])
            keep = ~np.isin(keys_p, keys_e)
            i2, j2 = i2[keep], j2[keep]
        return i2, j2
