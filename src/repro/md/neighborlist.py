"""Neighbour-pair generation: all-pairs, cell lists and lazy Verlet lists.

Nonbonded forces are written against a *pair provider*: an object with
``pairs(positions) -> (i, j)`` returning index arrays of candidate
interacting pairs (i < j).  ``AllPairs`` precomputes the full pair list
minus exclusions (ideal below a few hundred particles, where numpy
overhead dominates any pruning win); ``CellList`` bins particles into
cells of the cutoff size so only the 27 neighbouring cells are searched
(linear scaling for large systems).

``VerletList`` adds *laziness* on top: candidates within
``cutoff + skin`` are cached and reused until some atom has moved more
than ``skin / 2`` since the cached build, at which point no pair
outside the cache can yet have entered the true cutoff — so reuse is
**bit-exact**, not approximate.  Two further properties make the cached
list interchangeable with ``AllPairs`` for the force kernels:

- candidates are returned in canonical ``(i, j)`` lexicographic order
  (the ``np.triu_indices`` order), and
- every kernel filters ``r < cutoff`` *before* accumulating,

so the filtered pair sequence — values, order and length — is identical
whichever provider produced it, and forces/energies match bit-for-bit.

``SharedNeighborList`` is the batched-ensemble manager: one
configuration (cutoff, skin, box, preprocessed exclusions) shared by
every replica of a topology, with one lazily-rebuilt ``VerletList``
per replica so a batch pays one *setup*, R cached lists, and rebuilds
only for replicas that actually moved past the threshold.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

import numpy as np

from repro.util.errors import ConfigurationError


def _exclusion_key(n_atoms: int, i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Map pairs to scalar keys for fast set membership tests."""
    return i.astype(np.int64) * n_atoms + j.astype(np.int64)


class AllPairs:
    """Every unordered pair, minus exclusions, precomputed once."""

    #: The pair list never depends on coordinates, so batched force
    #: kernels may share it across every replica of a stack.
    positions_independent = True

    def __init__(
        self, n_atoms: int, exclusions: Optional[Iterable[Tuple[int, int]]] = None
    ) -> None:
        if n_atoms < 1:
            raise ConfigurationError(f"n_atoms must be >= 1, got {n_atoms}")
        self.n_atoms = n_atoms
        iu = np.triu_indices(n_atoms, k=1)
        i, j = iu[0], iu[1]
        if exclusions:
            excl = {(min(a, b), max(a, b)) for a, b in exclusions}
            if excl:
                excl_arr = np.array(sorted(excl), dtype=np.int64)
                keys = _exclusion_key(n_atoms, i, j)
                excl_keys = _exclusion_key(
                    n_atoms, excl_arr[:, 0], excl_arr[:, 1]
                )
                keep = ~np.isin(keys, excl_keys)
                i, j = i[keep], j[keep]
        self._i = np.ascontiguousarray(i)
        self._j = np.ascontiguousarray(j)

    def pairs(self, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return the fixed (i, j) pair arrays (positions unused)."""
        return self._i, self._j

    def __len__(self) -> int:
        return len(self._i)


class CellList:
    """Cutoff-based pair provider using spatial binning.

    Pairs further apart than ``cutoff + skin`` are never returned; the
    skin gives headroom so callers re-using a pair list across a few
    steps stay correct.

    Parameters
    ----------
    cutoff:
        Interaction cutoff (nm).
    skin:
        Extra margin added to the cell size (nm).
    exclusions:
        Pairs never returned.
    """

    #: Pair lists are rebuilt from coordinates, so batched kernels must
    #: fall back to per-replica evaluation.
    positions_independent = False

    def __init__(
        self,
        cutoff: float,
        skin: float = 0.1,
        exclusions: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> None:
        if cutoff <= 0:
            raise ConfigurationError(f"cutoff must be positive, got {cutoff}")
        if skin < 0:
            raise ConfigurationError(f"skin must be >= 0, got {skin}")
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self._excl: Set[Tuple[int, int]] = (
            {(min(a, b), max(a, b)) for a, b in exclusions} if exclusions else set()
        )

    def pairs(self, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate pairs within ``cutoff + skin`` of each other."""
        n = len(positions)
        reach = self.cutoff + self.skin
        origin = positions.min(axis=0)
        cells = np.floor((positions - origin) / reach).astype(np.int64)
        # Hash 3-D (or 2-D) cell coordinates into a single key per atom.
        span = cells.max(axis=0) + 2
        multipliers = np.ones(positions.shape[1], dtype=np.int64)
        for d in range(1, positions.shape[1]):
            multipliers[d] = multipliers[d - 1] * span[d - 1]
        keys = cells @ multipliers

        # Group atom indices by cell.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        cell_starts = np.flatnonzero(
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        )
        cell_map = {}
        boundaries = np.append(cell_starts, n)
        for s, e in zip(boundaries[:-1], boundaries[1:]):
            cell_map[sorted_keys[s]] = order[s:e]

        dim = positions.shape[1]
        offsets = np.array(
            np.meshgrid(*[[-1, 0, 1]] * dim, indexing="ij")
        ).reshape(dim, -1).T

        out_i, out_j = [], []
        unique_cells = np.unique(cells, axis=0)
        for cell in unique_cells:
            key = cell @ multipliers
            members = cell_map[key]
            for off in offsets:
                nkey = (cell + off) @ multipliers
                others = cell_map.get(nkey)
                if others is None:
                    continue
                if nkey < key:
                    continue  # each cell pair visited once
                if nkey == key:
                    ii, jj = np.triu_indices(len(members), k=1)
                    out_i.append(members[ii])
                    out_j.append(members[jj])
                else:
                    ii = np.repeat(members, len(others))
                    jj = np.tile(others, len(members))
                    out_i.append(ii)
                    out_j.append(jj)

        if not out_i:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        i = np.concatenate(out_i)
        j = np.concatenate(out_j)
        # Orient (i < j) and drop pairs beyond the reach or excluded.
        swap = i > j
        i2 = np.where(swap, j, i)
        j2 = np.where(swap, i, j)
        d = positions[j2] - positions[i2]
        within = np.sum(d * d, axis=1) <= reach * reach
        i2, j2 = i2[within], j2[within]
        if self._excl:
            excl_arr = np.array(sorted(self._excl), dtype=np.int64)
            keys_p = _exclusion_key(n, i2, j2)
            keys_e = _exclusion_key(n, excl_arr[:, 0], excl_arr[:, 1])
            keep = ~np.isin(keys_p, keys_e)
            i2, j2 = i2[keep], j2[keep]
        return i2, j2


def _normalize_exclusions(exclusions) -> Optional[np.ndarray]:
    """Exclusion pairs as a sorted, deduplicated ``(n, 2)`` int64 array.

    Accepts an iterable of pairs or an already-normalized array (which
    passes through untouched, so the preprocessing can be shared).
    """
    if exclusions is None:
        return None
    if isinstance(exclusions, np.ndarray) and exclusions.dtype == np.int64:
        return exclusions if len(exclusions) else None
    pairs = {(min(a, b), max(a, b)) for a, b in exclusions}
    if not pairs:
        return None
    return np.array(sorted(pairs), dtype=np.int64)


class VerletList:
    """Lazy candidate list: built within ``cutoff + skin``, reused while valid.

    The classic Verlet (1967) scheme with a bit-exactness guarantee
    (see the module docstring): the cached list is reused until the
    maximum single-atom displacement since the build exceeds
    ``skin / 2`` — until then every pair inside the true cutoff is
    still in the cache, and the canonical ordering makes the filtered
    kernel arithmetic identical to a fresh build (or to ``AllPairs``).
    ``skin=0`` degenerates to a rebuild on any movement.

    Parameters
    ----------
    cutoff:
        Interaction cutoff (nm).
    skin:
        Reuse margin added to the build reach (nm).
    exclusions:
        Pairs never returned (iterable of pairs, or a preprocessed
        array from :func:`_normalize_exclusions`).
    box:
        Optional periodic box lengths; candidate distances and
        displacements then use the minimum-image convention (the
        torus metric, so the ``skin / 2`` bound still holds).
    """

    #: Rebuilt from coordinates, so batched kernels must evaluate
    #: per replica (or via :class:`SharedNeighborList`).
    positions_independent = False

    def __init__(
        self,
        cutoff: float,
        skin: float = 0.3,
        exclusions: Optional[Iterable[Tuple[int, int]]] = None,
        box: Optional[np.ndarray] = None,
    ) -> None:
        if cutoff <= 0:
            raise ConfigurationError(f"cutoff must be positive, got {cutoff}")
        if skin < 0:
            raise ConfigurationError(f"skin must be >= 0, got {skin}")
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self.box = np.asarray(box, dtype=float) if box is not None else None
        self._excl = _normalize_exclusions(exclusions)
        self._i: Optional[np.ndarray] = None
        self._j: Optional[np.ndarray] = None
        self._ref: Optional[np.ndarray] = None
        #: Build/reuse counters (observability and laziness tests).
        self.n_builds = 0
        self.n_reuses = 0

    def invalidate(self) -> None:
        """Drop the cache; the next :meth:`pairs` call rebuilds."""
        self._i = self._j = self._ref = None

    def _stale(self, positions: np.ndarray) -> bool:
        if self._ref is None or positions.shape != self._ref.shape:
            return True
        disp = positions - self._ref
        if self.box is not None:
            disp = disp - self.box * np.round(disp / self.box)
        max_disp_sq = float(np.max(np.sum(disp * disp, axis=1)))
        return max_disp_sq > (0.5 * self.skin) ** 2

    def _build(self, positions: np.ndarray) -> None:
        n = len(positions)
        reach = self.cutoff + self.skin
        iu, ju = np.triu_indices(n, k=1)
        rij = positions[ju] - positions[iu]
        if self.box is not None:
            rij = rij - self.box * np.round(rij / self.box)
        keep = np.sum(rij * rij, axis=1) <= reach * reach
        i, j = iu[keep], ju[keep]
        if self._excl is not None:
            keys = _exclusion_key(n, i, j)
            excl_keys = _exclusion_key(n, self._excl[:, 0], self._excl[:, 1])
            keep = ~np.isin(keys, excl_keys)
            i, j = i[keep], j[keep]
        self._i = np.ascontiguousarray(i)
        self._j = np.ascontiguousarray(j)
        self._ref = np.array(positions, dtype=positions.dtype, copy=True)
        self.n_builds += 1

    def pairs(self, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Cached candidate pairs, rebuilt only past the skin threshold."""
        if self._stale(positions):
            self._build(positions)
        else:
            self.n_reuses += 1
        return self._i, self._j

    def __len__(self) -> int:
        return 0 if self._i is None else len(self._i)


class SharedNeighborList:
    """One neighbour-list configuration shared across a replica batch.

    Serves the serial path through :meth:`pairs` (its own lazy
    :class:`VerletList`) and the batched path through
    :meth:`replica_pairs`, which keys a per-replica ``VerletList`` on
    the *replica id* — stable across the batched simulation's
    compaction of finished replicas — so each replica's rebuild
    schedule depends only on its own motion, exactly as in a serial
    run.  The exclusion preprocessing and all geometry parameters are
    shared; only the cached candidate arrays are per-replica.
    """

    positions_independent = False

    def __init__(
        self,
        cutoff: float,
        skin: float = 0.3,
        exclusions: Optional[Iterable[Tuple[int, int]]] = None,
        box: Optional[np.ndarray] = None,
    ) -> None:
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self.box = np.asarray(box, dtype=float) if box is not None else None
        self._excl = _normalize_exclusions(exclusions)
        self._serial = self._make_list()
        self._replicas: dict = {}

    def _make_list(self) -> VerletList:
        return VerletList(
            self.cutoff, skin=self.skin, exclusions=self._excl, box=self.box
        )

    def pairs(self, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Serial-path candidates (one shared lazy list)."""
        return self._serial.pairs(positions)

    def replica_pairs(
        self, replica: int, positions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Candidates for one replica of a batch, lazily per replica."""
        cached = self._replicas.get(replica)
        if cached is None:
            cached = self._replicas[replica] = self._make_list()
        return cached.pairs(positions)

    def invalidate(self) -> None:
        """Drop every cached list (serial and per-replica)."""
        self._serial.invalidate()
        for cached in self._replicas.values():
            cached.invalidate()

    @property
    def n_builds(self) -> int:
        """Total builds across the serial and per-replica lists."""
        return self._serial.n_builds + sum(
            v.n_builds for v in self._replicas.values()
        )

    @property
    def n_reuses(self) -> int:
        """Total cache reuses across the serial and per-replica lists."""
        return self._serial.n_reuses + sum(
            v.n_reuses for v in self._replicas.values()
        )
