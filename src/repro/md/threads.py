"""Thread-level force parallelism: the 'threads' tier of Fig. 6.

Gromacs uses threads within shared-memory nodes; here, force *terms*
evaluate concurrently on a thread pool.  Numpy kernels release the GIL
for their inner loops, so independent terms (bonds vs contacts vs
excluded volume) overlap on real cores.  The combination is exact —
the same partial sums as serial, added in a fixed order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import ConfigurationError


class ThreadedForceField:
    """Evaluates a set of force terms on a shared thread pool.

    Use as a drop-in for a :class:`~repro.md.system.System`'s force
    list via :meth:`attach`:

    >>> from repro.md.models.villin import build_villin
    >>> model = build_villin("fast")
    >>> threaded = ThreadedForceField(model.system.forces, n_threads=2)
    >>> threaded.attach(model.system)   # system now evaluates threaded
    """

    def __init__(self, forces: Sequence, n_threads: int = 2) -> None:
        if n_threads < 1:
            raise ConfigurationError("n_threads must be >= 1")
        if not forces:
            raise ConfigurationError("no force terms supplied")
        self.forces = list(forces)
        self.n_threads = int(n_threads)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_threads,
                thread_name_prefix="force",
            )
        return self._pool

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Total energy/forces with terms evaluated concurrently."""
        pool = self._ensure_pool()
        futures = [
            pool.submit(force.energy_forces, positions)
            for force in self.forces
        ]
        total_energy = 0.0
        total_forces = np.zeros_like(positions)
        # deterministic accumulation order (submission order)
        for future in futures:
            energy, forces = future.result()
            total_energy += energy
            total_forces += forces
        return total_energy, total_forces

    def attach(self, system) -> None:
        """Replace *system*'s force evaluation with this threaded one."""
        system.forces = [self]

    def close(self) -> None:
        """Shut the pool down (also happens at interpreter exit)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadedForceField":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
