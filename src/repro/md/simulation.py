"""Simulation driver with reporting and checkpoint/restart.

The :class:`Simulation` is what a Copernicus *command* ultimately runs:
it owns a system, an integrator and a state, advances them, snapshots
coordinates at a fixed interval and can serialise its complete state to
a :class:`Checkpoint` at any step — the property that lets a failed
worker's command be transparently resumed by another worker
(paper section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.md.dispatch import DEFAULT_DISPATCH, DEFAULT_PRECISION
from repro.md.integrators import NoseHooverIntegrator
from repro.md.system import State, System
from repro.md.trajectory import Trajectory
from repro.util.errors import ConfigurationError, SimulationError


@dataclass
class Checkpoint:
    """A complete, serialisable snapshot of a running simulation.

    Includes the stochastic integrator's noise-generator state, so a
    Langevin run resumed on another worker continues the *identical*
    trajectory — failure recovery is bitwise reproducible.
    """

    positions: np.ndarray
    velocities: np.ndarray
    time: float
    step: int
    thermostat_state: float = 0.0
    rng_state: Optional[Dict] = None
    metadata: Dict = field(default_factory=dict)

    def to_payload(self) -> Dict:
        """Wire-format dict (see :mod:`repro.util.serialization`)."""
        payload = {
            "positions": self.positions,
            "velocities": self.velocities,
            "time": float(self.time),
            "step": int(self.step),
            "thermostat_state": float(self.thermostat_state),
            "metadata": dict(self.metadata),
        }
        if self.rng_state is not None:
            payload["rng_state"] = _encode_rng_state(self.rng_state)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict) -> "Checkpoint":
        """Inverse of :meth:`to_payload`."""
        raw_rng = payload.get("rng_state")
        return cls(
            positions=np.asarray(payload["positions"], dtype=float),
            velocities=np.asarray(payload["velocities"], dtype=float),
            time=float(payload["time"]),
            step=int(payload["step"]),
            thermostat_state=float(payload.get("thermostat_state", 0.0)),
            rng_state=_decode_rng_state(raw_rng) if raw_rng else None,
            metadata=dict(payload.get("metadata", {})),
        )


def _encode_rng_state(state: Dict) -> Dict:
    """numpy bit-generator state -> wire-format (stringified big ints)."""
    inner = state.get("state", {})
    return {
        "bit_generator": state.get("bit_generator", "PCG64"),
        "state": str(inner.get("state", 0)),
        "inc": str(inner.get("inc", 0)),
        "has_uint32": int(state.get("has_uint32", 0)),
        "uinteger": int(state.get("uinteger", 0)),
    }


def _decode_rng_state(payload: Dict) -> Dict:
    """Inverse of :func:`_encode_rng_state`."""
    return {
        "bit_generator": payload.get("bit_generator", "PCG64"),
        "state": {
            "state": int(payload["state"]),
            "inc": int(payload["inc"]),
        },
        "has_uint32": int(payload.get("has_uint32", 0)),
        "uinteger": int(payload.get("uinteger", 0)),
    }


class Simulation:
    """Drives an integrator over a system, recording frames.

    Parameters
    ----------
    system:
        The particle system (with force terms attached).
    integrator:
        Any integrator from :mod:`repro.md.integrators`.
    state:
        Initial state.  Velocities may be zero; call
        ``system.maxwell_boltzmann_velocities`` to thermalise.
    report_interval:
        Steps between trajectory snapshots (0 disables recording).
    """

    def __init__(
        self,
        system: System,
        integrator,
        state: State,
        report_interval: int = 0,
    ) -> None:
        if state.positions.shape != (system.n_atoms, system.dim):
            raise ConfigurationError(
                f"state shape {state.positions.shape} does not match system "
                f"({system.n_atoms}, {system.dim})"
            )
        if report_interval < 0:
            raise ConfigurationError("report_interval must be >= 0")
        self.system = system
        self.integrator = integrator
        self.state = state
        self.report_interval = int(report_interval)
        self.trajectory = Trajectory()
        #: Default step count for :meth:`run` (set by :meth:`configure`).
        self.default_steps: Optional[int] = None
        #: Numeric precision of the force/integration kernels
        #: ("float64" default; "float32" opt-in via :meth:`configure`).
        self.precision: str = DEFAULT_PRECISION
        #: Dispatch policy recorded for batched execution ("auto",
        #: "serial" or "batched"); informational on a serial Simulation.
        self.dispatch: str = DEFAULT_DISPATCH
        self._forces: Optional[np.ndarray] = None
        self._observers: List[Callable[[State], None]] = []

    @classmethod
    def configure(
        cls,
        *,
        model: str,
        integrator: str = "langevin",
        steps: Optional[int] = None,
        temperature: float = 300.0,
        friction: float = 1.0,
        timestep: float = 0.02,
        seed: int = 0,
        report_interval: int = 100,
        initial_positions: Optional[np.ndarray] = None,
        model_params: Optional[Dict] = None,
        precision: str = DEFAULT_PRECISION,
        dispatch: str = DEFAULT_DISPATCH,
    ) -> "Simulation":
        """Build a ready-to-run simulation from a model name.

        The keyword-only public constructor: resolves *model* through
        the engine's model registry, thermalises the initial state with
        *seed*, and wires the named *integrator* — the same code paths
        a distributed ``mdrun`` command takes, so a configured
        simulation propagates bit-identically to the equivalent
        :class:`~repro.md.engine.MDTask`.

        ``steps`` (optional) becomes the default for :meth:`run`.

        ``precision`` selects the numeric kernel: ``"float64"`` (the
        default, bit-reproducible) or ``"float32"`` (opt-in fast path
        with fused force accumulation; tolerance bounds documented in
        :mod:`repro.md.precision`).  ``dispatch`` records the batched
        execution policy (``"auto"``/``"serial"``/``"batched"``) for
        when this configuration is submitted as a replica ensemble; it
        does not change a single serial simulation.

        Raises
        ------
        UnknownModelError
            If *model* is not registered.
        ConfigurationError
            If *integrator* is unknown, *precision*/*dispatch* are not
            recognised, or parameters are invalid.
        """
        # Imported here: the engine module imports this one.
        from repro.md.engine import MDTask, resolve_model
        from repro.md.integrators import make_integrator
        from repro.md.precision import apply_precision

        task = MDTask(
            model=model,
            n_steps=int(steps) if steps is not None else 0,
            report_interval=report_interval,
            integrator=integrator,
            temperature=temperature,
            friction=friction,
            timestep=timestep,
            seed=seed,
            initial_positions=initial_positions,
            model_params=dict(model_params or {}),
            precision=precision,
            dispatch=dispatch,
        )
        built = resolve_model(task.model, task.model_params)
        system, state = apply_precision(
            built.system, built.state_builder(task), task.precision
        )
        simulation = cls(
            system,
            make_integrator(
                integrator,
                timestep=timestep,
                temperature=temperature,
                friction=friction,
                seed=seed,
            ),
            state,
            report_interval=report_interval,
        )
        simulation.precision = task.precision
        simulation.dispatch = task.dispatch
        if steps is not None:
            simulation.default_steps = int(steps)
        return simulation

    def add_observer(self, callback: Callable[[State], None]) -> None:
        """Register a callable invoked at every report interval."""
        self._observers.append(callback)

    def run(self, n_steps: Optional[int] = None) -> None:
        """Advance *n_steps* timesteps (default: the configured ``steps``).

        Raises
        ------
        SimulationError
            If coordinates become non-finite (numerical blow-up).
        ConfigurationError
            If *n_steps* is omitted and no default was configured.
        """
        if n_steps is None:
            if self.default_steps is None:
                raise ConfigurationError(
                    "run() needs n_steps (no default configured via "
                    "Simulation.configure(steps=...))"
                )
            n_steps = self.default_steps
        if n_steps < 0:
            raise ConfigurationError(f"n_steps must be >= 0, got {n_steps}")
        if self._forces is None:
            self._forces = self.integrator.initial_forces(self.system, self.state)
            if self.report_interval and len(self.trajectory) == 0:
                self._report()
        for _ in range(n_steps):
            self._forces = self.integrator.step(
                self.system, self.state, self._forces
            )
            if self.report_interval and self.state.step % self.report_interval == 0:
                if not np.all(np.isfinite(self.state.positions)):
                    raise SimulationError(
                        f"non-finite coordinates at step {self.state.step}; "
                        "reduce the timestep"
                    )
                self._report()

    def _report(self) -> None:
        self.trajectory.append(self.state.positions, self.state.time)
        for observer in self._observers:
            observer(self.state)

    # -- energies ---------------------------------------------------------

    def potential_energy(self) -> float:
        """Current potential energy (kJ/mol)."""
        return self.system.potential_energy(self.state.positions)

    def kinetic_energy(self) -> float:
        """Current kinetic energy (kJ/mol)."""
        return self.system.kinetic_energy(self.state.velocities)

    def total_energy(self) -> float:
        """Current total energy (kJ/mol)."""
        return self.potential_energy() + self.kinetic_energy()

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot everything needed to continue this run elsewhere."""
        thermo = 0.0
        if isinstance(self.integrator, NoseHooverIntegrator):
            thermo = self.integrator.thermostat_state
        rng_state = getattr(self.integrator, "rng_state", None)
        return Checkpoint(
            positions=self.state.positions.copy(),
            velocities=self.state.velocities.copy(),
            time=self.state.time,
            step=self.state.step,
            thermostat_state=thermo,
            rng_state=dict(rng_state) if rng_state is not None else None,
        )

    def restore(self, checkpoint: Checkpoint) -> None:
        """Resume from a checkpoint (possibly produced by another worker)."""
        if checkpoint.positions.shape != (self.system.n_atoms, self.system.dim):
            raise ConfigurationError(
                "checkpoint geometry does not match this system"
            )
        self.state = State(
            checkpoint.positions.copy(),
            checkpoint.velocities.copy(),
            time=checkpoint.time,
            step=checkpoint.step,
        )
        if isinstance(self.integrator, NoseHooverIntegrator):
            self.integrator.thermostat_state = checkpoint.thermostat_state
        if checkpoint.rng_state is not None and hasattr(
            self.integrator, "rng_state"
        ):
            self.integrator.rng_state = checkpoint.rng_state
        self._forces = None
