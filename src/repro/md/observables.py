"""Trajectory observables: geometry and energy reporters.

Vectorised over whole trajectories: each function takes
``(n_frames, n_atoms, 3)`` (or a single frame) and returns per-frame
values.  These are the quantities the MSM layer and the examples read
off raw coordinates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.util.errors import ConfigurationError


def _frames(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    if x.ndim == 2:
        return x[None]
    if x.ndim != 3:
        raise ConfigurationError(
            f"expected (n_frames, n_atoms, dim) or (n_atoms, dim), got {x.shape}"
        )
    return x


def radius_of_gyration(
    positions: np.ndarray, masses: Optional[np.ndarray] = None
) -> np.ndarray:
    """Mass-weighted radius of gyration per frame."""
    frames = _frames(positions)
    n_atoms = frames.shape[1]
    if masses is None:
        masses = np.ones(n_atoms)
    masses = np.asarray(masses, dtype=float)
    if masses.shape != (n_atoms,):
        raise ConfigurationError("masses must match the atom count")
    total = masses.sum()
    com = np.einsum("fad,a->fd", frames, masses) / total
    delta = frames - com[:, None, :]
    rg2 = np.einsum("fad,fad,a->f", delta, delta, masses) / total
    out = np.sqrt(rg2)
    return out if positions.ndim == 3 else out  # always (n_frames,)


def end_to_end_distance(positions: np.ndarray) -> np.ndarray:
    """Distance between the first and last atom, per frame."""
    frames = _frames(positions)
    d = frames[:, -1, :] - frames[:, 0, :]
    return np.sqrt(np.sum(d * d, axis=1))


def fraction_native_contacts(
    positions: np.ndarray,
    pairs: np.ndarray,
    r0: np.ndarray,
    tolerance: float = 1.2,
) -> np.ndarray:
    """Q per frame: fraction of native pairs within ``tolerance * r0``."""
    frames = _frames(positions)
    pairs = np.asarray(pairs, dtype=int).reshape(-1, 2)
    r0 = np.asarray(r0, dtype=float)
    if len(pairs) != len(r0):
        raise ConfigurationError("pairs and r0 misaligned")
    if len(pairs) == 0:
        return np.ones(len(frames))
    d = frames[:, pairs[:, 1], :] - frames[:, pairs[:, 0], :]
    dist = np.sqrt(np.sum(d * d, axis=2))
    return np.mean(dist < tolerance * r0[None, :], axis=1)


def potential_energy_series(system, positions: np.ndarray) -> np.ndarray:
    """Potential energy of every frame under *system*'s force field."""
    frames = _frames(positions)
    return np.array([system.potential_energy(frame) for frame in frames])


def bond_length_series(positions: np.ndarray, i: int, j: int) -> np.ndarray:
    """Distance between two atoms, per frame."""
    frames = _frames(positions)
    n_atoms = frames.shape[1]
    if not (0 <= i < n_atoms and 0 <= j < n_atoms):
        raise ConfigurationError("atom index out of range")
    d = frames[:, j, :] - frames[:, i, :]
    return np.sqrt(np.sum(d * d, axis=1))
