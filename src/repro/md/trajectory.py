"""Trajectory storage: in-memory frames with npz save/load."""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.util.errors import ConfigurationError


class Trajectory:
    """A sequence of coordinate frames with times.

    Frames are appended during a run and consolidated lazily into one
    ``(n_frames, n_atoms, dim)`` array — appends stay O(1), analysis
    gets a contiguous block (cache-friendly for the vectorised RMSD and
    clustering kernels downstream).
    """

    def __init__(
        self,
        frames: Optional[np.ndarray] = None,
        times: Optional[np.ndarray] = None,
    ) -> None:
        self._chunks: List[np.ndarray] = []
        self._times: List[float] = []
        self._consolidated: Optional[np.ndarray] = None
        if frames is not None:
            frames = np.asarray(frames, dtype=float)
            if frames.ndim != 3:
                raise ConfigurationError(
                    f"frames must be (n_frames, n_atoms, dim), got {frames.shape}"
                )
            if times is None:
                times = np.arange(len(frames), dtype=float)
            times = np.asarray(times, dtype=float)
            if len(times) != len(frames):
                raise ConfigurationError("times and frames length mismatch")
            for frame, t in zip(frames, times):
                self.append(frame, t)

    def append(self, positions: np.ndarray, time: float) -> None:
        """Store a snapshot (copied)."""
        self._chunks.append(np.array(positions, dtype=float, copy=True))
        self._times.append(float(time))
        self._consolidated = None

    def __len__(self) -> int:
        return len(self._chunks)

    @property
    def frames(self) -> np.ndarray:
        """All frames as one ``(n_frames, n_atoms, dim)`` array."""
        if not self._chunks:
            return np.zeros((0, 0, 0))
        if self._consolidated is None:
            self._consolidated = np.stack(self._chunks)
        return self._consolidated

    @property
    def times(self) -> np.ndarray:
        """Frame times (ps)."""
        return np.asarray(self._times)

    def __getitem__(self, index):
        return self._chunks[index]

    def extend(self, other: "Trajectory") -> None:
        """Append every frame of *other* (times must continue forward)."""
        if len(other) and len(self) and other.times[0] < self._times[-1]:
            raise ConfigurationError(
                "cannot extend: appended trajectory starts in the past"
            )
        for frame, t in zip(other._chunks, other._times):
            self.append(frame, t)

    def save(self, path: str | Path) -> None:
        """Write to a compressed npz file."""
        np.savez_compressed(
            Path(path), frames=self.frames, times=self.times
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trajectory":
        """Read a trajectory written by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(frames=data["frames"], times=data["times"])

    def subsample(self, stride: int) -> "Trajectory":
        """Every ``stride``-th frame as a new trajectory."""
        if stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {stride}")
        return Trajectory(frames=self.frames[::stride], times=self.times[::stride])
