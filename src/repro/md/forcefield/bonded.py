"""Bonded force-field terms: bonds, angles, periodic dihedrals.

Each term precomputes its index arrays once; ``energy_forces`` is pure
vectorised numpy with ``np.add.at`` scatter-adds into the force buffer.
Every term also implements ``compute_batch`` over ``(R, N, 3)`` replica
stacks (see :mod:`repro.md.forcefield.base`): the index arrays are
shared across replicas, all arithmetic is elementwise over the replica
axis, and scatters go through :class:`~repro.md.forcefield.base.
SegmentScatter`, so per-replica forces are bit-identical to the serial
kernels.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.md.forcefield.base import SegmentScatter
from repro.util.errors import ConfigurationError


def _cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Last-axis cross product without np.cross's axis-juggling overhead.

    Works for ``(P, 3)`` rows and ``(R, P, 3)`` replica stacks alike.
    """
    out = np.empty_like(a)
    out[..., 0] = a[..., 1] * b[..., 2] - a[..., 2] * b[..., 1]
    out[..., 1] = a[..., 2] * b[..., 0] - a[..., 0] * b[..., 2]
    out[..., 2] = a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0]
    return out


class HarmonicBondForce:
    """``E = 0.5 k (r - r0)^2`` over a fixed list of atom pairs."""

    def __init__(self, pairs: np.ndarray, r0: np.ndarray, k: np.ndarray) -> None:
        self.pairs = np.asarray(pairs, dtype=int).reshape(-1, 2)
        self.r0 = np.asarray(r0, dtype=float)
        self.k = np.asarray(k, dtype=float)
        if not (len(self.pairs) == len(self.r0) == len(self.k)):
            raise ConfigurationError("bond arrays misaligned")
        self._i = self.pairs[:, 0]
        self._j = self.pairs[:, 1]
        self._scatter: Optional[SegmentScatter] = None

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (energy, forces) at *positions* (see module docstring)."""
        forces = np.zeros_like(positions)
        if len(self.pairs) == 0:
            return 0.0, forces
        rij = positions[self._j] - positions[self._i]
        r = np.sqrt(np.sum(rij * rij, axis=1))
        dr = r - self.r0
        energy = 0.5 * float(np.dot(self.k, dr * dr))
        # dE/dr = k dr ; force on j is -dE/dr * rij/r
        fscale = -(self.k * dr) / np.maximum(r, 1e-12)
        fij = fscale[:, None] * rij
        np.add.at(forces, self._j, fij)
        np.add.at(forces, self._i, -fij)
        return energy, forces

    def compute_batch(
        self, positions: np.ndarray, replica_ids=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched ``energy_forces`` over ``(R, N, 3)`` replica stacks."""
        forces = np.zeros(positions.shape)
        if len(self.pairs) == 0:
            return np.zeros(positions.shape[0]), forces
        rij = positions[:, self._j] - positions[:, self._i]
        r = np.sqrt(np.sum(rij * rij, axis=2))
        dr = r - self.r0
        energies = 0.5 * np.sum(self.k * (dr * dr), axis=1)
        fscale = -(self.k * dr) / np.maximum(r, 1e-12)
        fij = fscale[..., None] * rij
        if self._scatter is None:
            self._scatter = SegmentScatter(
                np.concatenate([self._j, self._i])
            )
        self._scatter.add(forces, np.concatenate([fij, -fij], axis=1))
        return energies, forces


class HarmonicAngleForce:
    """``E = 0.5 k (theta - theta0)^2`` over i-j-k triples (vertex j)."""

    def __init__(
        self, triples: np.ndarray, theta0: np.ndarray, k: np.ndarray
    ) -> None:
        self.triples = np.asarray(triples, dtype=int).reshape(-1, 3)
        self.theta0 = np.asarray(theta0, dtype=float)
        self.k = np.asarray(k, dtype=float)
        if not (len(self.triples) == len(self.theta0) == len(self.k)):
            raise ConfigurationError("angle arrays misaligned")
        self._i = self.triples[:, 0]
        self._j = self.triples[:, 1]
        self._k = self.triples[:, 2]
        self._scatter: Optional[SegmentScatter] = None

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (energy, forces) at *positions* (see module docstring)."""
        forces = np.zeros_like(positions)
        if len(self.triples) == 0:
            return 0.0, forces
        rij = positions[self._i] - positions[self._j]
        rkj = positions[self._k] - positions[self._j]
        nij = np.sqrt(np.sum(rij * rij, axis=1))
        nkj = np.sqrt(np.sum(rkj * rkj, axis=1))
        cos_t = np.sum(rij * rkj, axis=1) / np.maximum(nij * nkj, 1e-12)
        cos_t = np.clip(cos_t, -1.0 + 1e-10, 1.0 - 1e-10)
        theta = np.arccos(cos_t)
        dtheta = theta - self.theta0
        energy = 0.5 * float(np.dot(self.k, dtheta * dtheta))
        # F_i = (k dtheta / sin theta) * d(cos theta)/d r_i
        sin_t = np.sqrt(1.0 - cos_t * cos_t)
        coeff = (self.k * dtheta) / np.maximum(sin_t, 1e-12)
        fi = (coeff / nij)[:, None] * (
            rkj / nkj[:, None] - cos_t[:, None] * rij / nij[:, None]
        )
        fk = (coeff / nkj)[:, None] * (
            rij / nij[:, None] - cos_t[:, None] * rkj / nkj[:, None]
        )
        np.add.at(forces, self._i, fi)
        np.add.at(forces, self._k, fk)
        np.add.at(forces, self._j, -(fi + fk))
        return energy, forces

    def compute_batch(
        self, positions: np.ndarray, replica_ids=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched ``energy_forces`` over ``(R, N, 3)`` replica stacks."""
        forces = np.zeros(positions.shape)
        if len(self.triples) == 0:
            return np.zeros(positions.shape[0]), forces
        rij = positions[:, self._i] - positions[:, self._j]
        rkj = positions[:, self._k] - positions[:, self._j]
        nij = np.sqrt(np.sum(rij * rij, axis=2))
        nkj = np.sqrt(np.sum(rkj * rkj, axis=2))
        cos_t = np.sum(rij * rkj, axis=2) / np.maximum(nij * nkj, 1e-12)
        cos_t = np.clip(cos_t, -1.0 + 1e-10, 1.0 - 1e-10)
        theta = np.arccos(cos_t)
        dtheta = theta - self.theta0
        energies = 0.5 * np.sum(self.k * (dtheta * dtheta), axis=1)
        sin_t = np.sqrt(1.0 - cos_t * cos_t)
        coeff = (self.k * dtheta) / np.maximum(sin_t, 1e-12)
        fi = (coeff / nij)[..., None] * (
            rkj / nkj[..., None] - cos_t[..., None] * rij / nij[..., None]
        )
        fk = (coeff / nkj)[..., None] * (
            rij / nij[..., None] - cos_t[..., None] * rkj / nkj[..., None]
        )
        if self._scatter is None:
            self._scatter = SegmentScatter(
                np.concatenate([self._i, self._k, self._j])
            )
        self._scatter.add(
            forces, np.concatenate([fi, fk, -(fi + fk)], axis=1)
        )
        return energies, forces


class PeriodicDihedralForce:
    """``E = k (1 + cos(n phi - phi0))`` over i-j-k-l quadruples."""

    def __init__(
        self,
        quads: np.ndarray,
        phi0: np.ndarray,
        k: np.ndarray,
        mult: np.ndarray,
    ) -> None:
        self.quads = np.asarray(quads, dtype=int).reshape(-1, 4)
        self.phi0 = np.asarray(phi0, dtype=float)
        self.k = np.asarray(k, dtype=float)
        self.mult = np.asarray(mult, dtype=int)
        if not (
            len(self.quads) == len(self.phi0) == len(self.k) == len(self.mult)
        ):
            raise ConfigurationError("dihedral arrays misaligned")
        self._i = self.quads[:, 0]
        self._j = self.quads[:, 1]
        self._k = self.quads[:, 2]
        self._l = self.quads[:, 3]
        self._scatter: Optional[SegmentScatter] = None

    @staticmethod
    def dihedral_angles(
        positions: np.ndarray, quads: np.ndarray
    ) -> np.ndarray:
        """Signed dihedral angles (rad) for each quadruple."""
        i, j, k, l = quads[:, 0], quads[:, 1], quads[:, 2], quads[:, 3]
        b1 = positions[j] - positions[i]
        b2 = positions[k] - positions[j]
        b3 = positions[l] - positions[k]
        n1 = _cross(b1, b2)
        n2 = _cross(b2, b3)
        nb2 = np.sqrt(np.sum(b2 * b2, axis=1))
        m1 = _cross(n1, b2 / nb2[:, None])
        x = np.sum(n1 * n2, axis=1)
        y = np.sum(m1 * n2, axis=1)
        return np.arctan2(y, x)

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (energy, forces) at *positions* (see module docstring)."""
        forces = np.zeros_like(positions)
        if len(self.quads) == 0:
            return 0.0, forces
        b1 = positions[self._j] - positions[self._i]
        b2 = positions[self._k] - positions[self._j]
        b3 = positions[self._l] - positions[self._k]
        n1 = _cross(b1, b2)
        n2 = _cross(b2, b3)
        nb2 = np.sqrt(np.sum(b2 * b2, axis=1))
        m1 = _cross(n1, b2 / nb2[:, None])
        x = np.sum(n1 * n2, axis=1)
        y = np.sum(m1 * n2, axis=1)
        phi = np.arctan2(y, x)
        energy = float(np.sum(self.k * (1.0 + np.cos(self.mult * phi - self.phi0))))
        # dE/dphi
        dE = -self.k * self.mult * np.sin(self.mult * phi - self.phi0)
        # Gradient of phi for *this* sign/b-vector convention (verified
        # against central differences in the test suite):
        #   dphi/dr_i = +|b2| m / |m|^2           (m = b1 x b2)
        #   dphi/dr_l = -|b2| n / |n|^2           (n = b2 x b3)
        #   dphi/dr_j = -(1+s12) dphi/dr_i + s32 dphi/dr_l
        #   dphi/dr_k = s12 dphi/dr_i - (1+s32) dphi/dr_l
        n1sq = np.maximum(np.sum(n1 * n1, axis=1), 1e-12)
        n2sq = np.maximum(np.sum(n2 * n2, axis=1), 1e-12)
        dphi_i = (nb2 / n1sq)[:, None] * n1
        dphi_l = -(nb2 / n2sq)[:, None] * n2
        s12 = np.sum(b1 * b2, axis=1) / np.maximum(nb2 * nb2, 1e-12)
        s32 = np.sum(b3 * b2, axis=1) / np.maximum(nb2 * nb2, 1e-12)
        dphi_j = -(1.0 + s12)[:, None] * dphi_i + s32[:, None] * dphi_l
        dphi_k = s12[:, None] * dphi_i - (1.0 + s32)[:, None] * dphi_l
        fi = -dE[:, None] * dphi_i
        fj = -dE[:, None] * dphi_j
        fk = -dE[:, None] * dphi_k
        fl = -dE[:, None] * dphi_l
        np.add.at(forces, self._i, fi)
        np.add.at(forces, self._j, fj)
        np.add.at(forces, self._k, fk)
        np.add.at(forces, self._l, fl)
        return energy, forces

    def compute_batch(
        self, positions: np.ndarray, replica_ids=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched ``energy_forces`` over ``(R, N, 3)`` replica stacks."""
        forces = np.zeros(positions.shape)
        if len(self.quads) == 0:
            return np.zeros(positions.shape[0]), forces
        b1 = positions[:, self._j] - positions[:, self._i]
        b2 = positions[:, self._k] - positions[:, self._j]
        b3 = positions[:, self._l] - positions[:, self._k]
        n1 = _cross(b1, b2)
        n2 = _cross(b2, b3)
        nb2 = np.sqrt(np.sum(b2 * b2, axis=2))
        m1 = _cross(n1, b2 / nb2[..., None])
        x = np.sum(n1 * n2, axis=2)
        y = np.sum(m1 * n2, axis=2)
        phi = np.arctan2(y, x)
        energies = np.sum(
            self.k * (1.0 + np.cos(self.mult * phi - self.phi0)), axis=1
        )
        dE = -self.k * self.mult * np.sin(self.mult * phi - self.phi0)
        n1sq = np.maximum(np.sum(n1 * n1, axis=2), 1e-12)
        n2sq = np.maximum(np.sum(n2 * n2, axis=2), 1e-12)
        dphi_i = (nb2 / n1sq)[..., None] * n1
        dphi_l = -(nb2 / n2sq)[..., None] * n2
        s12 = np.sum(b1 * b2, axis=2) / np.maximum(nb2 * nb2, 1e-12)
        s32 = np.sum(b3 * b2, axis=2) / np.maximum(nb2 * nb2, 1e-12)
        dphi_j = -(1.0 + s12)[..., None] * dphi_i + s32[..., None] * dphi_l
        dphi_k = s12[..., None] * dphi_i - (1.0 + s32)[..., None] * dphi_l
        fi = -dE[..., None] * dphi_i
        fj = -dE[..., None] * dphi_j
        fk = -dE[..., None] * dphi_k
        fl = -dE[..., None] * dphi_l
        if self._scatter is None:
            self._scatter = SegmentScatter(
                np.concatenate([self._i, self._j, self._k, self._l])
            )
        self._scatter.add(
            forces, np.concatenate([fi, fj, fk, fl], axis=1)
        )
        return energies, forces
