"""Gō-type native-contact potential.

A structure-based (Gō) model rewards the contacts present in the native
structure with a 12-10 well whose minimum sits at the native distance:

``E(r) = eps [5 (r0/r)^12 - 6 (r0/r)^10]``

so ``E(r0) = -eps`` and the force vanishes at ``r = r0``.  Combined
with chain connectivity (bonds/angles/dihedrals) and excluded volume on
non-native pairs this produces a funnelled landscape that folds to the
native state — the standard minimal model of protein folding, and the
behaviour the paper's adaptive-MSM machinery consumes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.md.forcefield.base import SegmentScatter
from repro.util.errors import ConfigurationError


class GoContactForce:
    """12-10 native-contact attraction over a fixed pair list."""

    def __init__(
        self,
        pairs: np.ndarray,
        r0: np.ndarray,
        epsilon: float | np.ndarray = 1.0,
        cutoff_factor: float = 3.0,
    ) -> None:
        self.pairs = np.asarray(pairs, dtype=int).reshape(-1, 2)
        self.r0 = np.asarray(r0, dtype=float)
        if len(self.pairs) != len(self.r0):
            raise ConfigurationError("contact pair/r0 arrays misaligned")
        if np.any(self.r0 <= 0):
            raise ConfigurationError("native distances must be positive")
        eps = np.asarray(epsilon, dtype=float)
        self.epsilon = (
            np.full(len(self.pairs), float(eps)) if eps.ndim == 0 else eps
        )
        if len(self.epsilon) != len(self.pairs):
            raise ConfigurationError("epsilon array misaligned with pairs")
        self.cutoff = self.r0 * cutoff_factor
        self._i = self.pairs[:, 0]
        self._j = self.pairs[:, 1]
        self._scatter: Optional[SegmentScatter] = None

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (energy, forces) of the 12-10 contact wells."""
        forces = np.zeros_like(positions)
        if len(self.pairs) == 0:
            return 0.0, forces
        rij = positions[self._j] - positions[self._i]
        r2 = np.sum(rij * rij, axis=1)
        inv_r2 = self.r0 * self.r0 / r2
        s10 = inv_r2**5
        s12 = s10 * inv_r2
        energy = float(np.sum(self.epsilon * (5.0 * s12 - 6.0 * s10)))
        # -dE/dr * 1/r acting along rij, force on j:
        # dE/dr = eps [ -60 r0^12/r^13 + 60 r0^10/r^11 ]
        fscale = 60.0 * self.epsilon * (s12 - s10) / r2
        fij = fscale[:, None] * rij
        np.add.at(forces, self._j, fij)
        np.add.at(forces, self._i, -fij)
        return energy, forces

    def compute_batch(
        self, positions: np.ndarray, replica_ids=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched ``energy_forces`` over ``(R, N, 3)`` replica stacks."""
        forces = np.zeros(positions.shape)
        if len(self.pairs) == 0:
            return np.zeros(positions.shape[0]), forces
        rij = positions[:, self._j] - positions[:, self._i]
        r2 = np.sum(rij * rij, axis=2)
        inv_r2 = self.r0 * self.r0 / r2
        s10 = inv_r2**5
        s12 = s10 * inv_r2
        energies = np.sum(self.epsilon * (5.0 * s12 - 6.0 * s10), axis=1)
        fscale = 60.0 * self.epsilon * (s12 - s10) / r2
        fij = fscale[..., None] * rij
        if self._scatter is None:
            self._scatter = SegmentScatter(
                np.concatenate([self._j, self._i])
            )
        self._scatter.add(forces, np.concatenate([fij, -fij], axis=1))
        return energies, forces

    def fraction_native_batch(
        self, positions: np.ndarray, tolerance: float = 1.2
    ) -> np.ndarray:
        """Per-replica Q over an ``(R, N, 3)`` stack (see fraction_native)."""
        if len(self.pairs) == 0:
            return np.ones(positions.shape[0])
        rij = positions[:, self._j] - positions[:, self._i]
        r = np.sqrt(np.sum(rij * rij, axis=2))
        return np.mean(r < tolerance * self.r0, axis=1)

    def fraction_native(
        self, positions: np.ndarray, tolerance: float = 1.2
    ) -> float:
        """Fraction of native contacts formed (r < tolerance * r0).

        The classic folding reaction coordinate Q.
        """
        if len(self.pairs) == 0:
            return 1.0
        rij = positions[self._j] - positions[self._i]
        r = np.sqrt(np.sum(rij * rij, axis=1))
        return float(np.mean(r < tolerance * self.r0))
