"""Nonbonded force-field terms: Lennard-Jones, reaction field, excluded volume.

All terms take a *pair provider* (see :mod:`repro.md.neighborlist`), so
the same kernel runs all-pairs for small systems and cell-list pruned
for large ones.  Energies are cutoff-shifted so the potential is
continuous at the cutoff.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.md.forcefield.base import SegmentScatter
from repro.util.errors import ConfigurationError


def _static_pairs(pair_provider, positions_batch):
    """Shared (i, j) arrays for a replica batch, or ``None``.

    Vectorising over replicas requires one pair list valid for every
    replica, so only positions-independent providers (e.g.
    :class:`~repro.md.neighborlist.AllPairs`) qualify; a cell list
    would prune differently per replica and falls back to the serial
    loop.
    """
    if not getattr(pair_provider, "positions_independent", False):
        return None
    return pair_provider.pairs(positions_batch[0])


def _shared_provider_batch(term, positions, replica_ids):
    """Per-replica evaluation through a shared neighbour-list manager.

    For providers exposing ``replica_pairs(replica, positions)``
    (:class:`~repro.md.neighborlist.SharedNeighborList`): each row of
    the ``(R, N, dim)`` stack is evaluated with its *own replica's*
    lazily-cached pair list, keyed by the true replica id so the
    batched simulation's compaction of finished replicas cannot mix
    caches up.  The kernel is the exact serial one
    (``term._energy_forces_pairs``), so results are bit-identical to a
    serial run of each replica.
    """
    energies = np.empty(positions.shape[0])
    forces = np.zeros(positions.shape)
    for row, replica in enumerate(replica_ids):
        i, j = term.pair_provider.replica_pairs(int(replica), positions[row])
        energy, row_forces = term._energy_forces_pairs(positions[row], i, j)
        energies[row] = energy
        forces[row] = row_forces
    return energies, forces


def _masked_pair_scatter(
    term, i: np.ndarray, j: np.ndarray, forces, fij, within
) -> None:
    """Scatter ``+fij`` at *j* then ``-fij`` at *i*, cutoff-masked.

    Caches the :class:`~repro.md.forcefield.base.SegmentScatter` on the
    force term (*term*) — valid because only positions-independent
    providers reach the batched path, so (i, j) never change.
    """
    scatter = getattr(term, "_batch_scatter", None)
    if scatter is None:
        scatter = SegmentScatter(np.concatenate([j, i]))
        term._batch_scatter = scatter
    scatter.add(
        forces,
        np.concatenate([fij, -fij], axis=1),
        mask=np.concatenate([within, within], axis=1),
    )

#: Coulomb prefactor f = 1/(4 pi eps0) in kJ mol^-1 nm e^-2 (Gromacs value).
COULOMB_PREFACTOR = 138.935458


class LennardJonesForce:
    """12-6 Lennard-Jones with cutoff shift.

    ``E(r) = 4 eps [(sigma/r)^12 - (sigma/r)^6] - E(cutoff)`` for r <
    cutoff.  Per-atom ``sigma``/``epsilon`` arrays combine with
    Lorentz–Berthelot rules; scalars apply uniformly.  With ``box``
    set, pair vectors use the minimum-image convention (periodic
    boundaries for bulk fluids).
    """

    def __init__(
        self,
        pair_provider,
        sigma: float | np.ndarray,
        epsilon: float | np.ndarray,
        cutoff: float = 1.2,
        box: Optional[np.ndarray] = None,
    ) -> None:
        if cutoff <= 0:
            raise ConfigurationError(f"cutoff must be positive, got {cutoff}")
        self.pair_provider = pair_provider
        self.sigma = sigma
        self.epsilon = epsilon
        self.cutoff = float(cutoff)
        self.box = np.asarray(box, dtype=float) if box is not None else None
        if self.box is not None:
            if np.any(self.box <= 0):
                raise ConfigurationError("box lengths must be positive")
            if self.cutoff > 0.5 * self.box.min():
                raise ConfigurationError(
                    "cutoff exceeds half the smallest box length"
                )

    def _pair_params(
        self, i: np.ndarray, j: np.ndarray, dtype=np.float64
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Scalar parameters materialise in the positions dtype so the
        # float32 fast path stays single precision end to end; float64
        # callers get exactly the pre-dtype-aware arrays.
        if np.isscalar(self.sigma):
            sig = np.full(len(i), self.sigma, dtype=dtype)
        else:
            sig = 0.5 * (np.asarray(self.sigma)[i] + np.asarray(self.sigma)[j])
        if np.isscalar(self.epsilon):
            eps = np.full(len(i), self.epsilon, dtype=dtype)
        else:
            eps = np.sqrt(np.asarray(self.epsilon)[i] * np.asarray(self.epsilon)[j])
        return sig, eps

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (energy, forces) at *positions* (see class docstring)."""
        i, j = self.pair_provider.pairs(positions)
        return self._energy_forces_pairs(positions, i, j)

    def _energy_forces_pairs(
        self, positions: np.ndarray, i: np.ndarray, j: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """The serial kernel over an explicit candidate pair list."""
        forces = np.zeros_like(positions)
        if len(i) == 0:
            return 0.0, forces
        rij = positions[j] - positions[i]
        if self.box is not None:
            rij -= self.box * np.round(rij / self.box)
        r2 = np.sum(rij * rij, axis=1)
        within = r2 < self.cutoff * self.cutoff
        if not np.any(within):
            return 0.0, forces
        i, j, rij, r2 = i[within], j[within], rij[within], r2[within]
        sig, eps = self._pair_params(i, j, dtype=positions.dtype)
        inv_r2 = 1.0 / r2
        s6 = (sig * sig * inv_r2) ** 3
        s12 = s6 * s6
        # shift so E(cutoff) = 0
        sc6 = (sig / self.cutoff) ** 6
        shift = 4.0 * eps * (sc6 * sc6 - sc6)
        energy = float(np.sum(4.0 * eps * (s12 - s6) - shift))
        fscale = 24.0 * eps * (2.0 * s12 - s6) * inv_r2
        fij = fscale[:, None] * rij
        np.add.at(forces, self._as_index(j), fij)
        np.add.at(forces, self._as_index(i), -fij)
        return energy, forces

    def compute_batch(
        self, positions: np.ndarray, replica_ids: Optional[np.ndarray] = None
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Batched ``energy_forces``; ``None`` if the provider is dynamic."""
        pair = _static_pairs(self.pair_provider, positions)
        if pair is None:
            if replica_ids is not None and hasattr(
                self.pair_provider, "replica_pairs"
            ):
                return _shared_provider_batch(self, positions, replica_ids)
            return None
        i, j = pair
        forces = np.zeros(positions.shape)
        if len(i) == 0:
            return np.zeros(positions.shape[0]), forces
        rij = positions[:, j] - positions[:, i]
        if self.box is not None:
            rij -= self.box * np.round(rij / self.box)
        r2 = np.sum(rij * rij, axis=2)
        within = r2 < self.cutoff * self.cutoff
        sig, eps = self._pair_params(i, j)
        inv_r2 = 1.0 / r2
        s6 = (sig * sig * inv_r2) ** 3
        s12 = s6 * s6
        sc6 = (sig / self.cutoff) ** 6
        shift = 4.0 * eps * (sc6 * sc6 - sc6)
        energies = np.sum(
            np.where(within, 4.0 * eps * (s12 - s6) - shift, 0.0), axis=1
        )
        fscale = 24.0 * eps * (2.0 * s12 - s6) * inv_r2
        fij = fscale[..., None] * rij
        _masked_pair_scatter(self, i, j, forces, fij, within)
        return energies, forces

    @staticmethod
    def _as_index(idx: np.ndarray) -> np.ndarray:
        return idx


class ReactionFieldElectrostatics:
    """Coulomb interaction with reaction-field correction (Gromacs form).

    The paper's villin runs treat long-range electrostatics with a
    reaction field and continuum dielectric 78 (section 3.1):

    ``E(r) = f q_i q_j (1/r + k_rf r^2 - c_rf)`` for r < cutoff, with
    ``k_rf = (eps_rf - 1) / (2 eps_rf + 1) / rc^3`` and
    ``c_rf = 1/rc + k_rf rc^2`` making the potential vanish at rc.
    """

    def __init__(
        self,
        pair_provider,
        charges: np.ndarray,
        cutoff: float = 1.2,
        epsilon_rf: float = 78.0,
    ) -> None:
        if cutoff <= 0:
            raise ConfigurationError(f"cutoff must be positive, got {cutoff}")
        if epsilon_rf <= 0.5:
            raise ConfigurationError(
                f"epsilon_rf must exceed 0.5, got {epsilon_rf}"
            )
        self.pair_provider = pair_provider
        self.charges = np.asarray(charges, dtype=float)
        self.cutoff = float(cutoff)
        self.epsilon_rf = float(epsilon_rf)
        rc = self.cutoff
        self.k_rf = (epsilon_rf - 1.0) / (2.0 * epsilon_rf + 1.0) / rc**3
        self.c_rf = 1.0 / rc + self.k_rf * rc**2

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (energy, forces) at *positions* (see class docstring)."""
        i, j = self.pair_provider.pairs(positions)
        return self._energy_forces_pairs(positions, i, j)

    def _energy_forces_pairs(
        self, positions: np.ndarray, i: np.ndarray, j: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """The serial kernel over an explicit candidate pair list."""
        forces = np.zeros_like(positions)
        if len(i) == 0:
            return 0.0, forces
        rij = positions[j] - positions[i]
        r2 = np.sum(rij * rij, axis=1)
        within = r2 < self.cutoff * self.cutoff
        if not np.any(within):
            return 0.0, forces
        i, j, rij, r2 = i[within], j[within], rij[within], r2[within]
        r = np.sqrt(r2)
        qq = COULOMB_PREFACTOR * self.charges[i] * self.charges[j]
        energy = float(np.sum(qq * (1.0 / r + self.k_rf * r2 - self.c_rf)))
        # -dE/dr = qq (1/r^2 - 2 k_rf r); force on j along +rij
        fscale = qq * (1.0 / (r2 * r) - 2.0 * self.k_rf)
        fij = fscale[:, None] * rij
        np.add.at(forces, j, fij)
        np.add.at(forces, i, -fij)
        return energy, forces

    def compute_batch(
        self, positions: np.ndarray, replica_ids: Optional[np.ndarray] = None
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Batched ``energy_forces``; ``None`` if the provider is dynamic."""
        pair = _static_pairs(self.pair_provider, positions)
        if pair is None:
            if replica_ids is not None and hasattr(
                self.pair_provider, "replica_pairs"
            ):
                return _shared_provider_batch(self, positions, replica_ids)
            return None
        i, j = pair
        forces = np.zeros(positions.shape)
        if len(i) == 0:
            return np.zeros(positions.shape[0]), forces
        rij = positions[:, j] - positions[:, i]
        r2 = np.sum(rij * rij, axis=2)
        within = r2 < self.cutoff * self.cutoff
        r = np.sqrt(r2)
        qq = COULOMB_PREFACTOR * self.charges[i] * self.charges[j]
        energies = np.sum(
            np.where(within, qq * (1.0 / r + self.k_rf * r2 - self.c_rf), 0.0),
            axis=1,
        )
        fscale = qq * (1.0 / (r2 * r) - 2.0 * self.k_rf)
        fij = fscale[..., None] * rij
        _masked_pair_scatter(self, i, j, forces, fij, within)
        return energies, forces


class ExcludedVolumeForce:
    """Purely repulsive ``eps (sigma/r)^12`` wall, cutoff at ``r = sigma * factor``.

    Used for the non-native pairs of a Gō model: chains cannot pass
    through themselves but gain no attraction from non-native contacts.
    """

    def __init__(
        self,
        pair_provider,
        sigma: float = 0.4,
        epsilon: float = 1.0,
        cutoff_factor: float = 3.0,
    ) -> None:
        if sigma <= 0 or epsilon <= 0:
            raise ConfigurationError("sigma and epsilon must be positive")
        self.pair_provider = pair_provider
        self.sigma = float(sigma)
        self.epsilon = float(epsilon)
        self.cutoff = float(sigma * cutoff_factor)

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (energy, forces) at *positions* (see class docstring)."""
        i, j = self.pair_provider.pairs(positions)
        return self._energy_forces_pairs(positions, i, j)

    def _energy_forces_pairs(
        self, positions: np.ndarray, i: np.ndarray, j: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """The serial kernel over an explicit candidate pair list."""
        forces = np.zeros_like(positions)
        if len(i) == 0:
            return 0.0, forces
        rij = positions[j] - positions[i]
        r2 = np.sum(rij * rij, axis=1)
        within = r2 < self.cutoff * self.cutoff
        if not np.any(within):
            return 0.0, forces
        i, j, rij, r2 = i[within], j[within], rij[within], r2[within]
        inv_r2 = 1.0 / r2
        s12 = (self.sigma * self.sigma * inv_r2) ** 6
        shift = self.epsilon * (self.sigma / self.cutoff) ** 12
        energy = float(np.sum(self.epsilon * s12 - shift))
        fscale = 12.0 * self.epsilon * s12 * inv_r2
        fij = fscale[:, None] * rij
        np.add.at(forces, j, fij)
        np.add.at(forces, i, -fij)
        return energy, forces

    def compute_batch(
        self, positions: np.ndarray, replica_ids: Optional[np.ndarray] = None
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Batched ``energy_forces``; ``None`` if the provider is dynamic."""
        pair = _static_pairs(self.pair_provider, positions)
        if pair is None:
            if replica_ids is not None and hasattr(
                self.pair_provider, "replica_pairs"
            ):
                return _shared_provider_batch(self, positions, replica_ids)
            return None
        i, j = pair
        forces = np.zeros(positions.shape)
        if len(i) == 0:
            return np.zeros(positions.shape[0]), forces
        rij = positions[:, j] - positions[:, i]
        r2 = np.sum(rij * rij, axis=2)
        within = r2 < self.cutoff * self.cutoff
        inv_r2 = 1.0 / r2
        s12 = (self.sigma * self.sigma * inv_r2) ** 6
        shift = self.epsilon * (self.sigma / self.cutoff) ** 12
        energies = np.sum(
            np.where(within, self.epsilon * s12 - shift, 0.0), axis=1
        )
        fscale = 12.0 * self.epsilon * s12 * inv_r2
        fij = fscale[..., None] * rij
        _masked_pair_scatter(self, i, j, forces, fij, within)
        return energies, forces
