"""Force-field terms for the MD engine.

Every force implements ``energy_forces(positions) -> (energy, forces)``
with positions of shape ``(n_atoms, dim)`` and forces of the same
shape, in kJ/mol and kJ/mol/nm.  All terms are fully vectorised —
pair/triple/quad indices are precomputed once and the hot path is pure
numpy fancy indexing plus ``np.add.at`` scatter-adds, the "SIMD kernel"
level of the paper's parallelism hierarchy.
"""

from repro.md.forcefield.base import Force, composite_energy_forces
from repro.md.forcefield.bonded import (
    HarmonicBondForce,
    HarmonicAngleForce,
    PeriodicDihedralForce,
)
from repro.md.forcefield.nonbonded import (
    LennardJonesForce,
    ReactionFieldElectrostatics,
    ExcludedVolumeForce,
)
from repro.md.forcefield.go_model import GoContactForce

__all__ = [
    "Force",
    "composite_energy_forces",
    "HarmonicBondForce",
    "HarmonicAngleForce",
    "PeriodicDihedralForce",
    "LennardJonesForce",
    "ReactionFieldElectrostatics",
    "ExcludedVolumeForce",
    "GoContactForce",
]
