"""Force interface."""

from __future__ import annotations

from typing import Iterable, Protocol, Tuple, runtime_checkable

import numpy as np


@runtime_checkable
class Force(Protocol):
    """Anything that yields an energy and per-atom forces."""

    def energy_forces(
        self, positions: np.ndarray
    ) -> Tuple[float, np.ndarray]:  # pragma: no cover - protocol
        """Return ``(potential_energy, forces)`` at *positions*."""
        ...


def composite_energy_forces(
    forces: Iterable[Force], positions: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Sum energy and forces over a collection of force terms."""
    total_e = 0.0
    total_f = np.zeros_like(positions)
    for force in forces:
        e, f = force.energy_forces(positions)
        total_e += e
        total_f += f
    return total_e, total_f


def numerical_forces(
    force: Force, positions: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference forces, for validating analytic gradients in tests."""
    flat = positions.ravel().copy()
    out = np.empty_like(flat)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        e_plus, _ = force.energy_forces(flat.reshape(positions.shape))
        flat[i] = orig - eps
        e_minus, _ = force.energy_forces(flat.reshape(positions.shape))
        flat[i] = orig
        out[i] = -(e_plus - e_minus) / (2 * eps)
    return out.reshape(positions.shape)
