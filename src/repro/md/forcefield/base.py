"""Force interface (serial and batched).

The batched path stacks R independent replicas into ``(R, N, dim)``
arrays.  A force term may offer ``compute_batch(positions)`` returning
``(energies, forces)`` with shapes ``(R,)`` / ``(R, N, dim)``, or
``None`` when it cannot vectorise for the given configuration (e.g. a
positions-dependent neighbour list); :func:`batch_energy_forces` then
falls back to a per-replica loop over ``energy_forces``.  Batched
implementations are written so the *forces* are bit-identical to the
serial kernel per replica — every arithmetic op is elementwise over the
replica axis and scatter-adds accumulate in the same per-replica pair
order (see :class:`SegmentScatter`).
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, Tuple, runtime_checkable

import numpy as np


@runtime_checkable
class Force(Protocol):
    """Anything that yields an energy and per-atom forces."""

    def energy_forces(
        self, positions: np.ndarray
    ) -> Tuple[float, np.ndarray]:  # pragma: no cover - protocol
        """Return ``(potential_energy, forces)`` at *positions*."""
        ...


def composite_energy_forces(
    forces: Iterable[Force], positions: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Sum energy and forces over a collection of force terms."""
    total_e = 0.0
    total_f = np.zeros_like(positions)
    for force in forces:
        e, f = force.energy_forces(positions)
        total_e += e
        total_f += f
    return total_e, total_f


class SegmentScatter:
    """Precomputed replica-batched scatter-add over a fixed index list.

    The serial kernels accumulate pair contributions with one or more
    ``np.add.at`` calls; ``ufunc.at`` is an unbuffered per-element loop
    and dominates the batched step when called on ``(R*P, dim)``
    arrays.  Because every kernel's index arrays are fixed, the scatter
    is precomputed into *rounds*: round ``d`` holds each atom's
    ``d``-th contribution (in serial application order — first index
    array fully before the second, pair order within each), so every
    round is a duplicate-free fancy-indexed ``+=`` and the number of
    numpy calls is the maximum contribution count, not the pair count.

    Bit-identity with the serial ``add.at`` sequence holds exactly:
    each atom's running sum receives the same values in the same order
    with the same left association (``((0 + v1) + v2) + ...``).
    ``np.add.reduceat`` would be fewer calls but silently switches to
    pairwise summation on long segments, which breaks the association.

    Masked entries (cutoff filtering) are zeroed rather than removed.
    A running sum that starts at ``+0.0`` can never become ``-0.0``
    under round-to-nearest, and adding ``+0.0`` to such a sum is the
    identity, so inserting zeroed terms reproduces serial's filtered
    ``add.at`` bit-for-bit.
    """

    def __init__(self, indices: np.ndarray) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        order = np.argsort(indices, kind="stable")
        sorted_idx = indices[order]
        new_seg = np.concatenate(([True], sorted_idx[1:] != sorted_idx[:-1]))
        seg_starts = np.flatnonzero(new_seg)
        seg_id = np.cumsum(new_seg) - 1
        rank = np.arange(len(indices)) - seg_starts[seg_id]
        self.rounds = []
        for d in range(int(rank.max()) + 1 if len(indices) else 0):
            sel = rank == d
            self.rounds.append((sorted_idx[sel], order[sel]))

    def add(
        self,
        buf: np.ndarray,
        vals: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """``buf[r, idx[p]] += vals[r, p]`` for every replica *r*.

        *vals* is ``(R, P, dim)`` aligned with the constructor's index
        list; *mask* (``(R, P)`` boolean) suppresses entries.
        """
        if mask is not None:
            vals = np.where(mask[..., None], vals, 0.0)
        for atoms, src in self.rounds:
            buf[:, atoms] += vals[:, src]


def batch_energy_forces(
    force: Force,
    positions: np.ndarray,
    replica_ids: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate *force* over an ``(R, N, dim)`` replica batch.

    Dispatches to the force's ``compute_batch`` when available and
    applicable; otherwise loops ``energy_forces`` per replica (the
    fallback for force terms that cannot vectorise).  Either way the
    returned forces match the serial kernel bit-for-bit per replica.

    *replica_ids* maps each row of *positions* to its original replica
    index (the batched simulation compacts finished replicas out, so
    row ``r`` is not replica ``r`` in general).  Force terms with
    per-replica caches — shared lazy neighbour lists — key on it;
    terms that take only positions are called the old way.
    """
    fn = getattr(force, "compute_batch", None)
    if fn is not None:
        if replica_ids is not None:
            try:
                out = fn(positions, replica_ids=replica_ids)
            except TypeError:
                # Pre-existing third-party term with the one-argument
                # signature; ids are only needed for per-replica caches.
                out = fn(positions)
        else:
            out = fn(positions)
        if out is not None:
            return out
    energies = np.empty(positions.shape[0])
    forces = np.zeros(positions.shape)
    for rep in range(positions.shape[0]):
        e, f = force.energy_forces(positions[rep])
        energies[rep] = e
        forces[rep] = f
    return energies, forces


def composite_energy_forces_batch(
    forces: Iterable[Force],
    positions: np.ndarray,
    replica_ids: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`composite_energy_forces` over ``(R, N, dim)``.

    Terms are summed in registration order with elementwise adds, so
    the total matches the serial composite bit-for-bit per replica.
    """
    total_e = np.zeros(positions.shape[0])
    total_f = np.zeros(positions.shape)
    for force in forces:
        e, f = batch_energy_forces(force, positions, replica_ids)
        total_e += e
        total_f += f
    return total_e, total_f


def numerical_forces(
    force: Force, positions: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference forces, for validating analytic gradients in tests."""
    flat = positions.ravel().copy()
    out = np.empty_like(flat)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        e_plus, _ = force.energy_forces(flat.reshape(positions.shape))
        flat[i] = orig - eps
        e_minus, _ = force.energy_forces(flat.reshape(positions.shape))
        flat[i] = orig
        out[i] = -(e_plus - e_minus) / (2 * eps)
    return out.reshape(positions.shape)
