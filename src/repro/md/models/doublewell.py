"""Quartic double-well potentials with known analytic properties.

``E(x) = barrier * ((x/width)^2 - 1)^2`` per coordinate: minima at
x = ±width, barrier height ``barrier`` at x = 0.  The 1-D version is
the workhorse for validating MSM estimators against exactly computable
equilibrium populations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.md.system import State, System
from repro.util.rng import RandomStream, ensure_stream


class DoubleWellForce:
    """Independent double wells along each coordinate of each particle."""

    def __init__(self, barrier: float = 5.0, width: float = 1.0) -> None:
        if barrier <= 0 or width <= 0:
            raise ValueError("barrier and width must be positive")
        self.barrier = float(barrier)
        self.width = float(width)

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (energy, forces) of the double-well potential."""
        u = positions / self.width
        q = u * u - 1.0
        energy = self.barrier * float(np.sum(q * q))
        # dE/dx = barrier * 2 q * 2u / width
        forces = -(4.0 * self.barrier / self.width) * q * u
        return energy, forces

    def minima(self) -> np.ndarray:
        """The two minima positions along one coordinate."""
        return np.array([-self.width, self.width])


class TiltedDoubleWellForce(DoubleWellForce):
    """Double well with a linear tilt: ``E += slope * x``.

    Asymmetric wells give unequal equilibrium populations — the shape
    needed to test stationary-distribution estimation quantitatively.
    """

    def __init__(
        self, barrier: float = 5.0, width: float = 1.0, slope: float = 1.0
    ) -> None:
        super().__init__(barrier, width)
        self.slope = float(slope)

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (energy, forces) of the double-well potential."""
        energy, forces = super().energy_forces(positions)
        energy += self.slope * float(np.sum(positions))
        forces = forces - self.slope
        return energy, forces


def double_well_system(
    barrier: float = 5.0,
    width: float = 1.0,
    mass: float = 1.0,
    dim: int = 1,
    slope: float = 0.0,
) -> System:
    """A single particle in a (possibly tilted) double well."""
    force = (
        TiltedDoubleWellForce(barrier, width, slope)
        if slope != 0.0
        else DoubleWellForce(barrier, width)
    )
    return System(masses=[mass], forces=[force], dim=dim)


def double_well_initial_state(
    side: int = -1,
    temperature: float = 300.0,
    rng: int | RandomStream | None = 0,
    width: float = 1.0,
    dim: int = 1,
) -> State:
    """A state starting in the left (side=-1) or right (side=+1) well."""
    stream = ensure_stream(rng)
    system = double_well_system(width=width, dim=dim)
    positions = np.full((1, dim), side * width) + stream.normal(
        scale=0.05, size=(1, dim)
    )
    velocities = system.maxwell_boltzmann_velocities(temperature, stream)
    return State(positions, velocities)
