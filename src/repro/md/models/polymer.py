"""Geometric builders for coarse-grained (one bead per residue) chains."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.md.forcefield.bonded import PeriodicDihedralForce
from repro.md.system import Topology
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream

#: Ideal consecutive C-alpha spacing (nm).
CA_SPACING = 0.38

#: Ideal alpha-helix geometry for a C-alpha trace.
HELIX_RISE = 0.15        # nm per residue along the axis
HELIX_RADIUS = 0.23      # nm
HELIX_TWIST = np.deg2rad(100.0)  # per residue


def build_helix(
    n_residues: int,
    start: np.ndarray,
    axis: np.ndarray,
    phase: float = 0.0,
) -> np.ndarray:
    """C-alpha coordinates of an ideal alpha-helix.

    Parameters
    ----------
    n_residues:
        Number of residues.
    start:
        Position of the helix axis at the first residue.
    axis:
        Direction of the helix axis (need not be normalised).
    phase:
        Rotational phase of the first residue around the axis.
    """
    if n_residues < 1:
        raise ConfigurationError(f"n_residues must be >= 1, got {n_residues}")
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm == 0:
        raise ConfigurationError("helix axis must be nonzero")
    axis = axis / norm
    # Build an orthonormal frame (u, v, axis).
    seed = np.array([1.0, 0.0, 0.0])
    if abs(np.dot(seed, axis)) > 0.9:
        seed = np.array([0.0, 1.0, 0.0])
    u = np.cross(axis, seed)
    u /= np.linalg.norm(u)
    v = np.cross(axis, u)
    t = np.arange(n_residues)
    angle = phase + t * HELIX_TWIST
    coords = (
        np.asarray(start, dtype=float)
        + np.outer(t * HELIX_RISE, axis)
        + HELIX_RADIUS * (np.outer(np.cos(angle), u) + np.outer(np.sin(angle), v))
    )
    return coords


def build_loop(
    start: np.ndarray, end: np.ndarray, n_residues: int, bulge: float = 0.35
) -> np.ndarray:
    """Loop residues between two anchor points with near-ideal spacing.

    Residues are placed at equal arc lengths along a quadratic Bezier
    curve from *start* to *end* whose control point bulges sideways.
    The bulge is solved by bisection so the total path length matches
    ``(n_residues + 1) * CA_SPACING``, giving every segment (including
    the two anchor bonds) close to the ideal C-alpha distance even when
    the anchors sit nearby in space.
    """
    if n_residues < 1:
        raise ConfigurationError(f"loop needs >= 1 residue, got {n_residues}")
    start = np.asarray(start, dtype=float)
    end = np.asarray(end, dtype=float)
    direction = end - start
    span = np.linalg.norm(direction)
    # Perpendicular bulge direction: away from the origin-projected line.
    midpoint = 0.5 * (start + end)
    outward = midpoint.copy()
    if span > 1e-9:
        outward = outward - np.dot(outward, direction) / span**2 * direction
    nrm = np.linalg.norm(outward)
    if nrm < 1e-9:
        for seed in ([0.0, 0.0, 1.0], [0.0, 1.0, 0.0], [1.0, 0.0, 0.0]):
            outward = np.cross(direction, np.asarray(seed))
            nrm = np.linalg.norm(outward)
            if nrm > 1e-9:
                break
        else:  # degenerate anchors: pick any direction
            outward, nrm = np.array([0.0, 0.0, 1.0]), 1.0
    outward /= nrm

    target_length = (n_residues + 1) * CA_SPACING
    t_fine = np.linspace(0.0, 1.0, 256)

    def _curve(b: float) -> np.ndarray:
        control = midpoint + b * outward
        t = t_fine[:, None]
        return (
            (1 - t) ** 2 * start[None, :]
            + 2 * (1 - t) * t * control[None, :]
            + t**2 * end[None, :]
        )

    def _length(b: float) -> float:
        pts = _curve(b)
        return float(np.sum(np.linalg.norm(np.diff(pts, axis=0), axis=1)))

    if span >= target_length:
        chosen = 0.0  # anchors far apart: straight line is already long enough
    else:
        lo, hi = 0.0, max(bulge, 0.1)
        while _length(hi) < target_length and hi < 100.0:
            hi *= 2.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if _length(mid) < target_length:
                lo = mid
            else:
                hi = mid
        chosen = 0.5 * (lo + hi)

    pts = _curve(chosen)
    seg = np.linalg.norm(np.diff(pts, axis=0), axis=1)
    cumulative = np.concatenate([[0.0], np.cumsum(seg)])
    total = cumulative[-1]
    targets = np.arange(1, n_residues + 1) / (n_residues + 1) * total
    coords = np.empty((n_residues, 3))
    for k, s in enumerate(targets):
        idx = np.searchsorted(cumulative, s)
        idx = min(max(idx, 1), len(t_fine) - 1)
        frac = (s - cumulative[idx - 1]) / max(seg[idx - 1], 1e-12)
        coords[k] = pts[idx - 1] + frac * (pts[idx] - pts[idx - 1])
    return coords


def build_extended_chain(
    n_residues: int,
    spacing: float = CA_SPACING,
    zigzag_angle: float = np.deg2rad(120.0),
    rng: Optional[RandomStream] = None,
    noise: float = 0.02,
) -> np.ndarray:
    """An extended (unfolded) zigzag chain in the xy-plane.

    A zigzag rather than a straight line keeps every bond angle well
    away from the straight-angle singularity of the harmonic angle
    force.  Optional Gaussian noise decorrelates multiple unfolded
    starting conformations, mirroring the paper's nine distinct
    unfolded villin starts.
    """
    if n_residues < 2:
        raise ConfigurationError(f"n_residues must be >= 2, got {n_residues}")
    half = zigzag_angle / 2.0
    step_x = spacing * np.sin(half)
    step_y = spacing * np.cos(half)
    x = np.arange(n_residues) * step_x
    y = np.where(np.arange(n_residues) % 2 == 0, 0.0, step_y)
    coords = np.stack([x, y, np.zeros(n_residues)], axis=1)
    if rng is not None and noise > 0:
        coords = coords + rng.normal(scale=noise, size=coords.shape)
    return coords


def chain_topology_from_native(
    native: np.ndarray,
    bond_k: float = 8000.0,
    angle_k: float = 40.0,
    dihedral_k: float = 2.0,
    names: Optional[Sequence[str]] = None,
) -> Topology:
    """Bonded topology of a CG chain with equilibrium values from *native*.

    This is the structure-based (Gō) prescription: bonds, angles and
    dihedrals take their native geometry as the minimum.  Dihedrals get
    the standard two-term (n=1 and n=3) Gō form; the n=3 share is added
    by the caller via a second force if desired.
    """
    n = len(native)
    if n < 2:
        raise ConfigurationError("chain needs at least two residues")
    bonds = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    bond_vecs = native[1:] - native[:-1]
    bond_r0 = np.linalg.norm(bond_vecs, axis=1)

    if n >= 3:
        angles = np.stack(
            [np.arange(n - 2), np.arange(1, n - 1), np.arange(2, n)], axis=1
        )
        rij = native[angles[:, 0]] - native[angles[:, 1]]
        rkj = native[angles[:, 2]] - native[angles[:, 1]]
        cos_t = np.sum(rij * rkj, axis=1) / (
            np.linalg.norm(rij, axis=1) * np.linalg.norm(rkj, axis=1)
        )
        angle_theta0 = np.arccos(np.clip(cos_t, -1.0, 1.0))
    else:
        angles = np.zeros((0, 3), dtype=int)
        angle_theta0 = np.zeros(0)

    if n >= 4:
        dihedrals = np.stack(
            [
                np.arange(n - 3),
                np.arange(1, n - 2),
                np.arange(2, n - 1),
                np.arange(3, n),
            ],
            axis=1,
        )
        phi_native = PeriodicDihedralForce.dihedral_angles(native, dihedrals)
        # k (1 + cos(1*phi - delta)) has its minimum at phi_native when
        # delta = phi_native - pi.
        dihedral_phi0 = phi_native - np.pi
        dihedral_mult = np.ones(len(dihedrals), dtype=int)
    else:
        dihedrals = np.zeros((0, 4), dtype=int)
        dihedral_phi0 = np.zeros(0)
        dihedral_mult = np.zeros(0, dtype=int)

    return Topology(
        n_atoms=n,
        bonds=bonds,
        bond_r0=bond_r0,
        bond_k=np.full(len(bonds), bond_k),
        angles=angles,
        angle_theta0=angle_theta0,
        angle_k=np.full(len(angles), angle_k),
        dihedrals=dihedrals,
        dihedral_phi0=dihedral_phi0,
        dihedral_k=np.full(len(dihedrals), dihedral_k),
        dihedral_mult=dihedral_mult,
        names=list(names) if names is not None else None,
    )


def native_contact_pairs(
    native: np.ndarray, cutoff: float = 1.1, min_separation: int = 4
) -> Tuple[np.ndarray, np.ndarray]:
    """Native contact list: pairs at least *min_separation* apart in
    sequence whose native distance is below *cutoff* (nm).

    Returns ``(pairs, distances)``.
    """
    n = len(native)
    iu, ju = np.triu_indices(n, k=min_separation)
    d = np.linalg.norm(native[ju] - native[iu], axis=1)
    mask = d < cutoff
    pairs = np.stack([iu[mask], ju[mask]], axis=1)
    return pairs, d[mask]
