"""Exact-ground-truth toy systems: discrete Markov chains as MD models.

The adaptive-strategy laboratory needs systems whose kinetics are
*known exactly*, so a model built from sampled trajectories can be
scored against truth instead of against another estimate.  A
:class:`MarkovChainSpec` is that truth: an explicit row-stochastic
transition matrix over ``K`` discrete states, each state embedded at a
distinct point in 1-D/2-D space.  Wrapping the spec in a
:class:`MarkovChainSystem` (one massless-dynamics "particle" whose
position is the current state's embedding) lets the *unchanged*
engine/worker/controller stack run the chain: the ``markov-chain``
integrator jumps the particle between embedding points by drawing from
the known matrix, and every downstream consumer (clustering, counting,
checkpointing) sees an ordinary trajectory of coordinates.

Two chains ship as registered models:

``markov-ala20``
    A 20-state, 1-D Metropolis chain on a periodic-cosine energy
    profile with four metastable basins — an alanine-like torsion
    landscape with near-zero compute per step.
``markov-mb``
    A Metropolis chain over the low-energy cells of a discretized
    Müller–Brown surface (largest connected component of an
    ``n_bins x n_bins`` grid), embedded at the 2-D cell centres.

Both are exactly reversible (symmetric uniform proposals over a
neighbour graph, Metropolis acceptance), so the stationary
distribution is ``exp(-beta * E)`` up to normalisation and every
eigenvalue/timescale is computable from the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.md.models.muller_brown import MINIMA, MullerBrownForce
from repro.md.system import State, System
from repro.util.errors import ConfigurationError

__all__ = [
    "MarkovChainSpec",
    "MarkovChainSystem",
    "metropolis_transition_matrix",
    "alanine_chain_spec",
    "muller_brown_chain_spec",
    "build_markov_chain",
    "MARKOV_CHAIN_MODELS",
]


@dataclass
class MarkovChainSpec:
    """The exact truth: a transition matrix plus a state embedding.

    Attributes
    ----------
    transition_matrix:
        ``(K, K)`` row-stochastic matrix; one application = one
        integrator step.
    embedding:
        ``(K, dim)`` distinct coordinates, one row per state; the
        particle's position *is* the embedding of its current state.
    energies:
        Per-state energies the chain was built from (reporting only).
    default_start:
        State index used when a task gives no initial positions.
    name:
        Registered model name (reporting only).
    """

    transition_matrix: np.ndarray
    embedding: np.ndarray
    energies: np.ndarray = field(default_factory=lambda: np.zeros(0))
    default_start: int = 0
    name: str = "markov-chain"

    def __post_init__(self) -> None:
        self.transition_matrix = np.asarray(self.transition_matrix, dtype=float)
        self.embedding = np.asarray(self.embedding, dtype=float)
        if self.embedding.ndim == 1:
            self.embedding = self.embedding[:, None]
        T = self.transition_matrix
        if T.ndim != 2 or T.shape[0] != T.shape[1]:
            raise ConfigurationError(
                f"transition matrix must be square, got {T.shape}"
            )
        if np.any(T < 0) or not np.allclose(T.sum(axis=1), 1.0):
            raise ConfigurationError("transition matrix must be row-stochastic")
        if self.embedding.shape[0] != T.shape[0]:
            raise ConfigurationError(
                f"embedding has {self.embedding.shape[0]} states but the "
                f"matrix has {T.shape[0]}"
            )
        if self.embedding.shape[1] not in (1, 2, 3):
            raise ConfigurationError("embedding dim must be 1, 2 or 3")
        if len(np.unique(self.embedding, axis=0)) != T.shape[0]:
            raise ConfigurationError("embedding points must be distinct")
        if not 0 <= self.default_start < T.shape[0]:
            raise ConfigurationError(
                f"default_start {self.default_start} out of range"
            )
        self.energies = np.asarray(self.energies, dtype=float)
        # cumulative rows make each step one searchsorted, and pinning
        # the last column kills float round-off at u ~ 1
        self._cumulative = np.cumsum(T, axis=1)
        self._cumulative[:, -1] = 1.0

    @property
    def n_states(self) -> int:
        """Number of discrete states."""
        return self.transition_matrix.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self.embedding.shape[1]

    def sample_next(self, state: int, u: float) -> int:
        """Next state from uniform draw *u* in [0, 1) (inverse CDF)."""
        return int(
            np.searchsorted(self._cumulative[state], u, side="right")
        )

    def position_of(self, state: int) -> np.ndarray:
        """Embedding coordinates of *state*, shaped ``(1, dim)``."""
        return self.embedding[int(state)][None, :].copy()

    def discretize(self, frames: np.ndarray) -> np.ndarray:
        """Map trajectory frames back to exact state indices.

        Accepts ``(n, dim)`` or the engine's ``(n, 1, dim)`` frame
        stacks; nearest-embedding assignment is exact here because the
        integrator only ever emits embedding points.
        """
        pts = np.asarray(frames, dtype=float).reshape(len(frames), -1)
        if pts.shape[1] != self.dim:
            raise ConfigurationError(
                f"frames have {pts.shape[1]} coordinates, expected {self.dim}"
            )
        d2 = ((pts[:, None, :] - self.embedding[None, :, :]) ** 2).sum(axis=2)
        return d2.argmin(axis=1)

    def state_of(self, positions: np.ndarray) -> int:
        """Exact state index of one particle position."""
        return int(self.discretize(np.asarray(positions).reshape(1, -1))[0])

    def stationary_distribution(self) -> np.ndarray:
        """Exact stationary distribution of the chain."""
        from repro.msm.analysis import stationary_distribution

        return stationary_distribution(self.transition_matrix)

    def frame_matrix(self, stride: int) -> np.ndarray:
        """Truth at frame resolution: ``T^stride``.

        Trajectories store one frame every ``report_interval`` steps,
        so models estimated from frames at lag ``L`` must be compared
        against ``T^(report_interval * L)`` — implied timescales are
        invariant under this power, transition probabilities are not.
        """
        if stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {stride}")
        return np.linalg.matrix_power(self.transition_matrix, int(stride))


class MarkovChainSystem(System):
    """A one-particle force-free system carrying a chain spec.

    The particle's position is the embedding of the chain's current
    state; the ``markov-chain`` integrator reads ``system.spec`` to
    advance it.  No forces are registered, so the generic force loop
    returns zeros and any thermostat bookkeeping stays harmless.
    """

    def __init__(self, spec: MarkovChainSpec, mass: float = 1.0) -> None:
        super().__init__(masses=[mass], dim=spec.dim)
        self.spec = spec


def metropolis_transition_matrix(
    energies: np.ndarray,
    neighbors: List[List[int]],
    beta: float = 1.0,
) -> np.ndarray:
    """Reversible Metropolis chain over a neighbour graph.

    Proposals are uniform over ``max_degree`` slots (symmetric, so
    detailed balance holds exactly); acceptance is the Metropolis rule
    ``min(1, exp(-beta * dE))``; rejected/unused proposal mass becomes
    a self-loop.  The stationary distribution is exactly
    ``exp(-beta * E) / Z``.
    """
    energies = np.asarray(energies, dtype=float)
    n = len(energies)
    if beta <= 0:
        raise ConfigurationError(f"beta must be positive, got {beta}")
    max_degree = max((len(nbrs) for nbrs in neighbors), default=0)
    if max_degree == 0:
        raise ConfigurationError("neighbour graph has no edges")
    T = np.zeros((n, n))
    for i, nbrs in enumerate(neighbors):
        for j in nbrs:
            accept = min(1.0, float(np.exp(-beta * (energies[j] - energies[i]))))
            T[i, j] = accept / max_degree
        T[i, i] = 1.0 - T[i].sum()
    return T


def alanine_chain_spec(
    n_states: int = 20,
    beta: float = 1.0,
    barrier: float = 6.5,
    tilt: float = 3.0,
) -> MarkovChainSpec:
    """The 20-state alanine-like 1-D chain.

    Energy profile ``E(t) = barrier * (1 - cos(6 pi t)) / 2 - tilt * t``
    over ``t in [0, 1]``: four metastable basins (t = 0, 1/3, 2/3, 1)
    separated by barriers of height ~*barrier* (in kT when beta = 1),
    tilted so each basin is *tilt*/3 deeper than the last.  States are
    embedded at ``x = 0..n_states-1``; proposals are +-1 with
    reflecting ends.  The default start is state 0 — the *shallowest*
    basin — so most of the stationary mass sits behind three barriers
    that must be discovered in sequence: the regime where
    frontier-weighted adaptive schemes compound their advantage over
    even respawning, generation after generation.
    """
    if n_states < 2:
        raise ConfigurationError(f"n_states must be >= 2, got {n_states}")
    t = np.arange(n_states) / (n_states - 1)
    energies = 0.5 * barrier * (1.0 - np.cos(6.0 * np.pi * t)) - tilt * t
    neighbors = [
        [j for j in (i - 1, i + 1) if 0 <= j < n_states]
        for i in range(n_states)
    ]
    T = metropolis_transition_matrix(energies, neighbors, beta=beta)
    return MarkovChainSpec(
        transition_matrix=T,
        embedding=np.arange(n_states, dtype=float)[:, None],
        energies=energies,
        default_start=0,
        name="markov-ala20",
    )


def _largest_component(n: int, neighbors: List[List[int]]) -> np.ndarray:
    """Indices of the largest connected component (deterministic BFS)."""
    seen = np.full(n, -1)
    component = 0
    for root in range(n):
        if seen[root] >= 0:
            continue
        queue = [root]
        seen[root] = component
        while queue:
            node = queue.pop()
            for nxt in neighbors[node]:
                if seen[nxt] < 0:
                    seen[nxt] = component
                    queue.append(nxt)
        component += 1
    sizes = np.bincount(seen)
    return np.flatnonzero(seen == sizes.argmax())


def muller_brown_chain_spec(
    n_bins: int = 8,
    beta: float = 0.4,
    scale: float = 0.05,
    energy_cutoff: float = 9.0,
) -> MarkovChainSpec:
    """Metropolis chain on a discretized Müller–Brown surface.

    The surface is binned into ``n_bins x n_bins`` cells over the
    canonical landscape window; cells within *energy_cutoff* (kJ/mol)
    of the global minimum are kept, the rest (the huge-energy walls)
    are dropped, and the chain lives on the largest connected
    component with 4-neighbour proposals.  Embedding = 2-D cell
    centres, so k-centers clustering recovers the cells exactly.  The
    default start is the cell nearest minimum B (lower right), leaving
    the A basin across the saddles to be discovered.
    """
    if n_bins < 2:
        raise ConfigurationError(f"n_bins must be >= 2, got {n_bins}")
    xs = np.linspace(-1.5, 1.1, n_bins)
    ys = np.linspace(-0.2, 2.0, n_bins)
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    energies = MullerBrownForce(scale).energy_grid(gx, gy).ravel()
    keep = np.flatnonzero(energies <= energies.min() + energy_cutoff)
    index_of = {int(cell): k for k, cell in enumerate(keep)}
    neighbors: List[List[int]] = [[] for _ in keep]
    for k, cell in enumerate(keep):
        i, j = divmod(int(cell), n_bins)
        for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            ni, nj = i + di, j + dj
            if 0 <= ni < n_bins and 0 <= nj < n_bins:
                other = index_of.get(ni * n_bins + nj)
                if other is not None:
                    neighbors[k].append(other)
    component = _largest_component(len(keep), neighbors)
    relabel = {int(old): new for new, old in enumerate(component)}
    kept_cells = keep[component]
    kept_neighbors = [
        [relabel[j] for j in neighbors[int(old)] if int(j) in relabel]
        for old in component
    ]
    kept_energies = energies[kept_cells]
    embedding = np.stack(
        [gx.ravel()[kept_cells], gy.ravel()[kept_cells]], axis=1
    )
    T = metropolis_transition_matrix(kept_energies, kept_neighbors, beta=beta)
    start = int(((embedding - MINIMA[1][None, :]) ** 2).sum(axis=1).argmin())
    return MarkovChainSpec(
        transition_matrix=T,
        embedding=embedding,
        energies=kept_energies,
        default_start=start,
        name="markov-mb",
    )


#: Registered chain models: name -> spec factory.
MARKOV_CHAIN_MODELS: Dict[str, Callable[..., MarkovChainSpec]] = {
    "markov-ala20": alanine_chain_spec,
    "markov-mb": muller_brown_chain_spec,
}


def build_markov_chain(model: str, mass: float = 1.0, **spec_params) -> MarkovChainSystem:
    """Build the :class:`MarkovChainSystem` for a registered chain model."""
    try:
        factory = MARKOV_CHAIN_MODELS[model]
    except KeyError:
        raise ConfigurationError(
            f"unknown markov-chain model {model!r}; "
            f"known: {sorted(MARKOV_CHAIN_MODELS)}"
        ) from None
    return MarkovChainSystem(factory(**spec_params), mass=mass)


def markov_chain_initial_state(
    system: MarkovChainSystem,
    state_index: int | None = None,
) -> State:
    """A state sitting exactly on one embedding point (zero velocities)."""
    spec = system.spec
    index = spec.default_start if state_index is None else int(state_index)
    if not 0 <= index < spec.n_states:
        raise ConfigurationError(f"state_index {index} out of range")
    positions = spec.position_of(index)
    return State(positions, np.zeros_like(positions))
