"""Model systems for the reproduction.

* :mod:`repro.md.models.villin` — coarse-grained Gō model of the villin
  headpiece (the paper's benchmark protein), with a procedurally built
  three-helix-bundle native state.
* :mod:`repro.md.models.polymer` — geometric builders (helices, loops,
  extended chains) shared by the protein models.
* :mod:`repro.md.models.muller_brown` — the Müller–Brown 2-D surface,
  a fast substrate for MSM unit tests.
* :mod:`repro.md.models.doublewell` — 1-D/2-D double wells with known
  analytic properties.
* :mod:`repro.md.models.markov_chain` — discrete Metropolis chains
  with *exactly* known transition matrices, the adaptive-strategy
  laboratory's ground-truth systems.
"""

from repro.md.models.villin import VillinModel, build_villin
from repro.md.models.polymer import (
    build_helix,
    build_extended_chain,
    chain_topology_from_native,
)
from repro.md.models.muller_brown import MullerBrownForce, muller_brown_system
from repro.md.models.doublewell import DoubleWellForce, double_well_system
from repro.md.models.lj_fluid import (
    lj_fluid_system,
    lj_fluid_state,
    radial_distribution,
)
from repro.md.models.markov_chain import (
    MarkovChainSpec,
    MarkovChainSystem,
    alanine_chain_spec,
    build_markov_chain,
    muller_brown_chain_spec,
)

__all__ = [
    "VillinModel",
    "build_villin",
    "build_helix",
    "build_extended_chain",
    "chain_topology_from_native",
    "MullerBrownForce",
    "muller_brown_system",
    "DoubleWellForce",
    "double_well_system",
    "lj_fluid_system",
    "lj_fluid_state",
    "radial_distribution",
    "MarkovChainSpec",
    "MarkovChainSystem",
    "alanine_chain_spec",
    "build_markov_chain",
    "muller_brown_chain_spec",
]
