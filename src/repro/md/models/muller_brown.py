"""The Müller–Brown potential: a 2-D benchmark surface for MSM tests.

Three metastable minima separated by saddle points — the canonical
test landscape for rare-event sampling methods.  A single particle
diffusing on this surface exercises the complete clustering /
transition-counting / adaptive-sampling stack in milliseconds.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.md.system import State, System
from repro.util.rng import RandomStream, ensure_stream

# Canonical Müller-Brown parameters.
_A = np.array([-200.0, -100.0, -170.0, 15.0])
_a = np.array([-1.0, -1.0, -6.5, 0.7])
_b = np.array([0.0, 0.0, 11.0, 0.6])
_c = np.array([-10.0, -10.0, -6.5, 0.7])
_x0 = np.array([1.0, 0.0, -0.5, -1.0])
_y0 = np.array([0.0, 0.5, 1.5, 1.0])

#: Approximate locations of the three minima (useful for tests).
MINIMA = np.array([[-0.558, 1.442], [0.623, 0.028], [-0.050, 0.467]])


class MullerBrownForce:
    """Müller–Brown energy/force for one particle in 2-D.

    Parameters
    ----------
    scale:
        Multiplies the canonical potential.  The raw surface has
        barriers of ~100 units; ``scale`` maps them onto kJ/mol so that
        barrier / kT is experimentally convenient (default 0.05 gives
        ~5 kJ/mol barriers: frequent transitions at 300 K).
    """

    def __init__(self, scale: float = 0.05) -> None:
        self.scale = float(scale)

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (energy, forces) of the Muller-Brown surface."""
        x = positions[:, 0][:, None]
        y = positions[:, 1][:, None]
        dx = x - _x0[None, :]
        dy = y - _y0[None, :]
        expo = _a * dx * dx + _b * dx * dy + _c * dy * dy
        terms = _A * np.exp(expo)
        energy = self.scale * float(np.sum(terms))
        dE_dx = np.sum(terms * (2.0 * _a * dx + _b * dy), axis=1)
        dE_dy = np.sum(terms * (_b * dx + 2.0 * _c * dy), axis=1)
        forces = -self.scale * np.stack([dE_dx, dE_dy], axis=1)
        return energy, forces

    def energy_grid(
        self, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Vectorised energy on a meshgrid (for plotting / tests)."""
        dx = x[..., None] - _x0
        dy = y[..., None] - _y0
        expo = _a * dx * dx + _b * dx * dy + _c * dy * dy
        return self.scale * np.sum(_A * np.exp(expo), axis=-1)


def muller_brown_system(scale: float = 0.05, mass: float = 1.0) -> System:
    """A single particle on the Müller–Brown surface."""
    return System(masses=[mass], forces=[MullerBrownForce(scale)], dim=2)


def muller_brown_initial_state(
    minimum: int = 1,
    temperature: float = 300.0,
    rng: int | RandomStream | None = 0,
    scale: float = 0.05,
) -> State:
    """A state starting near one of the three minima."""
    stream = ensure_stream(rng)
    system = muller_brown_system(scale)
    positions = MINIMA[minimum][None, :] + stream.normal(scale=0.02, size=(1, 2))
    velocities = system.maxwell_boltzmann_velocities(temperature, stream)
    return State(positions, velocities)
