"""Periodic Lennard-Jones fluid: the weak-scaling substrate.

The paper argues Copernicus' strong-scaling regime grows with system
size because "the underlying molecular dynamics implementation has
close to ideal weak scaling".  A bulk LJ fluid in a periodic box is the
canonical system for that claim: homogeneous, arbitrary size, with
well-known structure (the radial distribution function) to validate
against.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.md.forcefield.nonbonded import LennardJonesForce
from repro.md.neighborlist import AllPairs, SharedNeighborList
from repro.md.system import State, System
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream, ensure_stream


def lattice_positions(n_particles: int, box_length: float) -> np.ndarray:
    """Particles on a simple cubic lattice filling the box."""
    if n_particles < 1 or box_length <= 0:
        raise ConfigurationError("invalid lattice parameters")
    per_side = int(np.ceil(n_particles ** (1.0 / 3.0)))
    spacing = box_length / per_side
    grid = np.arange(per_side) * spacing + 0.5 * spacing
    coords = np.array(
        np.meshgrid(grid, grid, grid, indexing="ij")
    ).reshape(3, -1).T
    return coords[:n_particles]


def lj_fluid_system(
    n_particles: int = 125,
    density: float = 0.6,
    sigma: float = 0.34,
    epsilon: float = 1.0,
    mass: float = 39.9,
    cutoff_factor: float = 2.5,
    neighborlist: str = "all-pairs",
    skin: float = 0.1,
) -> Tuple[System, np.ndarray]:
    """A periodic LJ fluid at reduced density ``rho* = density``.

    Returns ``(system, box)``; box length follows from N and density
    (``rho* = N sigma^3 / V``).  Argon-flavoured defaults.

    ``neighborlist`` selects the pair provider: ``"all-pairs"`` (the
    default, every pair every step) or ``"verlet"`` — a lazy
    :class:`~repro.md.neighborlist.SharedNeighborList` with *skin*
    margin (nm) that rebuilds only when an atom has moved more than
    ``skin/2`` since the last build.  Both produce bit-identical
    forces (see :mod:`repro.md.neighborlist`); "verlet" amortises the
    pair search across steps and, in a batched stack, across replicas.
    """
    if n_particles < 2:
        raise ConfigurationError("need at least two particles")
    if density <= 0 or sigma <= 0 or epsilon <= 0:
        raise ConfigurationError("density, sigma, epsilon must be positive")
    volume = n_particles * sigma**3 / density
    box_length = volume ** (1.0 / 3.0)
    cutoff = min(cutoff_factor * sigma, 0.499 * box_length)
    box = np.full(3, box_length)
    if neighborlist == "all-pairs":
        provider = AllPairs(n_particles)
    elif neighborlist == "verlet":
        provider = SharedNeighborList(cutoff, skin=skin, box=box)
    else:
        raise ConfigurationError(
            f"unknown neighborlist {neighborlist!r}: "
            "expected 'all-pairs' or 'verlet'"
        )
    force = LennardJonesForce(
        provider, sigma=sigma, epsilon=epsilon,
        cutoff=cutoff, box=box,
    )
    system = System(masses=np.full(n_particles, mass), forces=[force], dim=3)
    return system, box


def lj_fluid_state(
    system: System,
    box: np.ndarray,
    temperature: float = 300.0,
    rng: int | RandomStream | None = 0,
    jitter: float = 0.01,
) -> State:
    """Lattice start with thermal velocities (melts within ~1,000 steps)."""
    stream = ensure_stream(rng)
    positions = lattice_positions(system.n_atoms, float(box[0]))
    positions = positions + stream.normal(scale=jitter, size=positions.shape)
    velocities = system.maxwell_boltzmann_velocities(temperature, stream)
    return State(positions, velocities)


def wrap_positions(positions: np.ndarray, box: np.ndarray) -> np.ndarray:
    """Map coordinates back into the primary box (for analysis only)."""
    return positions - box * np.floor(positions / box)


def virial_pressure(
    system: System,
    positions: np.ndarray,
    box: np.ndarray,
    temperature: float,
) -> float:
    """Instantaneous pressure via the virial route.

    ``P = rho kT + W / (3V)`` with the internal virial
    ``W = sum_i r_i . f_i`` computed pairwise (minimum image) so it is
    well-defined under periodic boundaries.  Reduces to the ideal-gas
    law when interactions vanish.
    """
    from repro.util.units import KB

    box = np.asarray(box, dtype=float)
    volume = float(np.prod(box))
    n = system.n_atoms
    kinetic_term = n * KB * temperature / volume
    virial = 0.0
    for force in system.forces:
        provider = getattr(force, "pair_provider", None)
        if provider is None:
            continue
        i, j = provider.pairs(positions)
        if len(i) == 0:
            continue
        # pairwise virial: recompute pair forces from the force object
        # by differencing against the per-atom output is fragile;
        # instead use W = sum_pairs r_ij . f_ij via a scalar probe:
        # evaluate the force's energy at slightly scaled coordinates
        # (virial theorem: W = -3V dU/dV = -dU/d(ln s) at s=1).
        eps = 1e-6
        e_plus, _ = _scaled_energy(force, positions, box, 1.0 + eps)
        e_minus, _ = _scaled_energy(force, positions, box, 1.0 - eps)
        dU_dlns = (e_plus - e_minus) / (2.0 * eps)
        virial += -dU_dlns
    return kinetic_term + virial / (3.0 * volume)


def _scaled_energy(force, positions, box, scale):
    """Energy with coordinates and box scaled by *scale* (virial probe)."""
    original_box = force.box
    try:
        if original_box is not None:
            force.box = original_box * scale
        result = force.energy_forces(positions * scale)
    finally:
        force.box = original_box
    return result


def radial_distribution(
    frames: np.ndarray,
    box: np.ndarray,
    n_bins: int = 60,
    r_max: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """g(r) of a periodic fluid from one or more frames.

    Returns ``(r_centers, g)`` with the standard ideal-gas
    normalisation; ``r_max`` defaults to half the smallest box length.
    """
    frames = np.asarray(frames, dtype=float)
    if frames.ndim == 2:
        frames = frames[None]
    n_frames, n_atoms, _ = frames.shape
    box = np.asarray(box, dtype=float)
    if r_max is None:
        r_max = 0.5 * float(box.min())
    if r_max <= 0 or n_bins < 2:
        raise ConfigurationError("invalid g(r) parameters")
    edges = np.linspace(0.0, r_max, n_bins + 1)
    counts = np.zeros(n_bins)
    iu, ju = np.triu_indices(n_atoms, k=1)
    for frame in frames:
        rij = frame[ju] - frame[iu]
        rij -= box * np.round(rij / box)
        r = np.sqrt(np.sum(rij * rij, axis=1))
        hist, _ = np.histogram(r, bins=edges)
        counts += hist
    volume = float(np.prod(box))
    density = n_atoms / volume
    shell = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    ideal = shell * density * n_atoms / 2.0 * n_frames
    centers = 0.5 * (edges[:-1] + edges[1:])
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(ideal > 0, counts / ideal, 0.0)
    return centers, g
