"""Coarse-grained Gō model of the villin headpiece.

The paper folds the 35-residue villin headpiece mutant 35-NleNle (PDB
2F4K), a three-helix bundle, with all-atom explicit-solvent MD.  That
substrate is replaced here by a one-bead-per-residue structure-based
model whose *native state is a procedurally built three-helix bundle*:

* three ideal alpha-helices packed on a triangular lattice,
  antiparallel, joined by two short loops (default 10+2+11+2+10 = 35
  residues, matching villin's size);
* bonds/angles/dihedrals with native equilibrium values
  (:func:`~repro.md.models.polymer.chain_topology_from_native`);
* 12-10 native-contact attractions; purely repulsive excluded volume
  on everything else.

The substitution preserves what the Copernicus layer consumes: folding
from extended chains through metastable intermediates, an RMSD-to-
native observable, and tunable kinetics via temperature and contact
strength.  A reduced ``fast`` variant (three 5-residue helices, 19
residues) folds in ~1e5 steps for tests and quick benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.md.forcefield.bonded import (
    HarmonicAngleForce,
    HarmonicBondForce,
    PeriodicDihedralForce,
)
from repro.md.forcefield.go_model import GoContactForce
from repro.md.forcefield.nonbonded import ExcludedVolumeForce
from repro.md.models.polymer import (
    build_extended_chain,
    build_helix,
    build_loop,
    chain_topology_from_native,
    native_contact_pairs,
)
from repro.md.neighborlist import AllPairs
from repro.md.system import State, System, Topology
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream, ensure_stream

#: Residue mass (amu) — one bead carries an average residue's mass.
RESIDUE_MASS = 110.0


def build_native_bundle(
    helix_lengths: Sequence[int] = (10, 11, 10),
    loop_lengths: Sequence[int] = (2, 2),
    packing_distance: float = 1.0,
) -> np.ndarray:
    """Native C-alpha coordinates of an idealised three-helix bundle.

    Helix axes sit on the vertices of an equilateral triangle with side
    *packing_distance* (nm); successive helices run antiparallel so the
    connecting loops are short, as in the real villin fold.
    """
    if len(helix_lengths) != 3 or len(loop_lengths) != 2:
        raise ConfigurationError("bundle needs 3 helices and 2 loops")
    d = packing_distance
    centers = [
        np.array([0.0, 0.0, 0.0]),
        np.array([d, 0.0, 0.0]),
        np.array([d / 2.0, d * np.sqrt(3.0) / 2.0, 0.0]),
    ]
    z_axis = np.array([0.0, 0.0, 1.0])
    pieces: List[np.ndarray] = []
    for h, (center, length) in enumerate(zip(centers, helix_lengths)):
        direction = z_axis if h % 2 == 0 else -z_axis
        height = (length - 1) * 0.15
        start = center if h % 2 == 0 else center + np.array([0, 0, height])
        helix = build_helix(length, start, direction, phase=h * 2.0)
        pieces.append(helix)
        if h < 2:
            # Loop from this helix's last residue to the next helix's first.
            next_center = centers[h + 1]
            next_length = helix_lengths[h + 1]
            next_dir = z_axis if (h + 1) % 2 == 0 else -z_axis
            next_height = (next_length - 1) * 0.15
            next_start = (
                next_center
                if (h + 1) % 2 == 0
                else next_center + np.array([0, 0, next_height])
            )
            next_first = build_helix(1, next_start, next_dir, phase=(h + 1) * 2.0)[0]
            loop = build_loop(pieces[-1][-1], next_first, loop_lengths[h])
            pieces.append(loop)
    return np.concatenate(pieces, axis=0)


@dataclass
class VillinModel:
    """A ready-to-simulate CG villin system plus its native reference.

    Attributes
    ----------
    system:
        :class:`~repro.md.system.System` with all force terms attached.
    native:
        Native C-alpha coordinates ``(n_residues, 3)``.
    go_force:
        The native-contact force (exposes ``fraction_native``).
    contact_epsilon:
        Contact well depth used (kJ/mol).
    """

    system: System
    native: np.ndarray
    go_force: GoContactForce
    contact_epsilon: float
    topology: Topology = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def n_residues(self) -> int:
        """Number of residues (beads)."""
        return self.system.n_atoms

    def extended_state(
        self, rng: int | RandomStream | None = None, temperature: float = 300.0
    ) -> State:
        """An unfolded starting state with Maxwell–Boltzmann velocities.

        Each call with a distinct rng yields a distinct unfolded
        conformation — the paper's "nine unfolded conformations".
        """
        stream = ensure_stream(rng)
        positions = build_extended_chain(self.n_residues, rng=stream, noise=0.03)
        velocities = self.system.maxwell_boltzmann_velocities(temperature, stream)
        return State(positions, velocities)

    def native_state(
        self, rng: int | RandomStream | None = None, temperature: float = 300.0
    ) -> State:
        """The native structure with thermal velocities."""
        stream = ensure_stream(rng)
        velocities = self.system.maxwell_boltzmann_velocities(temperature, stream)
        return State(self.native.copy(), velocities)

    def fraction_native(self, positions: np.ndarray) -> float:
        """Fraction of native contacts formed (folding coordinate Q)."""
        return self.go_force.fraction_native(positions)


def build_villin(
    variant: str = "full",
    contact_epsilon: float = 5.0,
    bond_k: float = 8000.0,
    angle_k: float = 40.0,
    dihedral_k: float = 2.0,
    contact_cutoff: float = 1.1,
    excluded_sigma: float = 0.38,
) -> VillinModel:
    """Construct the CG villin Gō model.

    Parameters
    ----------
    variant:
        ``"full"`` — 35 residues (10+2+11+2+10), the paper's system
        size; ``"fast"`` — 19 residues (5+2+5+2+5), folds quickly for
        tests and CI-scale benchmarks.
    contact_epsilon:
        Native-contact well depth in kJ/mol.  With the default the
        model folds readily at ~300 K and unfolds near ~400 K.
    """
    if variant == "full":
        helices, loops = (10, 11, 10), (2, 2)
    elif variant == "fast":
        helices, loops = (5, 5, 5), (2, 2)
    else:
        raise ConfigurationError(f"unknown villin variant {variant!r}")

    native = build_native_bundle(helices, loops)
    n = len(native)
    topology = chain_topology_from_native(
        native, bond_k=bond_k, angle_k=angle_k, dihedral_k=dihedral_k
    )
    contacts, contact_r0 = native_contact_pairs(
        native, cutoff=contact_cutoff, min_separation=4
    )
    if len(contacts) == 0:
        raise ConfigurationError(
            "native structure has no contacts; check builder geometry"
        )

    # Excluded volume acts on every pair except bonded neighbours,
    # angle 1-3 pairs and the native contacts (which have their own well).
    excluded = topology.all_excluded_pairs()
    excluded |= {(int(i), int(j)) for i, j in contacts}
    # 1-4 pairs are governed by dihedrals; exclude them from the wall too.
    excluded |= {(i, i + 3) for i in range(n - 3)}
    repulsive_pairs = AllPairs(n, exclusions=excluded)

    bond_force = HarmonicBondForce(
        topology.bonds, topology.bond_r0, topology.bond_k
    )
    angle_force = HarmonicAngleForce(
        topology.angles, topology.angle_theta0, topology.angle_k
    )
    # Standard two-term Gō dihedral: k(1+cos(phi-d1)) + k/2(1+cos(3phi-d3)).
    # Both terms share one force object (quads concatenated) so the
    # dihedral geometry is computed once per step.
    phi_native = topology.dihedral_phi0 + np.pi  # invert the phase relation
    dihedral_force = PeriodicDihedralForce(
        np.concatenate([topology.dihedrals, topology.dihedrals]),
        np.concatenate([topology.dihedral_phi0, 3.0 * phi_native - np.pi]),
        np.concatenate([topology.dihedral_k, 0.5 * topology.dihedral_k]),
        np.concatenate(
            [
                topology.dihedral_mult,
                np.full(len(topology.dihedrals), 3, dtype=int),
            ]
        ),
    )
    go_force = GoContactForce(contacts, contact_r0, epsilon=contact_epsilon)
    wall = ExcludedVolumeForce(repulsive_pairs, sigma=excluded_sigma, epsilon=1.0)

    system = System(
        masses=np.full(n, RESIDUE_MASS),
        topology=topology,
        forces=[bond_force, angle_force, dihedral_force, go_force, wall],
        dim=3,
    )
    return VillinModel(
        system=system,
        native=native,
        go_force=go_force,
        contact_epsilon=contact_epsilon,
        topology=topology,
    )
