"""Time integrators: velocity Verlet, Langevin (BAOAB), Nosé–Hoover.

Each integrator advances a :class:`~repro.md.system.State` in place by
one timestep and returns the forces at the new positions so the caller
never computes forces twice per step.
"""

from __future__ import annotations

import numpy as np

from repro.md.system import State, System
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream, ensure_stream
from repro.util.units import KB


def make_integrator(
    name: str,
    *,
    timestep: float,
    temperature: float = 300.0,
    friction: float = 1.0,
    seed: int = 0,
):
    """Build an integrator by name — the one lookup shared by the MD
    engine, the batched kernel's serial fallback and the
    :meth:`~repro.md.simulation.Simulation.configure` facade.

    ``seed`` follows the engine convention: the Langevin noise stream
    is ``seed + 1`` (stream 0 is reserved for initial velocities), so a
    task propagated here is bit-identical to one run by the engine.
    """
    if name == "langevin":
        return LangevinIntegrator(
            timestep, temperature, friction=friction, rng=seed + 1
        )
    if name == "nose-hoover":
        return NoseHooverIntegrator(timestep, temperature)
    if name == "verlet":
        return VelocityVerletIntegrator(timestep)
    if name == "markov-chain":
        return MarkovChainIntegrator(timestep, rng=seed + 1)
    raise ConfigurationError(f"unknown integrator {name!r}")


class _IntegratorBase:
    """Shared timestep plumbing."""

    def __init__(self, timestep: float) -> None:
        if timestep <= 0:
            raise ConfigurationError(f"timestep must be positive, got {timestep}")
        self.timestep = float(timestep)

    def initial_forces(self, system: System, state: State) -> np.ndarray:
        """Forces at the current positions (used to prime the loop)."""
        return system.energy_forces(state.positions)[1]

    def _advance_clock(self, state: State) -> None:
        state.step += 1
        state.time += self.timestep


class VelocityVerletIntegrator(_IntegratorBase):
    """Symplectic NVE integrator (no thermostat)."""

    def step(
        self, system: System, state: State, forces: np.ndarray
    ) -> np.ndarray:
        """Advance one timestep in place; returns the new forces."""
        dt = self.timestep
        inv_m = 1.0 / system.masses[:, None]
        state.velocities += 0.5 * dt * forces * inv_m
        state.positions += dt * state.velocities
        _, new_forces = system.energy_forces(state.positions)
        state.velocities += 0.5 * dt * new_forces * inv_m
        self._advance_clock(state)
        return new_forces


class LangevinIntegrator(_IntegratorBase):
    """BAOAB-splitting Langevin dynamics (Leimkuhler–Matthews).

    The workhorse thermostat for the coarse-grained folding runs: the
    friction models solvent drag that the paper's explicit TIP3P water
    provided physically.

    Parameters
    ----------
    timestep:
        dt in ps.
    temperature:
        Bath temperature in kelvin.
    friction:
        Collision rate gamma in ps^-1.
    rng:
        Noise stream (int seed or :class:`RandomStream`).
    """

    def __init__(
        self,
        timestep: float,
        temperature: float,
        friction: float = 1.0,
        rng: int | RandomStream | None = 0,
    ) -> None:
        super().__init__(timestep)
        if temperature < 0:
            raise ConfigurationError(f"temperature must be >= 0, got {temperature}")
        if friction <= 0:
            raise ConfigurationError(f"friction must be positive, got {friction}")
        self.temperature = float(temperature)
        self.friction = float(friction)
        self.rng = ensure_stream(rng)
        self._decay = np.exp(-friction * self.timestep)
        self._noise_scale = np.sqrt(1.0 - self._decay * self._decay)

    @property
    def rng_state(self) -> dict:
        """Serialisable noise-generator state (checkpointed so a resumed
        run continues the exact same noise sequence)."""
        return self.rng.generator.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self.rng.generator.bit_generator.state = state

    def step(
        self, system: System, state: State, forces: np.ndarray
    ) -> np.ndarray:
        """Advance one timestep in place; returns the new forces."""
        dt = self.timestep
        inv_m = 1.0 / system.masses[:, None]
        kt = KB * self.temperature
        # B: half kick
        state.velocities += 0.5 * dt * forces * inv_m
        # A: half drift
        state.positions += 0.5 * dt * state.velocities
        # O: Ornstein-Uhlenbeck exact solve
        sigma = np.sqrt(kt / system.masses)[:, None]
        noise = self.rng.generator.standard_normal(state.velocities.shape)
        state.velocities *= self._decay
        state.velocities += self._noise_scale * sigma * noise
        # A: half drift
        state.positions += 0.5 * dt * state.velocities
        # B: half kick with new forces
        _, new_forces = system.energy_forces(state.positions)
        state.velocities += 0.5 * dt * new_forces * inv_m
        self._advance_clock(state)
        return new_forces


class MarkovChainIntegrator(_IntegratorBase):
    """Discrete jumps drawn from a known transition matrix.

    The lab's exact-ground-truth propagator: the system must be a
    :class:`repro.md.models.markov_chain.MarkovChainSystem` (anything
    exposing a chain ``spec``); each step reads the particle's current
    state from its position, draws the successor from the spec's
    matrix, and teleports the particle to the successor's embedding.
    Velocities and forces are untouched — there is no force field.

    Follows the Langevin noise-stream conventions (``rng`` seeded with
    ``task seed + 1``, PCG64 state exposed as ``rng_state``) so
    checkpoints resume the exact same jump sequence.
    """

    def __init__(
        self, timestep: float, rng: int | RandomStream | None = 0
    ) -> None:
        super().__init__(timestep)
        self.rng = ensure_stream(rng)

    @property
    def rng_state(self) -> dict:
        """Serialisable jump-generator state (checkpointed)."""
        return self.rng.generator.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self.rng.generator.bit_generator.state = state

    def step(
        self, system: System, state: State, forces: np.ndarray
    ) -> np.ndarray:
        """Advance one discrete jump in place; forces pass through."""
        spec = getattr(system, "spec", None)
        if spec is None:
            raise ConfigurationError(
                "the markov-chain integrator needs a MarkovChainSystem "
                "(a system with a chain spec)"
            )
        current = spec.state_of(state.positions)
        nxt = spec.sample_next(current, float(self.rng.generator.random()))
        state.positions[...] = spec.position_of(nxt)
        self._advance_clock(state)
        return forces


class NoseHooverIntegrator(_IntegratorBase):
    """Nosé–Hoover thermostat (single chain), the paper's choice.

    Section 3.1: "the temperature was kept at 300 K with a Nosé–Hoover
    thermostat with an oscillation period of 0.5 ps".  The coupling
    mass follows from that period: ``Q = N_df kT tau^2 / (4 pi^2)``.
    Deterministic dynamics, canonical sampling for ergodic systems.
    """

    def __init__(
        self,
        timestep: float,
        temperature: float,
        oscillation_period: float = 0.5,
    ) -> None:
        super().__init__(timestep)
        if temperature <= 0:
            raise ConfigurationError(
                f"temperature must be positive, got {temperature}"
            )
        if oscillation_period <= 0:
            raise ConfigurationError(
                f"oscillation_period must be positive, got {oscillation_period}"
            )
        self.temperature = float(temperature)
        self.tau = float(oscillation_period)
        self._xi = 0.0  # thermostat friction variable

    def _thermostat_mass(self, system: System) -> float:
        n_df = system.dim * system.n_atoms
        return n_df * KB * self.temperature * self.tau**2 / (4.0 * np.pi**2)

    def step(
        self, system: System, state: State, forces: np.ndarray
    ) -> np.ndarray:
        """Advance one timestep in place; returns the new forces."""
        dt = self.timestep
        inv_m = 1.0 / system.masses[:, None]
        n_df = system.dim * system.n_atoms
        kt = KB * self.temperature
        q_mass = self._thermostat_mass(system)

        # Half-update of the thermostat variable, then a scaled kick.
        ke = system.kinetic_energy(state.velocities)
        self._xi += 0.5 * dt * (2.0 * ke - n_df * kt) / q_mass
        scale = np.exp(-self._xi * 0.5 * dt)
        state.velocities = state.velocities * scale + 0.5 * dt * forces * inv_m
        state.positions += dt * state.velocities
        _, new_forces = system.energy_forces(state.positions)
        state.velocities += 0.5 * dt * new_forces * inv_m
        scale = np.exp(-self._xi * 0.5 * dt)
        state.velocities *= scale
        ke = system.kinetic_energy(state.velocities)
        self._xi += 0.5 * dt * (2.0 * ke - n_df * kt) / q_mass
        self._advance_clock(state)
        return new_forces

    @property
    def thermostat_state(self) -> float:
        """The thermostat friction variable (checkpointed)."""
        return self._xi

    @thermostat_state.setter
    def thermostat_state(self, value: float) -> None:
        self._xi = float(value)
