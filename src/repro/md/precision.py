"""The opt-in float32 fast path: casting plus fused force accumulation.

``precision="float32"`` trades bit-reproducibility for speed and
memory: coordinates and velocities are stored in single precision and
every force term accumulates into one preallocated buffer
(:class:`FusedForceEvaluator`) instead of allocating a fresh array per
term per step.  The default ``"float64"`` path is untouched — it keeps
the exact arithmetic the bit-identity suite
(``tests/test_batched_identity.py``) locks down.

Tolerance bounds (enforced by ``tests/test_precision_dispatch.py``):

- **Forces** at a float64-generated configuration agree with the
  float64 forces to a relative RMS error below
  :data:`FLOAT32_FORCE_RTOL` (single precision carries ~7 significant
  digits; pair-sum cancellation costs a few more bits).
- **Energy conservation**: over a short NVE (velocity-Verlet) run the
  float32 total-energy drift stays within
  :data:`FLOAT32_ENERGY_DRIFT_KT` of the float64 drift, in units of
  kT per particle — single precision must not qualitatively degrade
  the integrator.

Because float32 trajectories are *not* bit-reproducible across
machines or library versions, the engine rejects the combination with
anything that contractually requires bit-identity: resuming from a
checkpoint, batched stacks, and worker-side command coalescing
(see :mod:`repro.md.dispatch`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.md.system import State, System
from repro.util.errors import ConfigurationError

#: numpy dtype for each ``precision=`` value.
PRECISION_DTYPES = {"float64": np.float64, "float32": np.float32}

#: Documented bound on the relative RMS force error of the float32
#: path against float64, at a configuration drawn from equilibrium.
FLOAT32_FORCE_RTOL = 1e-4

#: Documented bound on the extra total-energy drift of a float32 NVE
#: run versus its float64 twin, in kT per particle over 500 steps.
FLOAT32_ENERGY_DRIFT_KT = 0.05


class FusedForceEvaluator:
    """A :class:`~repro.md.system.System` view with fused accumulation.

    Wraps a system and evaluates ``energy_forces`` by adding every
    force term in place into a preallocated buffer of the requested
    dtype — no per-term temporaries and no per-call output allocation.
    Two buffers alternate so the previous call's forces (held by the
    integrator across the force refresh inside a step) are never
    overwritten mid-step.

    The returned force array is **reused** on the call after next;
    callers that store forces long-term must copy them.  Integrators
    and :class:`~repro.md.simulation.Simulation` only ever read the
    previous call's array before the next refresh, which the
    double-buffering covers.

    Everything else (masses, topology, energies-only helpers,
    velocity sampling) delegates to the wrapped system.
    """

    def __init__(self, system: System, precision: str = "float32") -> None:
        if precision not in PRECISION_DTYPES:
            raise ConfigurationError(
                f"precision must be one of {tuple(PRECISION_DTYPES)}, "
                f"got {precision!r}"
            )
        self.system = system
        self.precision = precision
        self.dtype = PRECISION_DTYPES[precision]
        shape = (system.n_atoms, system.dim)
        self._buffers = (
            np.zeros(shape, dtype=self.dtype),
            np.zeros(shape, dtype=self.dtype),
        )
        self._flip = 0

    # -- delegation ---------------------------------------------------------

    @property
    def masses(self) -> np.ndarray:
        """Per-atom masses (shared with the wrapped system)."""
        return self.system.masses

    @property
    def topology(self):
        """The wrapped system's topology."""
        return self.system.topology

    @property
    def forces(self):
        """The wrapped system's force terms."""
        return self.system.forces

    @property
    def n_atoms(self) -> int:
        """Number of particles."""
        return self.system.n_atoms

    @property
    def dim(self) -> int:
        """Spatial dimensionality."""
        return self.system.dim

    def kinetic_energy(self, velocities: np.ndarray) -> float:
        """Kinetic energy in kJ/mol (delegated)."""
        return self.system.kinetic_energy(velocities)

    def instantaneous_temperature(self, velocities: np.ndarray) -> float:
        """Kinetic temperature in kelvin (delegated)."""
        return self.system.instantaneous_temperature(velocities)

    def maxwell_boltzmann_velocities(self, temperature, rng) -> np.ndarray:
        """Thermal velocities (delegated; cast by the caller if needed)."""
        return self.system.maxwell_boltzmann_velocities(temperature, rng)

    def __getattr__(self, name: str):
        # Anything not wrapped here (e.g. a Markov-chain system's
        # ``spec``) falls through to the underlying system.
        if name == "system":  # not set yet (unpickling) — no recursion
            raise AttributeError(name)
        return getattr(self.system, name)

    # -- fused evaluation ---------------------------------------------------

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Total energy and forces, accumulated in one reused buffer."""
        buf = self._buffers[self._flip]
        self._flip ^= 1
        buf[...] = 0.0
        total_energy = 0.0
        for force in self.system.forces:
            energy, forces = force.energy_forces(positions)
            total_energy += energy
            buf += forces
        return total_energy, buf

    def potential_energy(self, positions: np.ndarray) -> float:
        """Total potential energy only."""
        return self.energy_forces(positions)[0]


def cast_state(state: State, precision: str) -> State:
    """Copy *state* with coordinates/velocities in the requested dtype."""
    dtype = PRECISION_DTYPES[precision]
    return State(
        np.ascontiguousarray(state.positions, dtype=dtype),
        np.ascontiguousarray(state.velocities, dtype=dtype),
        time=state.time,
        step=state.step,
    )


def apply_precision(
    system: System, state: State, precision: str
) -> Tuple[System, State]:
    """Wire a (system, state) pair for the requested precision.

    ``"float64"`` returns the pair untouched — the default path must
    not change by even one ULP.  ``"float32"`` casts the state and
    wraps the system in a :class:`FusedForceEvaluator` so every force
    evaluation runs through the fused single-precision accumulator.
    """
    if precision == "float64":
        return system, state
    if precision not in PRECISION_DTYPES:
        raise ConfigurationError(
            f"precision must be one of {tuple(PRECISION_DTYPES)}, "
            f"got {precision!r}"
        )
    return FusedForceEvaluator(system, precision), cast_state(state, precision)
