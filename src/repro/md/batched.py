"""Batched ensemble propagation: R replicas of one model per kernel call.

The paper's economics are ensemble throughput — thousands of short
villin trajectories in flight at once (sections 3.1, 4) — but a serial
:class:`~repro.md.simulation.Simulation` pays the full Python/numpy
dispatch overhead per replica per step.  This module stacks R
independent replicas of the *same* :class:`~repro.md.system.System`
into ``(R, N, dim)`` arrays so that overhead is amortised across the
whole ensemble:

- :class:`BatchedSystem` wraps one shared system and evaluates all
  force terms through their ``compute_batch`` paths (with per-replica
  loop fallback, see :mod:`repro.md.forcefield.base`);
- :class:`BatchedLangevinIntegrator` / :class:`BatchedVelocityVerletIntegrator`
  advance the whole stack with vectorised arithmetic while drawing
  noise from *per-replica* RNG streams, so every replica's trajectory
  is bit-identical to the serial integrator seeded the same way;
- :class:`BatchedSimulation` adds per-replica trajectories,
  checkpoints, step targets and an early-exit mask: finished or folded
  replicas are compacted out of the working arrays and stop consuming
  work.

Bit-identity is a hard contract, not an aspiration: checkpoints
(positions, velocities, clock, RNG state) taken from a batched run are
byte-for-byte those of R serial runs with the same seeds, which is what
lets the distribution stack coalesce commands transparently (results
split back per command).  The property suite in
``tests/test_batched_identity.py`` enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.md.forcefield.base import composite_energy_forces_batch
from repro.md.integrators import LangevinIntegrator, VelocityVerletIntegrator
from repro.md.simulation import Checkpoint
from repro.md.system import State, System
from repro.md.trajectory import Trajectory
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.rng import RandomStream, ensure_stream
from repro.util.units import KB


@dataclass
class BatchedState:
    """Dynamic state of R stacked replicas.

    ``positions`` / ``velocities`` are ``(R, N, dim)``; ``times`` and
    ``steps`` are per-replica clocks (replicas resumed from different
    checkpoints need not agree).
    """

    positions: np.ndarray
    velocities: np.ndarray
    times: np.ndarray
    steps: np.ndarray

    @classmethod
    def from_states(cls, states: Sequence[State]) -> "BatchedState":
        """Stack per-replica serial states into one batch."""
        if not states:
            raise ConfigurationError("need at least one replica state")
        shape = states[0].positions.shape
        for state in states:
            if state.positions.shape != shape:
                raise ConfigurationError(
                    "all replica states must share one geometry"
                )
        return cls(
            positions=np.ascontiguousarray(
                np.stack([s.positions for s in states])
            ),
            velocities=np.ascontiguousarray(
                np.stack([s.velocities for s in states])
            ),
            times=np.array([s.time for s in states], dtype=float),
            steps=np.array([s.step for s in states], dtype=np.int64),
        )

    @property
    def n_replicas(self) -> int:
        """Number of stacked replicas."""
        return self.positions.shape[0]

    def replica_state(self, replica: int) -> State:
        """Serial :class:`~repro.md.system.State` view of one replica."""
        return State(
            self.positions[replica].copy(),
            self.velocities[replica].copy(),
            time=float(self.times[replica]),
            step=int(self.steps[replica]),
        )


class BatchedSystem:
    """R replicas of one :class:`~repro.md.system.System` as a unit.

    Shares masses, topology and force terms with the underlying system
    (they are identical across replicas — that is what makes commands
    coalescible) and evaluates forces batch-wise.
    """

    def __init__(self, system: System, n_replicas: int) -> None:
        if n_replicas < 1:
            raise ConfigurationError(
                f"n_replicas must be >= 1, got {n_replicas}"
            )
        self.system = system
        self.n_replicas = int(n_replicas)

    @property
    def masses(self) -> np.ndarray:
        """Per-atom masses, shared by every replica."""
        return self.system.masses

    @property
    def n_atoms(self) -> int:
        """Atoms per replica."""
        return self.system.n_atoms

    @property
    def dim(self) -> int:
        """Spatial dimensionality."""
        return self.system.dim

    def energy_forces(
        self, positions: np.ndarray, replica_ids: Optional[np.ndarray] = None
    ):
        """Per-replica ``(energies, forces)`` over an ``(R, N, dim)`` stack.

        *replica_ids* maps rows of a compacted stack back to original
        replica indices so force terms with per-replica caches (shared
        lazy neighbour lists) stay keyed correctly; ``None`` means row
        ``r`` is replica ``r``.
        """
        if replica_ids is None:
            replica_ids = np.arange(positions.shape[0])
        return composite_energy_forces_batch(
            self.system.forces, positions, replica_ids
        )


class _BatchedIntegratorBase:
    """Shared timestep plumbing for batched integrators."""

    def __init__(self, timestep: float) -> None:
        if timestep <= 0:
            raise ConfigurationError(
                f"timestep must be positive, got {timestep}"
            )
        self.timestep = float(timestep)

    def initial_forces(
        self,
        system: BatchedSystem,
        positions: np.ndarray,
        replica_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Forces at the current positions (primes the step loop)."""
        return system.energy_forces(positions, replica_ids)[1]


class BatchedVelocityVerletIntegrator(_BatchedIntegratorBase):
    """Batched symplectic NVE integrator (no thermostat).

    Arithmetic mirrors
    :class:`~repro.md.integrators.VelocityVerletIntegrator` elementwise
    over the replica axis, so each replica is bit-identical to a serial
    run.
    """

    def step(
        self,
        system: BatchedSystem,
        positions: np.ndarray,
        velocities: np.ndarray,
        forces: np.ndarray,
        replica_ids: np.ndarray,
    ) -> np.ndarray:
        """Advance the (possibly compacted) stack one step in place."""
        dt = self.timestep
        inv_m = 1.0 / system.masses[None, :, None]
        velocities += 0.5 * dt * forces * inv_m
        positions += dt * velocities
        _, new_forces = system.energy_forces(positions, replica_ids)
        velocities += 0.5 * dt * new_forces * inv_m
        return new_forces


class BatchedLangevinIntegrator(_BatchedIntegratorBase):
    """Batched BAOAB Langevin dynamics with per-replica noise streams.

    Each replica owns its own :class:`~repro.util.rng.RandomStream`
    seeded exactly as the serial :class:`~repro.md.integrators.
    LangevinIntegrator` would be, and noise is drawn replica-by-replica
    in ascending replica order — a finished replica stops drawing, just
    as its serial counterpart would stop running.  All other arithmetic
    is vectorised elementwise, so trajectories and checkpointed RNG
    states are bit-identical to R serial runs.
    """

    def __init__(
        self,
        timestep: float,
        temperature: float,
        friction: float = 1.0,
        rngs: Sequence[int | RandomStream] = (),
    ) -> None:
        super().__init__(timestep)
        if temperature < 0:
            raise ConfigurationError(
                f"temperature must be >= 0, got {temperature}"
            )
        if friction <= 0:
            raise ConfigurationError(
                f"friction must be positive, got {friction}"
            )
        self.temperature = float(temperature)
        self.friction = float(friction)
        self.rngs = [ensure_stream(rng) for rng in rngs]
        self._decay = np.exp(-friction * self.timestep)
        self._noise_scale = np.sqrt(1.0 - self._decay * self._decay)

    def rng_state_of(self, replica: int) -> dict:
        """Serialisable noise-generator state for one replica."""
        return self.rngs[replica].generator.bit_generator.state

    def set_rng_state_of(self, replica: int, state: dict) -> None:
        """Restore one replica's noise-generator state."""
        self.rngs[replica].generator.bit_generator.state = state

    def step(
        self,
        system: BatchedSystem,
        positions: np.ndarray,
        velocities: np.ndarray,
        forces: np.ndarray,
        replica_ids: np.ndarray,
    ) -> np.ndarray:
        """Advance the (possibly compacted) stack one step in place.

        *replica_ids* maps rows of the compacted arrays back to their
        original replica index so each row draws from its own stream.
        """
        dt = self.timestep
        inv_m = 1.0 / system.masses[None, :, None]
        kt = KB * self.temperature
        # B: half kick
        velocities += 0.5 * dt * forces * inv_m
        # A: half drift
        positions += 0.5 * dt * velocities
        # O: Ornstein-Uhlenbeck exact solve, per-replica noise streams
        sigma = np.sqrt(kt / system.masses)[None, :, None]
        noise = np.empty_like(velocities)
        shape = velocities.shape[1:]
        for row, replica in enumerate(replica_ids):
            noise[row] = self.rngs[replica].generator.standard_normal(shape)
        velocities *= self._decay
        velocities += self._noise_scale * sigma * noise
        # A: half drift
        positions += 0.5 * dt * velocities
        # B: half kick with new forces
        _, new_forces = system.energy_forces(positions, replica_ids)
        velocities += 0.5 * dt * new_forces * inv_m
        return new_forces


def make_batched_integrator(
    name: str,
    timestep: float,
    temperature: float,
    friction: float,
    seeds: Sequence[int],
) -> Optional[_BatchedIntegratorBase]:
    """Batched integrator for *name*, or ``None`` if only serial exists.

    Seeds follow the engine convention for the serial path (the
    Langevin noise stream of task ``seed`` is ``seed + 1``), so a
    caller handing the same task seeds to both paths gets bit-identical
    dynamics.  Integrators without a batched form (Nosé–Hoover) return
    ``None`` and the engine falls back to a per-replica serial loop.
    """
    if name == "langevin":
        return BatchedLangevinIntegrator(
            timestep,
            temperature,
            friction=friction,
            rngs=[seed + 1 for seed in seeds],
        )
    if name == "verlet":
        return BatchedVelocityVerletIntegrator(timestep)
    return None


class BatchedSimulation:
    """Drives a replica stack, with per-replica reporting and restart.

    The batched analogue of :class:`~repro.md.simulation.Simulation`:
    owns a shared system, a batched integrator and the stacked state,
    records one :class:`~repro.md.trajectory.Trajectory` per replica at
    the shared report interval, and cuts/restores per-replica
    :class:`~repro.md.simulation.Checkpoint` objects that are
    bit-identical to serial ones.

    Early exit: replicas are *active* until they are explicitly
    :meth:`deactivate`-d or the optional ``stop_condition(replica,
    positions) -> bool`` fires at a report point (e.g. "folded: Q >
    0.8").  Inactive replicas are compacted out of the working arrays,
    so a mostly-finished ensemble costs only its stragglers.
    """

    def __init__(
        self,
        system: System,
        integrator: _BatchedIntegratorBase,
        states: Sequence[State],
        report_interval: int = 0,
        stop_condition: Optional[Callable[[int, np.ndarray], bool]] = None,
    ) -> None:
        if report_interval < 0:
            raise ConfigurationError("report_interval must be >= 0")
        self.batch = BatchedState.from_states(states)
        if self.batch.positions.shape[1:] != (system.n_atoms, system.dim):
            raise ConfigurationError(
                f"replica shape {self.batch.positions.shape[1:]} does not "
                f"match system ({system.n_atoms}, {system.dim})"
            )
        self.system = BatchedSystem(system, self.batch.n_replicas)
        self.integrator = integrator
        self.report_interval = int(report_interval)
        self.trajectories = [
            Trajectory() for _ in range(self.batch.n_replicas)
        ]
        self.active = np.ones(self.batch.n_replicas, dtype=bool)
        self.stop_condition = stop_condition
        self._forces: Optional[np.ndarray] = None

    @property
    def n_replicas(self) -> int:
        """Number of stacked replicas."""
        return self.batch.n_replicas

    @property
    def steps(self) -> np.ndarray:
        """Per-replica step counters (do not mutate)."""
        return self.batch.steps

    def deactivate(self, replica: int) -> None:
        """Early-exit *replica*: it stops consuming propagation work."""
        self.active[replica] = False

    def _prime(self) -> None:
        if self._forces is not None:
            return
        self._forces = self.integrator.initial_forces(
            self.system,
            self.batch.positions,
            np.arange(self.n_replicas),
        )
        if self.report_interval:
            # Serial parity: a replica that never runs (deactivated
            # before priming, e.g. restored already at its target)
            # records no initial frame, exactly like an engine run
            # that skips Simulation.run entirely.
            for replica in range(self.n_replicas):
                if self.active[replica] and len(self.trajectories[replica]) == 0:
                    self.trajectories[replica].append(
                        self.batch.positions[replica],
                        self.batch.times[replica],
                    )

    def run_to(self, stop_steps: np.ndarray) -> None:
        """Advance every active replica to its per-replica stop step.

        Replicas past their stop step (or inactive) are compacted out;
        the remainder step together in spans, so the vectorised kernels
        always see a dense stack.  Raises
        :class:`~repro.util.errors.SimulationError` on non-finite
        coordinates, like the serial driver.
        """
        stop = np.asarray(stop_steps, dtype=np.int64)
        if stop.shape != (self.n_replicas,):
            raise ConfigurationError(
                f"stop_steps must have shape ({self.n_replicas},)"
            )
        self._prime()
        interval = self.report_interval
        while True:
            idx = np.flatnonzero(self.active & (self.batch.steps < stop))
            if idx.size == 0:
                return
            # Largest span every compacted replica can take together.
            span = int(np.min(stop[idx] - self.batch.steps[idx]))
            positions = self.batch.positions[idx]
            velocities = self.batch.velocities[idx]
            forces = self._forces[idx]
            steps = self.batch.steps[idx]
            times = self.batch.times[idx]
            for _ in range(span):
                forces = self.integrator.step(
                    self.system, positions, velocities, forces, idx
                )
                steps += 1
                times += self.integrator.timestep
                if interval:
                    due = np.flatnonzero(steps % interval == 0)
                    for row in due:
                        if not np.all(np.isfinite(positions[row])):
                            raise SimulationError(
                                f"non-finite coordinates in replica "
                                f"{int(idx[row])} at step {int(steps[row])}; "
                                "reduce the timestep"
                            )
                        self.trajectories[int(idx[row])].append(
                            positions[row], times[row]
                        )
            self.batch.positions[idx] = positions
            self.batch.velocities[idx] = velocities
            self._forces[idx] = forces
            self.batch.steps[idx] = steps
            self.batch.times[idx] = times
            if self.stop_condition is not None:
                for row, replica in enumerate(idx):
                    if self.stop_condition(int(replica), positions[row]):
                        self.active[replica] = False

    def run(self, n_steps: int) -> None:
        """Advance every active replica by *n_steps* further steps."""
        if n_steps < 0:
            raise ConfigurationError(
                f"n_steps must be >= 0, got {n_steps}"
            )
        self.run_to(self.batch.steps + n_steps)

    # -- energies -----------------------------------------------------------

    def potential_energies(self) -> np.ndarray:
        """Per-replica potential energies (kJ/mol)."""
        return self.system.energy_forces(self.batch.positions)[0]

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self, replica: int) -> Checkpoint:
        """Serial-identical checkpoint of one replica."""
        rng_state = None
        getter = getattr(self.integrator, "rng_state_of", None)
        if getter is not None:
            rng_state = dict(getter(replica))
        return Checkpoint(
            positions=self.batch.positions[replica].copy(),
            velocities=self.batch.velocities[replica].copy(),
            time=float(self.batch.times[replica]),
            step=int(self.batch.steps[replica]),
            thermostat_state=0.0,
            rng_state=rng_state,
        )

    def checkpoints(self) -> List[Checkpoint]:
        """Checkpoints for every replica, in replica order."""
        return [self.checkpoint(r) for r in range(self.n_replicas)]

    def restore(self, replica: int, checkpoint: Checkpoint) -> None:
        """Resume one replica from a (possibly serial) checkpoint."""
        expected = (self.system.n_atoms, self.system.dim)
        if checkpoint.positions.shape != expected:
            raise ConfigurationError(
                "checkpoint geometry does not match this system"
            )
        self.batch.positions[replica] = checkpoint.positions
        self.batch.velocities[replica] = checkpoint.velocities
        self.batch.times[replica] = checkpoint.time
        self.batch.steps[replica] = checkpoint.step
        setter = getattr(self.integrator, "set_rng_state_of", None)
        if checkpoint.rng_state is not None and setter is not None:
            setter(replica, checkpoint.rng_state)
        self._forces = None
