"""Particle systems: topology, system definition and dynamic state."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream
from repro.util.units import KB


@dataclass
class Topology:
    """Connectivity of a molecular system.

    All index arrays are integer ndarrays; parameter arrays are float
    ndarrays aligned with them.  Empty arrays mean "no such terms".

    Attributes
    ----------
    n_atoms:
        Number of particles.
    bonds:
        ``(n_bonds, 2)`` atom index pairs.
    bond_r0 / bond_k:
        Equilibrium lengths (nm) and force constants (kJ/mol/nm^2).
    angles:
        ``(n_angles, 3)`` atom index triples (i-j-k, j is the vertex).
    angle_theta0 / angle_k:
        Equilibrium angles (rad) and force constants (kJ/mol/rad^2).
    dihedrals:
        ``(n_dihedrals, 4)`` atom index quadruples.
    dihedral_phi0 / dihedral_k / dihedral_mult:
        Phase (rad), force constant (kJ/mol) and multiplicity of
        periodic dihedral terms.
    exclusions:
        ``(n_excl, 2)`` pairs excluded from nonbonded interactions.
    names:
        Optional atom names (for reports).
    """

    n_atoms: int
    bonds: np.ndarray = field(default_factory=lambda: np.zeros((0, 2), dtype=int))
    bond_r0: np.ndarray = field(default_factory=lambda: np.zeros(0))
    bond_k: np.ndarray = field(default_factory=lambda: np.zeros(0))
    angles: np.ndarray = field(default_factory=lambda: np.zeros((0, 3), dtype=int))
    angle_theta0: np.ndarray = field(default_factory=lambda: np.zeros(0))
    angle_k: np.ndarray = field(default_factory=lambda: np.zeros(0))
    dihedrals: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 4), dtype=int)
    )
    dihedral_phi0: np.ndarray = field(default_factory=lambda: np.zeros(0))
    dihedral_k: np.ndarray = field(default_factory=lambda: np.zeros(0))
    dihedral_mult: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=int)
    )
    exclusions: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 2), dtype=int)
    )
    names: Optional[List[str]] = None

    def __post_init__(self) -> None:
        self.bonds = np.asarray(self.bonds, dtype=int).reshape(-1, 2)
        self.angles = np.asarray(self.angles, dtype=int).reshape(-1, 3)
        self.dihedrals = np.asarray(self.dihedrals, dtype=int).reshape(-1, 4)
        self.exclusions = np.asarray(self.exclusions, dtype=int).reshape(-1, 2)
        for arr_name in ("bond_r0", "bond_k", "angle_theta0", "angle_k",
                         "dihedral_phi0", "dihedral_k"):
            setattr(self, arr_name, np.asarray(getattr(self, arr_name), dtype=float))
        self.dihedral_mult = np.asarray(self.dihedral_mult, dtype=int)
        self._validate()

    def _validate(self) -> None:
        if self.n_atoms <= 0:
            raise ConfigurationError(f"n_atoms must be positive, got {self.n_atoms}")
        for name, idx in (
            ("bonds", self.bonds),
            ("angles", self.angles),
            ("dihedrals", self.dihedrals),
            ("exclusions", self.exclusions),
        ):
            if idx.size and (idx.min() < 0 or idx.max() >= self.n_atoms):
                raise ConfigurationError(f"{name} reference atoms out of range")
        if len(self.bonds) != len(self.bond_r0) or len(self.bonds) != len(self.bond_k):
            raise ConfigurationError("bond parameter arrays misaligned")
        if len(self.angles) != len(self.angle_theta0) or len(self.angles) != len(
            self.angle_k
        ):
            raise ConfigurationError("angle parameter arrays misaligned")
        if not (
            len(self.dihedrals)
            == len(self.dihedral_phi0)
            == len(self.dihedral_k)
            == len(self.dihedral_mult)
        ):
            raise ConfigurationError("dihedral parameter arrays misaligned")

    @property
    def n_bonds(self) -> int:
        """Number of bond terms."""
        return len(self.bonds)

    def all_excluded_pairs(self) -> set:
        """Set of (i, j) pairs (i<j) excluded from nonbonded interactions.

        Bonds and angle 1-3 pairs are always excluded, matching standard
        force-field conventions; explicit exclusions are added on top.
        """
        pairs = set()
        for i, j in self.bonds:
            pairs.add((min(i, j), max(i, j)))
        for i, _, k in self.angles:
            pairs.add((min(i, k), max(i, k)))
        for i, j in self.exclusions:
            pairs.add((min(i, j), max(i, j)))
        return pairs


@dataclass
class State:
    """Dynamic state of a simulation: coordinates, velocities, clock."""

    positions: np.ndarray
    velocities: np.ndarray
    time: float = 0.0
    step: int = 0

    def __post_init__(self) -> None:
        # The default path is float64; float32 arrays pass through
        # unchanged so the opt-in fast path (repro.md.precision) keeps
        # its dtype across State round-trips.
        self.positions = self._coerce(self.positions)
        self.velocities = self._coerce(self.velocities)
        if self.positions.shape != self.velocities.shape:
            raise ConfigurationError(
                f"positions {self.positions.shape} and velocities "
                f"{self.velocities.shape} shapes differ"
            )

    @staticmethod
    def _coerce(array) -> np.ndarray:
        if isinstance(array, np.ndarray) and array.dtype == np.float32:
            return np.ascontiguousarray(array)
        return np.ascontiguousarray(array, dtype=float)

    def copy(self) -> "State":
        """Deep copy (positions and velocities are duplicated)."""
        return State(
            self.positions.copy(), self.velocities.copy(), self.time, self.step
        )


class System:
    """A particle system: masses, topology, dimensionality and forces.

    Parameters
    ----------
    masses:
        Per-particle masses in amu, shape ``(n_atoms,)``.
    topology:
        The bonded connectivity.  Optional for unstructured systems
        (e.g. particles on a model potential surface).
    forces:
        Sequence of force objects, each implementing
        ``energy_forces(positions) -> (energy, forces)``.
    dim:
        Spatial dimensionality (3 for molecular systems, 2 for model
        surfaces such as Müller–Brown).
    """

    def __init__(
        self,
        masses: Sequence[float],
        topology: Optional[Topology] = None,
        forces: Optional[Sequence] = None,
        dim: int = 3,
    ) -> None:
        self.masses = np.ascontiguousarray(masses, dtype=float)
        if self.masses.ndim != 1 or len(self.masses) == 0:
            raise ConfigurationError("masses must be a non-empty 1-D sequence")
        if np.any(self.masses <= 0):
            raise ConfigurationError("all masses must be positive")
        if dim not in (1, 2, 3):
            raise ConfigurationError(f"dim must be 1, 2 or 3, got {dim}")
        if topology is not None and topology.n_atoms != len(self.masses):
            raise ConfigurationError(
                f"topology has {topology.n_atoms} atoms but masses has "
                f"{len(self.masses)}"
            )
        self.topology = topology
        self.forces = list(forces) if forces is not None else []
        self.dim = dim

    @property
    def n_atoms(self) -> int:
        """Number of particles."""
        return len(self.masses)

    def add_force(self, force) -> None:
        """Append a force term."""
        self.forces.append(force)

    def energy_forces(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        """Total potential energy and forces at *positions*.

        Sums every registered force term.  Forces accumulate into a
        single preallocated buffer — no per-term temporaries survive.
        """
        total_energy = 0.0
        total_forces = np.zeros_like(positions)
        for force in self.forces:
            energy, forces = force.energy_forces(positions)
            total_energy += energy
            total_forces += forces
        return total_energy, total_forces

    def potential_energy(self, positions: np.ndarray) -> float:
        """Total potential energy only."""
        return self.energy_forces(positions)[0]

    def kinetic_energy(self, velocities: np.ndarray) -> float:
        """Kinetic energy of *velocities* in kJ/mol."""
        return 0.5 * float(np.sum(self.masses * np.sum(velocities**2, axis=1)))

    def instantaneous_temperature(self, velocities: np.ndarray) -> float:
        """Kinetic temperature in kelvin (no constraint correction)."""
        dof = self.dim * self.n_atoms
        return 2.0 * self.kinetic_energy(velocities) / (dof * KB)

    def maxwell_boltzmann_velocities(
        self, temperature: float, rng: RandomStream
    ) -> np.ndarray:
        """Draw velocities from the Maxwell–Boltzmann distribution.

        The paper's villin runs draw initial velocities this way
        (section 3.1).  The centre-of-mass motion is removed.
        """
        sigma = np.sqrt(KB * temperature / self.masses)
        velocities = rng.normal(size=(self.n_atoms, self.dim)) * sigma[:, None]
        com_velocity = np.average(velocities, axis=0, weights=self.masses)
        velocities -= com_velocity
        return velocities
