"""Simulated authenticated overlay network.

The paper's Copernicus deployment is a small, relatively static overlay
of servers speaking SSL over high-latency links, with workers and user
clients attached to their nearest server (Fig. 1).  This subpackage
reproduces that substrate in-process:

* :mod:`repro.net.auth` — public-key trust: every endpoint owns a
  keypair and only communicates with peers whose keys it has imported
  (the paper's "exchange of public keys ... set of trusted keys").
* :mod:`repro.net.transport` — the message fabric: named endpoints,
  point-to-point links with latency/bandwidth parameters, multi-hop
  routing along the overlay, and per-link traffic accounting that the
  bandwidth analyses read out.
* :mod:`repro.net.protocol` — typed request/response messages.
"""

from repro.net.auth import KeyPair, TrustStore
from repro.net.circuit import BreakerPolicy, BreakerState, CircuitBreaker
from repro.net.protocol import Message, MessageType
from repro.net.sharding import HashRing, ShardRouter, stable_hash
from repro.net.transport import Endpoint, Link, Network

__all__ = [
    "KeyPair",
    "TrustStore",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "HashRing",
    "ShardRouter",
    "stable_hash",
    "Message",
    "MessageType",
    "Endpoint",
    "Link",
    "Network",
]

# repro.net.topology is imported lazily by callers that need the
# pre-built deployments; importing it here would create a cycle with
# repro.server/repro.worker.
