"""Typed request/response messages for the overlay network."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List


class MessageType(enum.Enum):
    """Every request kind spoken on the overlay."""

    #: Worker presents its platform/resources/executables to its server.
    WORKER_ANNOUNCE = "worker_announce"
    #: Worker asks for a workload matching its capabilities.
    WORKLOAD_REQUEST = "workload_request"
    #: Server hands a workload (list of commands) to a worker.
    WORKLOAD_ASSIGN = "workload_assign"
    #: Worker returns finished (or checkpointed) command output.
    COMMAND_RESULT = "command_result"
    #: Worker liveness signal; never forwarded past the nearest server.
    HEARTBEAT = "heartbeat"
    #: Client submits a new project to a server.
    PROJECT_SUBMIT = "project_submit"
    #: Client queries project status.
    PROJECT_STATUS = "project_status"
    #: Server-to-server transfer of command results toward the
    #: project's origin server.
    RESULT_FORWARD = "result_forward"
    #: Server-to-server: ask whether peers hold queued commands.
    COMMAND_FETCH = "command_fetch"
    #: Generic acknowledgement / response wrapper.
    RESPONSE = "response"


@dataclass
class Message:
    """One request travelling the overlay.

    Attributes
    ----------
    type:
        The request kind.
    src / dst:
        Endpoint names.  ``dst`` may be a specific server or the
        wildcard ``"*"`` meaning "first server with available
        commands" (the paper's routing mode for workload requests).
    payload:
        Wire-format body (see :mod:`repro.util.serialization`).
    headers:
        Out-of-band metadata riding with the request — notably the
        distributed-tracing context (:mod:`repro.obs.trace` writes
        ``trace_id``/``span_id`` here), kept separate from the payload
        so handlers never confuse telemetry with application data.
    hops:
        Endpoint names traversed so far (appended by the transport).
    attempt:
        0-based delivery attempt; > 0 marks a retransmission, so
        receivers with side effects can deduplicate.
    """

    type: MessageType
    src: str
    dst: str
    payload: Dict[str, Any] = field(default_factory=dict)
    headers: Dict[str, Any] = field(default_factory=dict)
    hops: List[str] = field(default_factory=list)
    attempt: int = 0

    def reply(self, payload: Dict[str, Any]) -> "Message":
        """Build the response message for this request.

        The request's headers travel back so a trace context survives
        the round trip.
        """
        return Message(
            type=MessageType.RESPONSE,
            src=self.dst,
            dst=self.src,
            payload=payload,
            headers=dict(self.headers),
        )


#: Wildcard destination: route to the first server with available commands.
ANY_SERVER = "*"
