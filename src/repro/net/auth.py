"""Key-based trust between overlay endpoints.

Real Copernicus servers authenticate with SSL certificates exchanged by
the operator.  The simulation keeps the trust *semantics* — a link only
carries traffic between endpoints that have imported each other's
public keys — without actual cryptography: a keypair is an opaque
random token pair, which is exactly as much structure as the framework
logic needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.util.errors import AuthenticationError
from repro.util.rng import RandomStream


@dataclass(frozen=True)
class KeyPair:
    """An endpoint identity: public fingerprint plus private secret."""

    public: str
    _private: str

    @classmethod
    def generate(cls, rng: RandomStream, owner: str = "") -> "KeyPair":
        """Create a fresh keypair (deterministic given the stream)."""
        bits = rng.integers(0, 2**63 - 1, size=2)
        return cls(
            public=f"pub-{owner}-{bits[0]:016x}",
            _private=f"prv-{owner}-{bits[1]:016x}",
        )

    def proves(self, challenge: str) -> str:
        """Sign a challenge (simulated: private-keyed tag)."""
        return f"{self._private}:{challenge}"


class TrustStore:
    """The set of public keys an endpoint accepts connections from."""

    def __init__(self) -> None:
        self._trusted: Set[str] = set()

    def add(self, public_key: str) -> None:
        """Import a peer's public key."""
        self._trusted.add(public_key)

    def remove(self, public_key: str) -> None:
        """Revoke a previously imported key."""
        self._trusted.discard(public_key)

    def is_trusted(self, public_key: str) -> bool:
        """Whether a key has been imported."""
        return public_key in self._trusted

    def __len__(self) -> int:
        return len(self._trusted)


def mutual_handshake(
    a_key: KeyPair, a_store: TrustStore, b_key: KeyPair, b_store: TrustStore
) -> None:
    """Verify both sides trust each other, as at link establishment.

    Raises
    ------
    AuthenticationError
        If either side does not trust the other's public key.
    """
    if not a_store.is_trusted(b_key.public):
        raise AuthenticationError(
            f"local endpoint does not trust peer key {b_key.public!r}"
        )
    if not b_store.is_trusted(a_key.public):
        raise AuthenticationError(
            f"peer does not trust local key {a_key.public!r}"
        )


def exchange_keys(
    a_key: KeyPair, a_store: TrustStore, b_key: KeyPair, b_store: TrustStore
) -> None:
    """Operator-initiated key exchange establishing mutual trust."""
    a_store.add(b_key.public)
    b_store.add(a_key.public)
