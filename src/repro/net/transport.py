"""The overlay message fabric: endpoints, links, routing, accounting.

Endpoints register with a :class:`Network` and connect through
:class:`Link` objects carrying latency and bandwidth parameters.  A
message to a named endpoint is routed along the overlay's shortest
path (by latency); a message to :data:`~repro.net.protocol.ANY_SERVER`
walks outward until some endpoint accepts it — the paper's "routing of
requests both to specific servers, and to the first server with
available commands".

Delivery is synchronous (the reply returns to the caller), but every
link records the bytes and virtual seconds it carried, so bandwidth
analyses can read real traffic numbers off a functional run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.auth import KeyPair, TrustStore, exchange_keys, mutual_handshake
from repro.net.circuit import BreakerPolicy, BreakerState, CircuitBreaker
from repro.net.protocol import ANY_SERVER, Message, MessageType
from repro.obs import Observability
from repro.util.errors import (
    CommunicationError,
    CommunicationTimeout,
    FencedError,
    TransientCommunicationError,
    WildcardUnclaimedError,
)
from repro.util.rng import RandomStream
from repro.util.serialization import message_size


@dataclass
class Link:
    """A bidirectional overlay edge with latency/bandwidth accounting."""

    a: str
    b: str
    latency: float = 0.01  # seconds per traversal
    bandwidth: float = 100e6  # bytes per second
    bytes_carried: int = 0
    messages_carried: int = 0
    busy_seconds: float = 0.0

    def other(self, name: str) -> str:
        """The far end of this link."""
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise CommunicationError(f"{name!r} is not on link {self.a}<->{self.b}")

    def record(self, n_bytes: int) -> float:
        """Account one traversal; returns the virtual transfer time."""
        self.bytes_carried += n_bytes
        self.messages_carried += 1
        duration = self.latency + n_bytes / self.bandwidth
        self.busy_seconds += duration
        return duration


@dataclass
class RetryPolicy:
    """Bounded-retry schedule with exponential backoff (virtual seconds).

    Attempt *k* (0-based) that fails transiently waits
    ``backoff_base * backoff_factor ** k`` virtual seconds before the
    next try; after ``max_retries`` retries the transient error
    propagates to the caller.
    """

    max_retries: int = 3
    backoff_base: float = 0.5
    backoff_factor: float = 2.0

    def backoff(self, attempt: int) -> float:
        """Virtual seconds to wait after failed attempt *attempt*."""
        return self.backoff_base * self.backoff_factor ** attempt


class Endpoint:
    """A named participant on the overlay (server, worker or client).

    Subclasses (or composition users) provide ``handler(message) ->
    payload | None``; returning ``None`` from a wildcard-routed message
    means "not mine, keep walking".
    """

    def __init__(
        self,
        name: str,
        network: "Network",
        handler: Optional[Callable[[Message], Optional[dict]]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
    ) -> None:
        self.name = name
        self.network = network
        #: The deployment's shared observability hub (metrics + tracer).
        self.obs = network.obs
        self.keypair = KeyPair.generate(network.rng, owner=name)
        self.trust = TrustStore()
        self.retry_policy = retry_policy or RetryPolicy()
        #: Retry accounting, surfaced through ``Network.traffic_report``.
        self.send_retries = 0
        self.send_failures = 0
        self.send_timeouts = 0
        self.backoff_seconds = 0.0
        #: Latest virtual timestamp this endpoint has observed; the
        #: time base for its circuit breakers (servers advance it from
        #: message/liveness-check timestamps).
        self.clock = 0.0
        #: Per-peer circuit breakers, created lazily on wildcard walks.
        self.breaker_policy = breaker_policy or BreakerPolicy()
        self.peer_breakers: Dict[str, CircuitBreaker] = {}
        #: Extra breaker-transition observers (beyond the metrics
        #: counter): ``hook(breaker, state)``.  The shard monitor
        #: registers here so breaker-open evidence toward a shard
        #: feeds its liveness score.
        self.breaker_hooks: List[
            Callable[[CircuitBreaker, BreakerState], None]
        ] = []
        self._handler = handler
        network._register(self)

    def breaker_for(self, peer: str) -> CircuitBreaker:
        """This endpoint's circuit breaker toward *peer* (lazily built)."""
        breaker = self.peer_breakers.get(peer)
        if breaker is None:
            breaker = CircuitBreaker(peer, self.breaker_policy)
            breaker.observer = self._on_breaker_transition
            self.peer_breakers[peer] = breaker
        return breaker

    def _on_breaker_transition(
        self, breaker: CircuitBreaker, state: BreakerState
    ) -> None:
        """Fold breaker state changes into the metrics registry."""
        self.obs.metrics.inc(
            "repro_net_breaker_transitions_total",
            help="Circuit-breaker state transitions per endpoint/peer.",
            endpoint=self.name,
            peer=breaker.peer,
            to=state.value,
        )
        for hook in self.breaker_hooks:
            hook(breaker, state)

    def handle(self, message: Message) -> Optional[dict]:
        """Process an inbound request; override or pass ``handler=``."""
        if self._handler is None:
            raise CommunicationError(
                f"endpoint {self.name!r} has no message handler"
            )
        return self._handler(message)

    def send(
        self,
        dst: str,
        type: MessageType,
        payload: Optional[dict] = None,
        timeout: Optional[float] = None,
        headers: Optional[dict] = None,
    ) -> dict:
        """Send a request and return the response payload.

        Transient failures (dropped messages, partitioned links,
        crashed peers — :class:`TransientCommunicationError`) are
        retried up to ``retry_policy.max_retries`` times with
        exponential backoff charged to the network's virtual clock.
        Permanent routing errors raise immediately.

        ``timeout`` bounds the *virtual* transfer seconds of one
        delivery attempt; exceeding it raises
        :class:`CommunicationTimeout` (itself transient, so it is
        retried within the same budget).  Note that a timed-out
        request may still have reached its destination — receivers
        must treat retried messages idempotently.

        ``headers`` carries out-of-band metadata (e.g. a trace
        context); retransmissions re-send the same headers.
        """
        attempt = 0
        metrics = self.obs.metrics
        while True:
            message = Message(
                type=type, src=self.name, dst=dst, payload=payload or {},
                headers=dict(headers) if headers else {},
                attempt=attempt,
            )
            clock_before = self.network.total_transfer_seconds
            try:
                response = self.network.deliver(message)
                elapsed = self.network.total_transfer_seconds - clock_before
                if timeout is not None and elapsed > timeout:
                    self.send_timeouts += 1
                    self.network.timeouts_total += 1
                    metrics.inc(
                        "repro_net_send_timeouts_total",
                        help="Per-message virtual-time timeouts by sender.",
                        endpoint=self.name,
                    )
                    raise CommunicationTimeout(
                        f"{self.name!r} -> {dst!r} took {elapsed:.3f}s virtual "
                        f"(timeout {timeout:.3f}s)"
                    )
                return response
            except FencedError:
                # an authoritative ownership verdict, not a transport
                # fault: the epoch only moves forward, so retrying
                # cannot change the answer — permanent and quiet, like
                # WildcardUnclaimedError in the peer-fetch triage
                raise
            except TransientCommunicationError:
                if attempt >= self.retry_policy.max_retries:
                    self.send_failures += 1
                    metrics.inc(
                        "repro_net_send_failures_total",
                        help="Sends abandoned after exhausting retries.",
                        endpoint=self.name,
                    )
                    raise
                wait = self.retry_policy.backoff(attempt)
                attempt += 1
                self.send_retries += 1
                self.backoff_seconds += wait
                metrics.inc(
                    "repro_net_send_retries_total",
                    help="Transient-failure retries by sender.",
                    endpoint=self.name,
                )
                self.network.note_backoff(wait)


#: Wire cost of passing a data *reference* instead of the data itself
#: when both ends see the same filesystem (paper section 2.3).
SHARED_FS_REF_BYTES = 256


class Network:
    """The overlay graph plus its delivery engine."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = RandomStream(seed)
        #: The deployment-wide observability hub; every endpoint built
        #: on this network shares it (``endpoint.obs``).
        self.obs = Observability()
        self._endpoints: Dict[str, Endpoint] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {}
        #: filesystem name -> set of endpoint names mounting it
        self._filesystems: Dict[str, set] = {}
        #: Virtual clock accumulating transfer time of the longest path
        #: seen; useful for latency reports.
        self.total_transfer_seconds = 0.0
        self.messages_delivered = 0
        #: Bytes saved by shared-filesystem data passing.
        self.bytes_saved_by_shared_fs = 0
        #: Aggregate retry accounting (see :meth:`Endpoint.send`).
        self.retries_total = 0
        self.timeouts_total = 0
        self.retry_backoff_seconds = 0.0

    def note_backoff(self, seconds: float) -> None:
        """Charge one retry backoff wait to the virtual clock."""
        self.retries_total += 1
        self.retry_backoff_seconds += seconds
        self.total_transfer_seconds += seconds
        self.obs.metrics.inc(
            "repro_net_backoff_seconds_total",
            amount=seconds,
            help="Virtual seconds charged to retry backoff waits.",
        )

    # -- construction ----------------------------------------------------

    def _register(self, endpoint: Endpoint) -> None:
        if endpoint.name in self._endpoints:
            raise CommunicationError(f"duplicate endpoint name {endpoint.name!r}")
        self._endpoints[endpoint.name] = endpoint
        self._adjacency[endpoint.name] = []

    def endpoint(self, name: str) -> Endpoint:
        """Look up an endpoint by name."""
        try:
            return self._endpoints[name]
        except KeyError:
            raise CommunicationError(f"unknown endpoint {name!r}") from None

    def endpoints(self) -> List[str]:
        """All registered endpoint names."""
        return list(self._endpoints)

    def connect(
        self,
        a: str,
        b: str,
        latency: float = 0.01,
        bandwidth: float = 100e6,
    ) -> Link:
        """Create a trusted link between two endpoints (key exchange included)."""
        if a == b:
            raise CommunicationError("cannot link an endpoint to itself")
        ep_a, ep_b = self.endpoint(a), self.endpoint(b)
        key = (min(a, b), max(a, b))
        if key in self._links:
            raise CommunicationError(f"link {a}<->{b} already exists")
        exchange_keys(ep_a.keypair, ep_a.trust, ep_b.keypair, ep_b.trust)
        link = Link(a=key[0], b=key[1], latency=latency, bandwidth=bandwidth)
        self._links[key] = link
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        return link

    def attach_filesystem(self, fs_name: str, endpoints: List[str]) -> None:
        """Declare that *endpoints* all mount the filesystem *fs_name*.

        Traffic between two endpoints sharing a filesystem passes a
        small data reference instead of the payload — the paper's
        shared-filesystem detection ("Copernicus can detect and take
        advantage of shared file systems to reduce communication").
        """
        for name in endpoints:
            self.endpoint(name)  # validates existence
        self._filesystems.setdefault(fs_name, set()).update(endpoints)

    def share_filesystem(self, a: str, b: str) -> bool:
        """Whether two endpoints mount a common filesystem."""
        return any(
            a in members and b in members
            for members in self._filesystems.values()
        )

    def link(self, a: str, b: str) -> Link:
        """The link between *a* and *b*."""
        try:
            return self._links[(min(a, b), max(a, b))]
        except KeyError:
            raise CommunicationError(f"no link {a}<->{b}") from None

    def links(self) -> List[Link]:
        """All links."""
        return list(self._links.values())

    # -- routing -----------------------------------------------------------

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """Lowest-latency path between two endpoints (Dijkstra).

        Raises
        ------
        CommunicationError
            If no path exists.
        """
        import heapq

        if src not in self._endpoints or dst not in self._endpoints:
            raise CommunicationError(f"unknown endpoint in {src!r} -> {dst!r}")
        dist = {src: 0.0}
        prev: Dict[str, str] = {}
        heap = [(0.0, src)]
        seen = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in seen:
                continue
            seen.add(node)
            if node == dst:
                break
            for nbr in self._adjacency[node]:
                nd = d + self.link(node, nbr).latency
                if nd < dist.get(nbr, float("inf")):
                    dist[nbr] = nd
                    prev[nbr] = node
                    heapq.heappush(heap, (nd, nbr))
        if dst not in dist:
            raise CommunicationError(f"no route from {src!r} to {dst!r}")
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        return path[::-1]

    def _traverse(self, message: Message, path: List[str]) -> None:
        """Account a message over every hop, verifying trust per link."""
        size = message_size(message.payload)
        if len(path) >= 2 and self.share_filesystem(path[0], path[-1]):
            # payload stays on disk; only a reference crosses the wire
            if size > SHARED_FS_REF_BYTES:
                self.bytes_saved_by_shared_fs += size - SHARED_FS_REF_BYTES
                size = SHARED_FS_REF_BYTES
        transfer_seconds = 0.0
        for hop_src, hop_dst in zip(path[:-1], path[1:]):
            ep_s, ep_d = self.endpoint(hop_src), self.endpoint(hop_dst)
            mutual_handshake(ep_s.keypair, ep_s.trust, ep_d.keypair, ep_d.trust)
            duration = self.link(hop_src, hop_dst).record(size)
            self.total_transfer_seconds += duration
            transfer_seconds += duration
            message.hops.append(hop_dst)
        if len(path) >= 2:
            self.obs.metrics.inc(
                "repro_net_bytes_total",
                amount=size * (len(path) - 1),
                help="Bytes carried across overlay links.",
            )
            self.obs.metrics.observe(
                "repro_net_transfer_seconds",
                transfer_seconds,
                help="Virtual seconds per message traversal.",
            )

    # -- delivery ------------------------------------------------------------

    def deliver(self, message: Message) -> dict:
        """Route *message* and return the handler's response payload.

        Wildcard destination (:data:`ANY_SERVER`) walks the overlay
        breadth-first from the source until an endpoint's handler
        accepts (returns non-``None``).
        """
        self.messages_delivered += 1
        self.obs.metrics.inc(
            "repro_net_messages_total",
            help="Messages delivered over the overlay, by request kind.",
            type=message.type.value,
        )
        if message.dst == ANY_SERVER:
            return self._deliver_any(message)
        path = self.shortest_path(message.src, message.dst)
        self._traverse(message, path)
        response = self.endpoint(message.dst).handle(message)
        if response is None:
            response = {}
        # account the response travelling back
        back = Message(
            type=MessageType.RESPONSE,
            src=message.dst,
            dst=message.src,
            payload=response,
        )
        self._traverse(back, path[::-1])
        return response

    def _wildcard_candidates(self, src: str) -> List[str]:
        """Breadth-first probe order for wildcard routing (deterministic:
        nodes appear in link-creation order, nearest hop count first)."""
        visited = {src}
        frontier = list(self._adjacency[src])
        order: List[str] = []
        while frontier:
            node = frontier.pop(0)
            if node in visited:
                continue
            visited.add(node)
            order.append(node)
            frontier.extend(
                n for n in self._adjacency[node] if n not in visited
            )
        return order

    def _candidate_fault(self, probe: Message, candidate: str) -> None:
        """Hook: raise to fail one wildcard probe (chaos injection)."""

    def _deliver_any(self, message: Message) -> dict:
        """Walk the wildcard candidates, tolerating sick peers.

        A candidate that fails transiently (partitioned path, injected
        fault) no longer aborts the whole walk: its failure feeds the
        *sender's* circuit breaker toward that peer and the walk moves
        on.  While a breaker is open its peer is skipped outright —
        one flaky relay stops stalling every workload request.  If the
        walk ends with no acceptor, a transient failure seen along the
        way propagates (so ``Endpoint.send`` retries); otherwise the
        walk was genuinely unclaimed.
        """
        sender = self.endpoint(message.src)
        last_transient: Optional[TransientCommunicationError] = None
        for candidate in self._wildcard_candidates(message.src):
            breaker = sender.breaker_for(candidate)
            if not breaker.allow(sender.clock):
                continue
            probe = Message(
                type=message.type,
                src=message.src,
                dst=candidate,
                payload=message.payload,
                headers=dict(message.headers),
            )
            try:
                path = self.shortest_path(message.src, candidate)
                self._candidate_fault(probe, candidate)
                self._traverse(probe, path)
                response = self.endpoint(candidate).handle(probe)
            except FencedError:
                # a fencing rejection is the *peer's* authoritative
                # verdict on a stale epoch, not evidence the peer is
                # unhealthy: it must never feed the breaker or count
                # as a probe failure
                raise
            except TransientCommunicationError as exc:
                breaker.record_failure(sender.clock)
                self.obs.metrics.inc(
                    "repro_net_wildcard_probe_failures_total",
                    help="Wildcard-walk probes that failed transiently.",
                    endpoint=message.src,
                    peer=candidate,
                )
                last_transient = exc
                continue
            breaker.record_success(sender.clock)
            if response is not None:
                back = Message(
                    type=MessageType.RESPONSE,
                    src=candidate,
                    dst=message.src,
                    payload=response,
                )
                self._traverse(back, path[::-1])
                return response
        if last_transient is not None:
            raise last_transient
        raise WildcardUnclaimedError(
            f"no endpoint accepted wildcard {message.type} from {message.src!r}"
        )

    # -- reporting ------------------------------------------------------------

    def traffic_report(self) -> List[dict]:
        """Per-link traffic summary.

        Endpoints that retried, timed out or gave up on sends append
        ``endpoint:<name>`` rows carrying their retry accounting, so a
        chaos run's recovery work shows up next to the raw traffic.
        """
        report = [
            {
                "link": f"{link.a}<->{link.b}",
                "bytes": link.bytes_carried,
                "messages": link.messages_carried,
                "busy_seconds": link.busy_seconds,
            }
            for link in self.links()
        ]
        for name, endpoint in self._endpoints.items():
            if endpoint.send_retries or endpoint.send_failures or endpoint.send_timeouts:
                report.append(
                    {
                        "link": f"endpoint:{name}",
                        "retries": endpoint.send_retries,
                        "failures": endpoint.send_failures,
                        "timeouts": endpoint.send_timeouts,
                        "backoff_seconds": endpoint.backoff_seconds,
                    }
                )
            for peer, breaker in sorted(endpoint.peer_breakers.items()):
                if breaker.opens or breaker.skips:
                    report.append(
                        {
                            "link": f"breaker:{name}->{peer}",
                            "state": breaker.state.value,
                            "opens": breaker.opens,
                            "closes": breaker.closes,
                            "skips": breaker.skips,
                        }
                    )
        return report

    def total_bytes(self) -> int:
        """Total bytes carried across all links."""
        return sum(link.bytes_carried for link in self.links())
