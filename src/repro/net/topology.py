"""Pre-built overlay topologies.

Deployment recipes from the paper: a single server with local workers
(a workstation), a cluster with a head-node relay, and the full Fig. 1
multi-site layout (two project servers behind a gateway, three clusters
— one of them intercontinental).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.net.transport import Network
from repro.server.server import CopernicusServer
from repro.util.errors import ConfigurationError
from repro.worker.platform import SMPPlatform
from repro.worker.worker import Worker

#: Latency presets (seconds) for common link classes.
LATENCY_LOCAL = 0.0005       # node to head-node
LATENCY_CAMPUS = 0.005       # within a data centre
LATENCY_WAN = 0.03           # between nearby sites
LATENCY_INTERCONTINENTAL = 0.15


@dataclass
class Deployment:
    """A constructed overlay plus handles to its parts."""

    network: Network
    project_servers: List[CopernicusServer]
    relay_servers: List[CopernicusServer] = field(default_factory=list)
    workers: List[Worker] = field(default_factory=list)

    @property
    def project_server(self) -> CopernicusServer:
        """The first (often only) project server."""
        return self.project_servers[0]

    def announce_all(self, now: float = 0.0) -> None:
        """Announce every worker to its server."""
        for worker in self.workers:
            worker.announce(now)


def workstation(
    n_workers: int = 1,
    cores_per_worker: int = 2,
    seed: int = 0,
    heartbeat_interval: float = 120.0,
) -> Deployment:
    """A single server with directly attached workers."""
    if n_workers < 1:
        raise ConfigurationError("need at least one worker")
    net = Network(seed=seed)
    server = CopernicusServer("server", net, heartbeat_interval=heartbeat_interval)
    workers = []
    for k in range(n_workers):
        worker = Worker(
            f"w{k}", net, server="server",
            platform=SMPPlatform(cores=cores_per_worker),
        )
        net.connect("server", f"w{k}", latency=LATENCY_LOCAL)
        workers.append(worker)
    deployment = Deployment(net, [server], [], workers)
    deployment.announce_all()
    return deployment


def cluster(
    n_nodes: int = 4,
    cores_per_node: int = 2,
    seed: int = 0,
    heartbeat_interval: float = 120.0,
    shared_filesystem: bool = True,
) -> Deployment:
    """A project server plus a cluster behind a head-node relay.

    With ``shared_filesystem=True`` the head node and its workers mount
    a common filesystem, so trajectory data never crosses the wire to
    the head node (paper section 2.3).
    """
    if n_nodes < 1:
        raise ConfigurationError("need at least one node")
    net = Network(seed=seed)
    project = CopernicusServer(
        "project-server", net, heartbeat_interval=heartbeat_interval
    )
    head = CopernicusServer("head-node", net, heartbeat_interval=heartbeat_interval)
    net.connect("project-server", "head-node", latency=LATENCY_WAN)
    workers = []
    for k in range(n_nodes):
        worker = Worker(
            f"node{k}", net, server="head-node",
            platform=SMPPlatform(cores=cores_per_node),
        )
        net.connect("head-node", f"node{k}", latency=LATENCY_LOCAL)
        workers.append(worker)
    if shared_filesystem:
        net.attach_filesystem(
            "cluster-fs", ["head-node"] + [f"node{k}" for k in range(n_nodes)]
        )
    deployment = Deployment(net, [project], [head], workers)
    deployment.announce_all()
    return deployment


def figure1(
    workers_per_cluster: int = 2,
    cores_per_worker: int = 2,
    seed: int = 0,
    heartbeat_interval: float = 120.0,
) -> Deployment:
    """The paper's Fig. 1: two project servers, a gateway, three clusters.

    Clusters 0 and 1 share a site with the gateway; cluster 2 sits on
    another continent behind a high-latency link.
    """
    net = Network(seed=seed)
    villin = CopernicusServer(
        "server-villin", net, heartbeat_interval=heartbeat_interval
    )
    titin = CopernicusServer(
        "server-titin", net, heartbeat_interval=heartbeat_interval
    )
    gateway = CopernicusServer("gateway", net, heartbeat_interval=heartbeat_interval)
    net.connect("server-villin", "gateway", latency=LATENCY_CAMPUS)
    net.connect("server-titin", "gateway", latency=LATENCY_CAMPUS)
    relays, workers = [gateway], []
    for c in range(3):
        head = CopernicusServer(
            f"cluster{c}-head", net, heartbeat_interval=heartbeat_interval
        )
        relays.append(head)
        latency = LATENCY_INTERCONTINENTAL if c == 2 else LATENCY_CAMPUS
        net.connect("gateway", f"cluster{c}-head", latency=latency)
        names = []
        for w in range(workers_per_cluster):
            name = f"c{c}w{w}"
            worker = Worker(
                name, net, server=f"cluster{c}-head",
                platform=SMPPlatform(cores=cores_per_worker),
            )
            net.connect(f"cluster{c}-head", name, latency=LATENCY_LOCAL)
            workers.append(worker)
            names.append(name)
        net.attach_filesystem(f"cluster{c}-fs", [f"cluster{c}-head"] + names)
    deployment = Deployment(net, [villin, titin], relays, workers)
    deployment.announce_all()
    return deployment
