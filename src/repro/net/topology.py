"""Pre-built overlay topologies.

Deployment recipes from the paper: a single server with local workers
(a workstation), a cluster with a head-node relay, and the full Fig. 1
multi-site layout (two project servers behind a gateway, three clusters
— one of them intercontinental).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.net.transport import Network
from repro.server.server import CopernicusServer
from repro.util.errors import ConfigurationError
from repro.worker.platform import SMPPlatform
from repro.worker.worker import Worker

#: Latency presets (seconds) for common link classes.
LATENCY_LOCAL = 0.0005       # node to head-node
LATENCY_CAMPUS = 0.005       # within a data centre
LATENCY_WAN = 0.03           # between nearby sites
LATENCY_INTERCONTINENTAL = 0.15


@dataclass
class Deployment:
    """A constructed overlay plus handles to its parts."""

    network: Network
    project_servers: List[CopernicusServer]
    relay_servers: List[CopernicusServer] = field(default_factory=list)
    workers: List[Worker] = field(default_factory=list)

    @property
    def project_server(self) -> CopernicusServer:
        """The first (often only) project server."""
        return self.project_servers[0]

    @property
    def gateway(self) -> CopernicusServer:
        """The gateway relay (the probe endpoint a
        :class:`~repro.server.shardmon.ShardMonitor` runs from).
        Raises :class:`ConfigurationError` on gateway-less topologies.
        """
        for relay in self.relay_servers:
            if relay.name == "gateway":
                return relay
        raise ConfigurationError("this deployment has no gateway relay")

    def announce_all(self, now: float = 0.0) -> None:
        """Announce every worker to its server.

        Each worker announces at ``now + poll_offset`` — with jitter
        applied (see :func:`apply_poll_jitter`) the fleet arrives
        staggered instead of stampeding the server at the same instant.
        """
        for worker in self.workers:
            worker.announce(now + worker.poll_offset)


def apply_poll_jitter(
    net: Network,
    workers: List[Worker],
    heartbeat_interval: float,
    poll_jitter: float,
) -> None:
    """Give every worker a seeded offset for its heartbeat/poll schedule.

    Real fleets never beat in lockstep; with every worker announcing at
    ``now=0.0`` and polling on the same cycle boundary, the thundering
    herd both hammers the server and hides liveness-ordering bugs.
    Offsets are drawn from the *network's* seeded stream, so a
    deployment is still a pure function of its seed.
    """
    if poll_jitter < 0.0 or poll_jitter >= 1.0:
        raise ConfigurationError(
            f"poll_jitter must be in [0, 1), got {poll_jitter}"
        )
    if poll_jitter == 0.0:
        return
    span = poll_jitter * heartbeat_interval
    for worker in workers:
        worker.poll_offset = float(net.rng.uniform(0.0, span))


def workstation(
    n_workers: int = 1,
    cores_per_worker: int = 2,
    seed: int = 0,
    heartbeat_interval: float = 120.0,
    poll_jitter: float = 0.1,
) -> Deployment:
    """A single server with directly attached workers."""
    if n_workers < 1:
        raise ConfigurationError("need at least one worker")
    net = Network(seed=seed)
    server = CopernicusServer("server", net, heartbeat_interval=heartbeat_interval)
    workers = []
    for k in range(n_workers):
        worker = Worker(
            f"w{k}", net, server="server",
            platform=SMPPlatform(cores=cores_per_worker),
        )
        net.connect("server", f"w{k}", latency=LATENCY_LOCAL)
        workers.append(worker)
    apply_poll_jitter(net, workers, heartbeat_interval, poll_jitter)
    deployment = Deployment(net, [server], [], workers)
    deployment.announce_all()
    return deployment


def cluster(
    n_nodes: int = 4,
    cores_per_node: int = 2,
    seed: int = 0,
    heartbeat_interval: float = 120.0,
    shared_filesystem: bool = True,
    poll_jitter: float = 0.1,
) -> Deployment:
    """A project server plus a cluster behind a head-node relay.

    With ``shared_filesystem=True`` the head node and its workers mount
    a common filesystem, so trajectory data never crosses the wire to
    the head node (paper section 2.3).
    """
    if n_nodes < 1:
        raise ConfigurationError("need at least one node")
    net = Network(seed=seed)
    project = CopernicusServer(
        "project-server", net, heartbeat_interval=heartbeat_interval
    )
    head = CopernicusServer("head-node", net, heartbeat_interval=heartbeat_interval)
    net.connect("project-server", "head-node", latency=LATENCY_WAN)
    workers = []
    for k in range(n_nodes):
        worker = Worker(
            f"node{k}", net, server="head-node",
            platform=SMPPlatform(cores=cores_per_node),
        )
        net.connect("head-node", f"node{k}", latency=LATENCY_LOCAL)
        workers.append(worker)
    if shared_filesystem:
        net.attach_filesystem(
            "cluster-fs", ["head-node"] + [f"node{k}" for k in range(n_nodes)]
        )
    apply_poll_jitter(net, workers, heartbeat_interval, poll_jitter)
    deployment = Deployment(net, [project], [head], workers)
    deployment.announce_all()
    return deployment


def sharded(
    n_shards: int = 3,
    workers_per_shard: int = 2,
    cores_per_worker: int = 2,
    seed: int = 0,
    heartbeat_interval: float = 120.0,
    poll_jitter: float = 0.1,
) -> Deployment:
    """A multi-tenant shard fabric: N project servers behind a gateway.

    Each shard hosts the projects that consistent-hash to it
    (:class:`~repro.net.sharding.ShardRouter` over the shard names) and
    owns a worker pool.  An idle shard's workers pull cross-shard work
    through the gateway via wildcard fetches, guarded by the per-peer
    circuit breakers — the same relay/head-node fabric as
    :func:`figure1`, reused as a service plane.
    """
    if n_shards < 1:
        raise ConfigurationError("need at least one shard")
    if workers_per_shard < 1:
        raise ConfigurationError("need at least one worker per shard")
    net = Network(seed=seed)
    gateway = CopernicusServer(
        "gateway", net, heartbeat_interval=heartbeat_interval
    )
    shards, workers = [], []
    for s in range(n_shards):
        shard = CopernicusServer(
            f"shard{s}", net, heartbeat_interval=heartbeat_interval
        )
        shards.append(shard)
        net.connect("gateway", f"shard{s}", latency=LATENCY_CAMPUS)
        for w in range(workers_per_shard):
            name = f"s{s}w{w}"
            worker = Worker(
                name, net, server=f"shard{s}",
                platform=SMPPlatform(cores=cores_per_worker),
            )
            net.connect(f"shard{s}", name, latency=LATENCY_LOCAL)
            workers.append(worker)
    apply_poll_jitter(net, workers, heartbeat_interval, poll_jitter)
    deployment = Deployment(net, shards, [gateway], workers)
    deployment.announce_all()
    return deployment


def figure1(
    workers_per_cluster: int = 2,
    cores_per_worker: int = 2,
    seed: int = 0,
    heartbeat_interval: float = 120.0,
    poll_jitter: float = 0.1,
) -> Deployment:
    """The paper's Fig. 1: two project servers, a gateway, three clusters.

    Clusters 0 and 1 share a site with the gateway; cluster 2 sits on
    another continent behind a high-latency link.
    """
    net = Network(seed=seed)
    villin = CopernicusServer(
        "server-villin", net, heartbeat_interval=heartbeat_interval
    )
    titin = CopernicusServer(
        "server-titin", net, heartbeat_interval=heartbeat_interval
    )
    gateway = CopernicusServer("gateway", net, heartbeat_interval=heartbeat_interval)
    net.connect("server-villin", "gateway", latency=LATENCY_CAMPUS)
    net.connect("server-titin", "gateway", latency=LATENCY_CAMPUS)
    relays, workers = [gateway], []
    for c in range(3):
        head = CopernicusServer(
            f"cluster{c}-head", net, heartbeat_interval=heartbeat_interval
        )
        relays.append(head)
        latency = LATENCY_INTERCONTINENTAL if c == 2 else LATENCY_CAMPUS
        net.connect("gateway", f"cluster{c}-head", latency=latency)
        names = []
        for w in range(workers_per_cluster):
            name = f"c{c}w{w}"
            worker = Worker(
                name, net, server=f"cluster{c}-head",
                platform=SMPPlatform(cores=cores_per_worker),
            )
            net.connect(f"cluster{c}-head", name, latency=LATENCY_LOCAL)
            workers.append(worker)
            names.append(name)
        net.attach_filesystem(f"cluster{c}-fs", [f"cluster{c}-head"] + names)
    apply_poll_jitter(net, workers, heartbeat_interval, poll_jitter)
    deployment = Deployment(net, [villin, titin], relays, workers)
    deployment.announce_all()
    return deployment
