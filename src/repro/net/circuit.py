"""Per-peer circuit breakers for overlay traffic.

A peer that keeps failing transiently (partitioned relay, rebooting
head node) should not stall every wildcard walk that probes it: after
``failure_threshold`` consecutive transient failures the breaker
*opens* and the peer is skipped for a cooldown measured on the virtual
clock.  When the cooldown expires the breaker goes *half-open* and
admits a limited number of probe requests; if they succeed it closes
again, if any fails it re-opens with an escalating cooldown.

The breaker deliberately knows nothing about transports — callers ask
:meth:`CircuitBreaker.allow` before contacting the peer and report the
outcome with :meth:`record_success` / :meth:`record_failure`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import ConfigurationError


class BreakerState(enum.Enum):
    """The classic three-state circuit-breaker automaton."""

    #: Traffic flows; consecutive failures are counted.
    CLOSED = "closed"
    #: The peer is skipped until the cooldown expires.
    OPEN = "open"
    #: A limited number of probes test whether the peer recovered.
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs for one :class:`CircuitBreaker`.

    Attributes
    ----------
    failure_threshold:
        Consecutive transient failures that open a closed breaker.
    cooldown_seconds:
        Virtual seconds an opened breaker stays open before probing.
    cooldown_backoff:
        Multiplier applied to the cooldown every time a half-open
        probe fails (the peer is still sick).
    max_cooldown_seconds:
        Cap on the escalated cooldown.
    half_open_probes:
        Successful probes required to close a half-open breaker.
    """

    failure_threshold: int = 3
    cooldown_seconds: float = 300.0
    cooldown_backoff: float = 2.0
    max_cooldown_seconds: float = 3600.0
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.cooldown_seconds <= 0:
            raise ConfigurationError("cooldown_seconds must be positive")
        if self.cooldown_backoff < 1.0:
            raise ConfigurationError("cooldown_backoff must be >= 1")
        if self.half_open_probes < 1:
            raise ConfigurationError("half_open_probes must be >= 1")


class CircuitBreaker:
    """Failure-rate gate for one peer, clocked on virtual time."""

    def __init__(self, peer: str, policy: BreakerPolicy = None) -> None:
        self.peer = peer
        self.policy = policy or BreakerPolicy()
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._open_until = 0.0
        self._current_cooldown = self.policy.cooldown_seconds
        #: Lifetime accounting (surfaced through traffic reports).
        self.opens = 0
        self.closes = 0
        self.skips = 0
        #: Optional ``(breaker, new_state) -> None`` callback fired on
        #: every state transition; the transport uses it to feed the
        #: metrics registry without the breaker knowing about metrics.
        self.observer = None

    def _transition(self, state: BreakerState) -> None:
        self.state = state
        if self.observer is not None:
            self.observer(self, state)

    def allow(self, now: float) -> bool:
        """Whether the caller may contact the peer at virtual time *now*.

        An open breaker whose cooldown has expired transitions to
        half-open and admits the call as a probe.  Disallowed calls are
        counted in :attr:`skips`.
        """
        if self.state is BreakerState.OPEN:
            if now >= self._open_until:
                self._probe_successes = 0
                self._transition(BreakerState.HALF_OPEN)
            else:
                self.skips += 1
                return False
        return True

    def record_success(self, now: float) -> None:
        """Report that a permitted call succeeded."""
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.policy.half_open_probes:
                self._current_cooldown = self.policy.cooldown_seconds
                self.closes += 1
                self._transition(BreakerState.CLOSED)
        self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """Report that a permitted call failed transiently."""
        if self.state is BreakerState.HALF_OPEN:
            # the peer is still sick: re-open with an escalated cooldown
            self._current_cooldown = min(
                self._current_cooldown * self.policy.cooldown_backoff,
                self.policy.max_cooldown_seconds,
            )
            self._trip(now)
            return
        self._consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._trip(now)

    def _trip(self, now: float) -> None:
        self._open_until = now + self._current_cooldown
        self._consecutive_failures = 0
        self._probe_successes = 0
        self.opens += 1
        self._transition(BreakerState.OPEN)

    def describe(self) -> dict:
        """Schema-stable summary for monitoring and reports."""
        return {
            "peer": self.peer,
            "state": self.state.value,
            "opens": self.opens,
            "closes": self.closes,
            "skips": self.skips,
            "open_until": self._open_until,
        }
