"""Consistent-hash sharding of projects onto the server overlay.

The paper's overlay aggregates heterogeneous resources behind one head
node; the multi-tenant service plane reuses that fabric as a *shard
fabric*: every project server is a shard, and project ids are mapped
onto shards with a consistent-hash ring so that

* keys spread uniformly across shards (within tolerance), and
* a shard joining or leaving moves only ~K/n keys — every other
  project keeps its origin server, its journal directory and its
  queue untouched.

Hashing is deterministic (BLAKE2b over the literal key bytes), so a
deployment's shard layout is a pure function of its server names —
independent of Python's per-process hash randomisation, reproducible
across runs and machines.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence

from repro.util.errors import ConfigurationError, UnknownShardError

#: Virtual nodes per shard.  More points smooth the key distribution
#: (the classic consistent-hashing variance fix); 64 keeps ring
#: operations cheap while holding per-shard load within a few percent
#: of uniform for realistic shard counts.
DEFAULT_REPLICAS = 64


def stable_hash(key: str) -> int:
    """A 64-bit position on the ring for *key* (process-independent)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over named nodes.

    Each node is planted at ``replicas`` seeded points on a 64-bit
    ring; a key routes to the first node point at or clockwise of the
    key's own hash.  Ties on ring position (vanishingly rare with a
    64-bit space) break by node name so the layout stays total-ordered
    and deterministic.
    """

    def __init__(
        self,
        nodes: Iterable[str] = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._nodes: List[str] = []
        #: Sorted ring positions and the node planted at each.
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Current ring members, in insertion order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _node_points(self, node: str) -> List[int]:
        return [
            stable_hash(f"{node}#{replica}")
            for replica in range(self.replicas)
        ]

    def add(self, node: str) -> None:
        """Plant *node*'s virtual points on the ring."""
        if not node:
            raise ConfigurationError("ring nodes need a non-empty name")
        if node in self._nodes:
            raise ConfigurationError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for point in self._node_points(node):
            index = bisect.bisect_left(self._points, point)
            # same-position collisions order by name for determinism
            while (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] < node
            ):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Withdraw *node*; its keys redistribute to ring successors."""
        if node not in self._nodes:
            raise UnknownShardError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- routing -----------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The node owning *key* (first point clockwise of its hash)."""
        if not self._points:
            raise ConfigurationError("hash ring has no nodes")
        index = bisect.bisect_right(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._owners[index]

    def assignments(self, keys: Sequence[str]) -> Dict[str, str]:
        """Key -> owning node, for a batch of keys."""
        return {key: self.node_for(key) for key in keys}

    def load(self, keys: Sequence[str]) -> Dict[str, int]:
        """Keys per node (every member listed, even at zero load)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts


class ShardRouter:
    """Routes project ids onto a deployment's project servers.

    A thin, named wrapper over :class:`HashRing` so call sites read as
    routing ("which shard hosts this project?") rather than hashing.
    The router is consulted at submit time; once a project is hosted,
    results keep flowing to its origin server via the command's
    ``origin_server`` stamp, exactly as in the single-server plane.
    """

    def __init__(
        self,
        shards: Iterable[str],
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        self.ring = HashRing(shards, replicas=replicas)
        if len(self.ring) == 0:
            raise ConfigurationError("a shard router needs >= 1 shard")
        #: Shards withdrawn from the ring (failover), so a racing
        #: second remove is an idempotent no-op instead of an error.
        self._removed: set = set()

    @property
    def shards(self) -> List[str]:
        """Shard (server) names on the ring."""
        return self.ring.nodes

    def route(self, project_id: str) -> str:
        """The shard server hosting *project_id*."""
        if not project_id:
            raise ConfigurationError("cannot route an empty project id")
        return self.ring.node_for(project_id)

    def add_shard(self, name: str) -> None:
        """Join a shard (new projects may route to it; existing
        projects keep their origin)."""
        self.ring.add(name)
        self._removed.discard(name)

    def remove_shard(self, name: str) -> None:
        """Withdraw a shard from *future* routing decisions.

        Removing a shard that was already withdrawn is a no-op —
        failover paths may race (monitor sweep vs. explicit drain) and
        both must converge on the same membership.  Removing a shard
        that was *never* a member raises :class:`UnknownShardError`.
        """
        if name in self.ring:
            self.ring.remove(name)
            self._removed.add(name)
        elif name not in self._removed:
            raise UnknownShardError(f"shard {name!r} is not a member")

    def plan(self, project_ids: Sequence[str]) -> Dict[str, str]:
        """project id -> shard, for a batch of submissions."""
        return self.ring.assignments(project_ids)
