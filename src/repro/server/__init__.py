"""Copernicus servers: command queues, matching, heartbeats, recovery."""

from repro.server.queue import CommandQueue
from repro.server.matching import WorkerCapabilities, build_workload
from repro.server.fairshare import (
    FairSharePolicy,
    FairShareScheduler,
    TenantLedger,
    TenantPolicy,
)
from repro.server.heartbeat import HeartbeatMonitor
from repro.server.health import (
    HealthPolicy,
    HealthRegistry,
    HealthState,
    WorkerHealth,
)
from repro.server.lease import (
    Lease,
    LeasePolicy,
    LeaseTracker,
    estimate_command_seconds,
)
from repro.server.server import CopernicusServer
from repro.server.datastore import ProjectStore, replay, replay_results
from repro.server.wal import (
    JournalState,
    ProjectJournal,
    ServerJournal,
    WriteAheadLog,
)

__all__ = [
    "CommandQueue",
    "WorkerCapabilities",
    "build_workload",
    "FairSharePolicy",
    "FairShareScheduler",
    "TenantLedger",
    "TenantPolicy",
    "HeartbeatMonitor",
    "HealthPolicy",
    "HealthRegistry",
    "HealthState",
    "WorkerHealth",
    "Lease",
    "LeasePolicy",
    "LeaseTracker",
    "estimate_command_seconds",
    "CopernicusServer",
    "ProjectStore",
    "replay",
    "replay_results",
    "JournalState",
    "ProjectJournal",
    "ServerJournal",
    "WriteAheadLog",
]
