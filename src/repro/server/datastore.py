"""Durable project storage: crash-safe result logs and replay recovery.

Copernicus projects run for days; a project server must be able to
restart without losing them.  The store appends every completed
command's (command, result) pair to disk in completion order.  After a
restart, :func:`replay` feeds the log back through a *fresh* controller
instance: because controllers are deterministic given their seed and
the event order, this reconstructs the exact pre-crash state — and
returns the commands that were issued but never completed, ready to be
requeued.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Tuple

from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.project import Project
from repro.util.errors import ConfigurationError
from repro.util.serialization import decode_message, encode_message


class ProjectStore:
    """Append-only result log per project, under one root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _project_dir(self, project_id: str) -> Path:
        if not project_id or "/" in project_id:
            raise ConfigurationError(f"bad project id {project_id!r}")
        path = self.root / project_id
        (path / "results").mkdir(parents=True, exist_ok=True)
        return path

    # -- writing -----------------------------------------------------------

    def record_result(
        self, project_id: str, command: Command, result: dict
    ) -> Path:
        """Append one completed command (atomic via rename)."""
        directory = self._project_dir(project_id) / "results"
        sequence = len(list(directory.glob("*.bin")))
        blob = encode_message(
            {"command": command.to_payload(), "result": result}
        )
        final = directory / f"{sequence:06d}.bin"
        temp = directory / f".{sequence:06d}.tmp"
        temp.write_bytes(blob)
        temp.rename(final)
        return final

    def save_metadata(self, project_id: str, metadata: dict) -> None:
        """Persist small JSON metadata (config summary, status...)."""
        path = self._project_dir(project_id) / "meta.json"
        path.write_text(json.dumps(metadata, indent=2, default=str))

    # -- reading -----------------------------------------------------------

    def load_metadata(self, project_id: str) -> dict:
        """Read back the metadata (empty dict if none)."""
        path = self._project_dir(project_id) / "meta.json"
        if not path.exists():
            return {}
        return json.loads(path.read_text())

    def iter_results(
        self, project_id: str
    ) -> Iterator[Tuple[Command, dict]]:
        """Yield (command, result) pairs in completion order."""
        directory = self._project_dir(project_id) / "results"
        for path in sorted(directory.glob("*.bin")):
            payload = decode_message(path.read_bytes())
            yield Command.from_payload(payload["command"]), payload["result"]

    def result_count(self, project_id: str) -> int:
        """Completed commands on record."""
        return len(list((self._project_dir(project_id) / "results").glob("*.bin")))

    def projects(self) -> List[str]:
        """Project ids present in the store."""
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())


def replay(
    store: ProjectStore, project_id: str, controller: Controller
) -> Tuple[Project, List[Command]]:
    """Rebuild a project's state from the log through a fresh controller.

    Returns ``(project, outstanding_commands)``: the reconstructed
    project plus every command the controller issued that has no
    recorded result — exactly what must be requeued to resume.
    """
    project = Project(project_id)
    issued = {c.command_id: c for c in controller.on_project_start(project)}
    project.record_issue(list(issued.values()))
    for command, result in store.iter_results(project_id):
        project.record_result(command, result)
        follow_ups = controller.on_command_finished(project, command, result)
        issued.pop(command.command_id, None)
        for follow_up in follow_ups:
            issued[follow_up.command_id] = follow_up
        project.record_issue(follow_ups)
    return project, list(issued.values())
