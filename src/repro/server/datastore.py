"""Durable project storage: crash-safe result logs and replay recovery.

Copernicus projects run for days; a project server must be able to
restart without losing them.  The store appends every completed
command's (command, result) pair to disk in completion order.  After a
restart, :func:`replay` feeds the log back through a *fresh* controller
instance: because controllers are deterministic given their seed and
the event order, this reconstructs the exact pre-crash state — and
returns the commands that were issued but never completed (ready to be
requeued) plus the ids of the completed ones (to reseed the server's
exactly-once barrier).

For journaled, snapshot-compacted server state see
:mod:`repro.server.wal`; this module remains the simple result archive
(one file per result) used by analyses and the replay tests.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.project import Project
from repro.util.errors import ConfigurationError
from repro.util.serialization import decode_message, encode_message


def _fsync_path(path: Path) -> None:
    """fsync a file or directory by path (making renames durable)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ProjectStore:
    """Append-only result log per project, under one root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Next sequence number per project (monotone; never reused even
        #: after deletions, so concurrent readers can't see collisions).
        self._cursors: Dict[str, int] = {}

    def _project_dir(self, project_id: str) -> Path:
        if not project_id or "/" in project_id:
            raise ConfigurationError(f"bad project id {project_id!r}")
        path = self.root / project_id
        (path / "results").mkdir(parents=True, exist_ok=True)
        return path

    def _results_dir(self, project_id: str) -> Path:
        return self._project_dir(project_id) / "results"

    def _next_sequence(self, project_id: str) -> int:
        """Monotonic per-project cursor, seeded once from the directory.

        A crash can leave ``.NNNNNN.tmp`` files behind; they are swept
        here (first touch after a restart) so they can never be counted
        or collide with a fresh append.
        """
        cursor = self._cursors.get(project_id)
        if cursor is None:
            directory = self._results_dir(project_id)
            for stale in directory.glob(".*.tmp"):
                stale.unlink()
            sequences = [
                int(p.stem)
                for p in directory.glob("*.bin")
                if p.stem.isdigit()
            ]
            cursor = max(sequences) + 1 if sequences else 0
        self._cursors[project_id] = cursor + 1
        return cursor

    # -- writing -----------------------------------------------------------

    def record_result(
        self, project_id: str, command: Command, result: dict
    ) -> Path:
        """Append one completed command (atomic and durable via
        write-to-temp, fsync, rename, directory fsync)."""
        directory = self._results_dir(project_id)
        sequence = self._next_sequence(project_id)
        blob = encode_message(
            {"command": command.to_payload(), "result": result}
        )
        final = directory / f"{sequence:06d}.bin"
        temp = directory / f".{sequence:06d}.tmp"
        with open(temp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        temp.rename(final)
        _fsync_path(directory)
        return final

    def save_metadata(self, project_id: str, metadata: dict) -> None:
        """Persist small JSON metadata (config summary, status...)."""
        path = self._project_dir(project_id) / "meta.json"
        path.write_text(json.dumps(metadata, indent=2, default=str))

    # -- reading -----------------------------------------------------------

    def load_metadata(self, project_id: str) -> dict:
        """Read back the metadata (empty dict if none)."""
        path = self._project_dir(project_id) / "meta.json"
        if not path.exists():
            return {}
        return json.loads(path.read_text())

    def iter_results(
        self, project_id: str
    ) -> Iterator[Tuple[Command, dict]]:
        """Yield (command, result) pairs in completion order."""
        directory = self._results_dir(project_id)
        for path in sorted(directory.glob("*.bin")):
            payload = decode_message(path.read_bytes())
            yield Command.from_payload(payload["command"]), payload["result"]

    def result_count(self, project_id: str) -> int:
        """Completed commands on record."""
        return len(list(self._results_dir(project_id).glob("*.bin")))

    def projects(self) -> List[str]:
        """Project ids present in the store."""
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())


def replay_results(
    project_id: str,
    results: Iterable[Tuple[Command, dict]],
    controller: Controller,
) -> Tuple[Project, List[Command], Set[str]]:
    """Feed an ordered result history through a fresh controller.

    The shared core of :func:`replay` and
    :meth:`repro.core.runner.ProjectRunner.resume`: deterministic
    controllers re-issue the same commands in the same order, so
    replaying the recorded results reconstructs the pre-crash project
    state exactly.

    Returns ``(project, outstanding_commands, completed_ids)``.
    """
    project = Project(project_id)
    issued = {c.command_id: c for c in controller.on_project_start(project)}
    project.record_issue(list(issued.values()))
    completed_ids: Set[str] = set()
    for command, result in results:
        project.record_result(command, result)
        follow_ups = controller.on_command_finished(project, command, result)
        issued.pop(command.command_id, None)
        completed_ids.add(command.command_id)
        for follow_up in follow_ups:
            issued[follow_up.command_id] = follow_up
        project.record_issue(follow_ups)
    return project, list(issued.values()), completed_ids


def replay(
    store: ProjectStore, project_id: str, controller: Controller
) -> Tuple[Project, List[Command], Set[str]]:
    """Rebuild a project's state from the log through a fresh controller.

    Returns ``(project, outstanding_commands, completed_ids)``: the
    reconstructed project, every command the controller issued that has
    no recorded result (exactly what must be requeued to resume), and
    the ids of the completed commands — the restarted server must seed
    its exactly-once dedup barrier from the latter so a late or
    duplicated result arriving after recovery is still dropped.
    """
    return replay_results(
        project_id, store.iter_results(project_id), controller
    )
