"""Per-worker health scoring, probation and quarantine.

Donated and intercontinental resources are allowed to be bad (paper
section 2.3) — but a worker that keeps crashing, flapping or straggling
should stop receiving full workloads.  Each worker carries an EWMA
health score in [0, 1] fed by observed outcomes:

* a completed result counts 1.0;
* crashes (declared dead), flaps (dead/revived cycles) and straggler
  detections count 0.0;
* losing a speculation race counts 0.25 — slower than the model
  thought, but the work did finish.

Scores below ``probation_threshold`` put the worker on *probation*
(workloads capped at ``probation_commands``); below
``quarantine_threshold`` the worker is *quarantined* — zero workload —
for a cooldown that doubles on every repeat offence.  After the
cooldown the worker is re-admitted on probation and must earn its way
back with successes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.util.errors import ConfigurationError

#: EWMA target value per failure kind (success counts 1.0).
FAILURE_OUTCOMES: Dict[str, float] = {
    "crash": 0.0,
    "flap": 0.0,
    "straggler": 0.0,
    "speculation_loss": 0.25,
}


def ewma(score: float, outcome: float, alpha: float) -> float:
    """Fold *outcome* into *score* with smoothing factor *alpha*.

    The one health primitive shared by every liveness scorer: worker
    health here and shard liveness in
    :mod:`repro.server.shardmon` use the same update so their
    thresholds are comparable.
    """
    return (1.0 - alpha) * score + alpha * outcome


class HealthState(enum.Enum):
    """Scheduling posture toward one worker."""

    HEALTHY = "healthy"
    #: Workloads capped at ``probation_commands``.
    PROBATION = "probation"
    #: Zero workload until the cooldown expires.
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class HealthPolicy:
    """Tuning for the EWMA score and the quarantine ladder."""

    #: EWMA smoothing: score <- (1-alpha)*score + alpha*outcome.
    alpha: float = 0.4
    #: Below this the worker is on probation (capped workloads).
    probation_threshold: float = 0.65
    #: Below this the worker is quarantined (no workload).
    quarantine_threshold: float = 0.3
    #: First quarantine cooldown, virtual seconds.
    quarantine_seconds: float = 600.0
    #: Cooldown multiplier per repeat quarantine.
    quarantine_backoff: float = 2.0
    #: Cap on the escalated cooldown.
    max_quarantine_seconds: float = 14400.0
    #: Workload cap while on probation.
    probation_commands: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        if not 0.0 < self.quarantine_threshold < self.probation_threshold < 1.0:
            raise ConfigurationError(
                "need 0 < quarantine_threshold < probation_threshold < 1"
            )
        if self.quarantine_seconds <= 0:
            raise ConfigurationError("quarantine_seconds must be positive")
        if self.quarantine_backoff < 1.0:
            raise ConfigurationError("quarantine_backoff must be >= 1")
        if self.probation_commands < 1:
            raise ConfigurationError("probation_commands must be >= 1")


@dataclass
class WorkerHealth:
    """Mutable health state for one worker."""

    worker: str
    score: float = 1.0
    state: HealthState = HealthState.HEALTHY
    quarantined_until: float = 0.0
    #: Consecutive quarantines (drives the cooldown escalation).
    quarantine_count: int = 0
    successes: int = 0
    failures: Dict[str, int] = field(default_factory=dict)


class HealthRegistry:
    """Health scores for every worker one server has seen."""

    def __init__(self, policy: Optional[HealthPolicy] = None) -> None:
        self.policy = policy or HealthPolicy()
        self._records: Dict[str, WorkerHealth] = {}
        #: Lifetime accounting (surfaced through monitoring).
        self.quarantines = 0
        self.readmissions = 0
        self._metrics = None
        self._server = ""

    def bind_metrics(self, registry, server: str) -> None:
        """Export health scores/transitions to *registry* as *server*.

        Optional: an unbound registry works identically, minus telemetry.
        """
        self._metrics = registry
        self._server = server

    def _export(self, record: WorkerHealth) -> None:
        if self._metrics is None:
            return
        self._metrics.set_gauge(
            "repro_server_worker_health_score",
            round(record.score, 6),
            help="EWMA health score per worker (1.0 = perfect).",
            server=self._server,
            worker=record.worker,
        )

    def _count_transition(self, transition: str) -> None:
        if self._metrics is not None:
            self._metrics.inc(
                "repro_server_health_transitions_total",
                help="Worker health-state transitions, by kind.",
                server=self._server,
                transition=transition,
            )

    def record_for(self, worker: str) -> WorkerHealth:
        """The worker's record (created healthy on first sight)."""
        record = self._records.get(worker)
        if record is None:
            record = WorkerHealth(worker=worker)
            self._records[worker] = record
        return record

    def score(self, worker: str) -> float:
        """Current EWMA score (1.0 for unseen workers)."""
        record = self._records.get(worker)
        return record.score if record is not None else 1.0

    def is_quarantined(self, worker: str, now: float) -> bool:
        """Whether the worker is quarantined at *now* (cooldown running)."""
        record = self._records.get(worker)
        return (
            record is not None
            and record.state is HealthState.QUARANTINED
            and now < record.quarantined_until
        )

    def observe_success(self, worker: str, now: float) -> Optional[str]:
        """Fold a completed result into the score.

        Returns ``"recovered"`` when the success lifted the worker off
        probation, else ``None``.
        """
        record = self.record_for(worker)
        record.successes += 1
        record.score = self._ewma(record.score, 1.0)
        self._export(record)
        if (
            record.state is HealthState.PROBATION
            and record.score >= self.policy.probation_threshold
        ):
            record.state = HealthState.HEALTHY
            record.quarantine_count = 0
            self._count_transition("recovered")
            return "recovered"
        return None

    def observe_failure(self, worker: str, kind: str, now: float) -> Optional[str]:
        """Fold a failure of *kind* (see :data:`FAILURE_OUTCOMES`) in.

        Returns ``"quarantined"`` or ``"probation"`` when the score
        crossed a threshold, else ``None``.
        """
        record = self.record_for(worker)
        record.failures[kind] = record.failures.get(kind, 0) + 1
        record.score = self._ewma(record.score, FAILURE_OUTCOMES.get(kind, 0.0))
        self._export(record)
        if (
            record.state is not HealthState.QUARANTINED
            and record.score < self.policy.quarantine_threshold
        ):
            cooldown = min(
                self.policy.quarantine_seconds
                * self.policy.quarantine_backoff ** record.quarantine_count,
                self.policy.max_quarantine_seconds,
            )
            record.state = HealthState.QUARANTINED
            record.quarantined_until = now + cooldown
            record.quarantine_count += 1
            self.quarantines += 1
            self._count_transition("quarantined")
            return "quarantined"
        if (
            record.state is HealthState.HEALTHY
            and record.score < self.policy.probation_threshold
        ):
            record.state = HealthState.PROBATION
            self._count_transition("probation")
            return "probation"
        return None

    def admit(self, worker: str, now: float) -> Tuple[bool, Optional[int], Optional[str]]:
        """Gate a workload request.

        Returns ``(allowed, max_commands, transition)``:

        * quarantined with the cooldown running — ``(False, None, None)``;
        * quarantined but cooldown expired — re-admitted on probation:
          ``(True, probation_commands, "readmitted")``;
        * on probation — ``(True, probation_commands, None)``;
        * healthy/unseen — ``(True, None, None)`` (no cap).
        """
        record = self._records.get(worker)
        if record is None or record.state is HealthState.HEALTHY:
            return True, None, None
        if record.state is HealthState.QUARANTINED:
            if now < record.quarantined_until:
                return False, None, None
            record.state = HealthState.PROBATION
            # floor the score at the quarantine bar so a couple of
            # successes can lift the worker back over the probation bar
            record.score = max(record.score, self.policy.quarantine_threshold)
            self.readmissions += 1
            self._count_transition("readmitted")
            self._export(record)
            return True, self.policy.probation_commands, "readmitted"
        return True, self.policy.probation_commands, None

    def _ewma(self, score: float, outcome: float) -> float:
        return ewma(score, outcome, self.policy.alpha)

    def describe(self) -> Dict[str, dict]:
        """Schema-stable per-worker summary for monitoring."""
        return {
            worker: {
                "score": round(record.score, 4),
                "state": record.state.value,
                "successes": record.successes,
                "failures": dict(record.failures),
                "quarantines": record.quarantine_count,
                "quarantined_until": record.quarantined_until,
            }
            for worker, record in sorted(self._records.items())
        }
