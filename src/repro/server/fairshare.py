"""Fair-share admission and dispatch across tenants.

The paper pitches Copernicus as a service plane ("millions of users"
behind one overlay); a single priority queue cannot deliver that — one
tenant submitting a huge ensemble starves everyone else.  This module
layers three mechanisms over :func:`repro.server.matching.build_workload`:

* **Quotas** — a per-tenant cap on concurrently in-flight commands.
  ``None`` is unlimited; ``0`` means the tenant never dispatches (a
  suspended account).  Quota accounting is an exact ledger (checked by
  invariant 11): per tenant, ``dispatched == released + in_flight``
  at every instant, and ``peak_in_flight`` never exceeds the quota.
* **Weighted fairness** — among tenants under quota, the next command
  comes from the tenant with the smallest ``in_flight / weight``
  deficit, so capacity divides proportionally to weight under load.
* **Starvation-free aging** — any admissible command that has waited
  past ``max_wait_seconds`` dispatches *before* all deficit-ordered
  picks, oldest first, bounding every tenant's wait (invariant 12).
  Bypassing an aged admissible command is a scheduler bug; the
  scheduler self-checks and reports violations instead of hiding them.
* **Backpressure** — per-tenant queue-depth admission control: a
  submission beyond ``max_queued`` is *deferred* (journaled but not
  queued) and released FIFO, deterministically, as the tenant's queue
  drains.

A deployment with one tenant and no policy for it takes a fast path
that delegates straight to :func:`build_workload`, so single-project
servers behave byte-for-byte as before.

Tenant identity is the project id.  All bookkeeping keys are *scoped*
command keys (:meth:`repro.core.command.Command.scoped_id`), so two
tenants reusing a command id never alias, and a speculative clone of
an in-flight command is recognised as the same logical command (it
neither double-counts on dispatch nor double-credits on release).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.command import Command
from repro.server.matching import WorkerCapabilities, build_workload
from repro.server.queue import CommandQueue
from repro.util.errors import ConfigurationError

#: Default aging bound: an admissible command never waits longer than
#: this (virtual seconds) while the scheduler dispatches other work.
DEFAULT_MAX_WAIT_SECONDS = 3600.0


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's share of the service plane.

    Attributes
    ----------
    quota:
        Maximum concurrently in-flight commands.  ``None`` = unlimited,
        ``0`` = never dispatch.
    weight:
        Relative share among tenants competing under quota.
    max_queued:
        Queue-depth backpressure limit; submissions beyond it are
        deferred until the tenant's queue drains.  ``None`` = no limit.
    """

    quota: Optional[int] = None
    weight: float = 1.0
    max_queued: Optional[int] = None

    def __post_init__(self) -> None:
        if self.quota is not None and self.quota < 0:
            raise ConfigurationError("tenant quota cannot be negative")
        if self.weight <= 0:
            raise ConfigurationError("tenant weight must be positive")
        if self.max_queued is not None and self.max_queued < 1:
            raise ConfigurationError("max_queued must be >= 1 (or None)")


#: The policy applied to tenants without an explicit entry.
DEFAULT_POLICY = TenantPolicy()


@dataclass
class FairSharePolicy:
    """Deployment-wide fair-share configuration."""

    tenants: Dict[str, TenantPolicy] = field(default_factory=dict)
    default: TenantPolicy = DEFAULT_POLICY
    max_wait_seconds: float = DEFAULT_MAX_WAIT_SECONDS

    def __post_init__(self) -> None:
        if self.max_wait_seconds <= 0:
            raise ConfigurationError("max_wait_seconds must be positive")

    def for_tenant(self, tenant: str) -> TenantPolicy:
        """The effective policy for *tenant*."""
        return self.tenants.get(tenant, self.default)


@dataclass
class TenantLedger:
    """Exact per-tenant accounting (invariant 11's subject)."""

    dispatched: int = 0
    released: int = 0
    peak_in_flight: int = 0
    deferred_total: int = 0

    @property
    def in_flight_balance(self) -> int:
        return self.dispatched - self.released


class FairShareScheduler:
    """Admission + dispatch policy for one server's command queue.

    Attach with :meth:`CopernicusServer.attach_fairshare`; the server
    then routes every workload build, submission and release through
    this scheduler.  Unattached servers are untouched.
    """

    def __init__(self, policy: Optional[FairSharePolicy] = None) -> None:
        self.policy = policy or FairSharePolicy()
        #: Scoped keys currently in flight, per tenant.
        self._in_flight: Dict[str, Set[str]] = {}
        #: Per-tenant dispatch/release/peak ledgers.
        self.ledgers: Dict[str, TenantLedger] = {}
        #: Deferred (admitted-but-not-queued) commands, FIFO per tenant.
        self._deferred: Dict[str, List[Command]] = {}
        #: Aging self-check reports not yet consumed by the server:
        #: ``(tenant, command_id, waited_seconds)``.
        self._violations: List[Tuple[str, str, float]] = []
        self.aging_violations = 0

    # -- ledger ------------------------------------------------------------

    def _ledger(self, tenant: str) -> TenantLedger:
        return self.ledgers.setdefault(tenant, TenantLedger())

    def in_flight(self, tenant: str) -> int:
        """Commands of *tenant* currently dispatched and unresolved."""
        return len(self._in_flight.get(tenant, ()))

    def _note_dispatch(self, command: Command) -> bool:
        """Count a command leaving the queue; idempotent per scoped key
        (a speculative clone is the same logical command)."""
        keys = self._in_flight.setdefault(command.project_id, set())
        if command.scoped_id in keys:
            return False
        keys.add(command.scoped_id)
        ledger = self._ledger(command.project_id)
        ledger.dispatched += 1
        ledger.peak_in_flight = max(ledger.peak_in_flight, len(keys))
        return True

    def release(self, command: Command) -> bool:
        """Resolve a dispatched command (result arrived, or requeued).

        Membership-guarded and therefore idempotent: the losing copy
        of a speculation race, a duplicated result and a requeue of a
        never-dispatched command are all no-ops.
        """
        keys = self._in_flight.get(command.project_id)
        if not keys or command.scoped_id not in keys:
            return False
        keys.remove(command.scoped_id)
        self._ledger(command.project_id).released += 1
        return True

    def check_ledger(self) -> List[str]:
        """Internal-consistency violations (feeds invariant 11)."""
        violations = []
        for tenant in sorted(self.ledgers):
            ledger = self.ledgers[tenant]
            balance = ledger.in_flight_balance
            live = self.in_flight(tenant)
            if balance != live:
                violations.append(
                    f"tenant {tenant!r} ledger balance {balance} != "
                    f"{live} live in-flight keys"
                )
            quota = self.policy.for_tenant(tenant).quota
            if quota is not None and ledger.peak_in_flight > quota:
                violations.append(
                    f"tenant {tenant!r} peaked at {ledger.peak_in_flight} "
                    f"in-flight commands over quota {quota}"
                )
            if quota == 0 and ledger.dispatched > 0:
                violations.append(
                    f"zero-quota tenant {tenant!r} dispatched "
                    f"{ledger.dispatched} commands"
                )
        return violations

    # -- admission (backpressure) ------------------------------------------

    def _queued_depth(self, queue: CommandQueue, tenant: str) -> int:
        return sum(1 for c in queue.commands() if c.project_id == tenant)

    def should_defer(self, command: Command, queue: CommandQueue) -> bool:
        """Whether a submission must wait for the tenant's queue to drain.

        Once a tenant has anything deferred, later submissions defer
        too — releases are strictly FIFO.
        """
        tenant = command.project_id
        limit = self.policy.for_tenant(tenant).max_queued
        if limit is None:
            return False
        if self._deferred.get(tenant):
            return True
        return self._queued_depth(queue, tenant) >= limit

    def defer(self, command: Command) -> None:
        """Hold a submission back until :meth:`drain` releases it."""
        self._deferred.setdefault(command.project_id, []).append(command)
        self._ledger(command.project_id).deferred_total += 1

    def drain(self, queue: CommandQueue) -> List[Command]:
        """Deferred commands whose tenants have room again, in a
        deterministic order (tenants sorted by name, FIFO within)."""
        released: List[Command] = []
        for tenant in sorted(self._deferred):
            pending = self._deferred[tenant]
            limit = self.policy.for_tenant(tenant).max_queued
            depth = self._queued_depth(queue, tenant)
            while pending and (limit is None or depth < limit):
                released.append(pending.pop(0))
                depth += 1
        return released

    def deferred_commands(self) -> List[Command]:
        """Every currently deferred command (for invariant accounting:
        deferred commands are issued but neither queued nor in flight)."""
        out: List[Command] = []
        for tenant in sorted(self._deferred):
            out.extend(self._deferred[tenant])
        return out

    # -- dispatch ----------------------------------------------------------

    def _admits(self, command: Command) -> bool:
        """Whether quota allows dispatching *command* right now."""
        quota = self.policy.for_tenant(command.project_id).quota
        if quota is None:
            return True
        keys = self._in_flight.get(command.project_id, ())
        if command.scoped_id in keys:
            # a speculative clone of an already-counted command adds
            # no net in-flight load
            return True
        return len(keys) < quota

    def _is_aged(self, command: Command, now: float, queued_at: Dict[str, float]) -> bool:
        enqueued = queued_at.get(command.scoped_id)
        if enqueued is None:
            return False
        return (now - enqueued) > self.policy.max_wait_seconds

    def build(
        self,
        queue: CommandQueue,
        caps: WorkerCapabilities,
        now: float,
        queued_at: Dict[str, float],
        max_commands: Optional[int] = None,
    ) -> List[Tuple[Command, int]]:
        """Pop a fair workload for *caps*; the scheduler's core.

        Selection order: aged admissible commands first (oldest
        enqueue wins), then smallest ``in_flight / weight`` tenant
        deficit (name-ordered on ties).  Core packing and rider
        coalescing follow :func:`build_workload` exactly — riders
        share their seed command's coalesce key, which includes the
        project id, so a batch never spans tenants; each rider counts
        against its tenant's quota like any dispatched command.
        """
        from repro.worker.coalesce import BATCH_EXECUTABLE, coalesce_key

        tenants_queued = {c.project_id for c in queue.commands()}
        if len(tenants_queued) <= 1 and all(
            self.policy.for_tenant(t) == DEFAULT_POLICY for t in tenants_queued
        ):
            # single-tenant, unconstrained: byte-for-byte the classic
            # matcher, with the ledger still kept exact
            workload = build_workload(queue, caps, max_commands=max_commands)
            for command, _ in workload:
                self._note_dispatch(command)
            return workload

        batching = (
            caps.batch_capacity > 1 and BATCH_EXECUTABLE in caps.executables
        )
        workload: List[Tuple[Command, int]] = []
        free = caps.cores

        def full() -> bool:
            return (
                free <= 0
                or (max_commands is not None and len(workload) >= max_commands)
            )

        while not full():
            candidates = [
                c
                for c in queue.commands()
                if c.executable in caps.executables
                and c.min_cores <= free
                and self._admits(c)
            ]
            if not candidates:
                break
            aged = [c for c in candidates if self._is_aged(c, now, queued_at)]
            if aged:
                pick = min(
                    aged,
                    key=lambda c: (
                        queued_at.get(c.scoped_id, now),
                        c.priority,
                        c.project_id,
                        c.command_id,
                    ),
                )
                command = queue.pop_matching(lambda c: c is pick)
            else:
                tenant = min(
                    {c.project_id for c in candidates},
                    key=lambda t: (
                        self.in_flight(t) / self.policy.for_tenant(t).weight,
                        t,
                    ),
                )
                command = queue.pop_matching(
                    lambda c: c.project_id == tenant
                    and c.executable in caps.executables
                    and c.min_cores <= free
                    and self._admits(c)
                )
            if command is None:
                break
            assigned = min(command.preferred_cores, free)
            assigned = max(assigned, command.min_cores)
            workload.append((command, assigned))
            self._note_dispatch(command)
            free -= assigned
            if not batching:
                continue
            key = coalesce_key(command)
            if key is None:
                continue
            group = 1
            while group < caps.batch_capacity and not (
                max_commands is not None and len(workload) >= max_commands
            ):
                rider = queue.pop_matching(
                    lambda c: coalesce_key(c) == key and self._admits(c)
                )
                if rider is None:
                    break
                workload.append((rider, assigned))
                self._note_dispatch(rider)
                group += 1

        # self-check (invariant 12): an aged admissible command that
        # still fits must never remain behind a workload we just built
        if workload:
            for leftover in queue.commands():
                if (
                    self._is_aged(leftover, now, queued_at)
                    and self._admits(leftover)
                    and leftover.executable in caps.executables
                    and leftover.min_cores <= free
                    and not (
                        max_commands is not None
                        and len(workload) >= max_commands
                    )
                ):
                    waited = now - queued_at.get(leftover.scoped_id, now)
                    self.aging_violations += 1
                    self._violations.append(
                        (leftover.project_id, leftover.command_id, waited)
                    )
        return workload

    def pop_violations(self) -> List[Tuple[str, str, float]]:
        """Drain unreported aging violations (server records events)."""
        out, self._violations = self._violations, []
        return out

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant ledger snapshot for status/metrics export."""
        return {
            tenant: {
                "dispatched": ledger.dispatched,
                "released": ledger.released,
                "in_flight": self.in_flight(tenant),
                "peak_in_flight": ledger.peak_in_flight,
                "deferred_total": ledger.deferred_total,
                "deferred_pending": len(self._deferred.get(tenant, ())),
            }
            for tenant, ledger in sorted(self.ledgers.items())
        }
