"""The Copernicus server.

Every server runs identical code (paper section 2); its role — project
server, relay on a cluster head node, or both — emerges from its
connectivity and from whether projects were submitted to it.  A server:

* queues commands and matches them to worker capabilities;
* relays workload requests to "the first server with available
  commands" when its own queue is empty;
* tracks worker heartbeats, declares silent workers dead and requeues
  their in-flight commands from the last reported checkpoint;
* propagates command results back to the project's origin server,
  where the registered result sink (the project controller) consumes
  them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.command import Command
from repro.core.events import EventKind, EventLog
from repro.net.protocol import ANY_SERVER, Message, MessageType
from repro.net.transport import Endpoint, Network
from repro.server.heartbeat import DEFAULT_INTERVAL, HeartbeatMonitor
from repro.server.matching import WorkerCapabilities, build_workload
from repro.server.queue import CommandQueue
from repro.util.errors import SchedulingError


class CopernicusServer(Endpoint):
    """A server node on the overlay."""

    def __init__(
        self,
        name: str,
        network: Network,
        heartbeat_interval: float = DEFAULT_INTERVAL,
    ) -> None:
        super().__init__(name, network)
        self.queue = CommandQueue()
        self.monitor = HeartbeatMonitor(heartbeat_interval)
        #: Worker capabilities by worker name (workers attached here).
        self.worker_caps: Dict[str, WorkerCapabilities] = {}
        #: In-flight commands per worker: {worker: {command_id: Command}}.
        self.assignments: Dict[str, Dict[str, Command]] = {}
        #: Result sinks per locally hosted project.
        self._sinks: Dict[str, Callable[[Command, dict], None]] = {}
        #: Count of commands requeued after worker failures.
        self.requeued_after_failure = 0
        #: Commands whose results already reached their sink here; a
        #: retransmitted or duplicated result is dropped, keeping
        #: completion exactly-once even under message duplication.
        self.completed_ids: Set[str] = set()
        #: Count of duplicate results dropped by the dedup barrier.
        self.duplicates_dropped = 0
        #: Optional audit trail (attached by :class:`ProjectRunner`).
        self.events: Optional[EventLog] = None
        #: Latest virtual timestamp observed in messages/failure checks,
        #: used to stamp events that arrive without their own clock.
        self.clock = 0.0

    def _record(self, kind: EventKind, **details) -> None:
        if self.events is not None:
            self.events.record(self.clock, kind, **details)

    # -- project hosting ---------------------------------------------------

    def host_project(
        self, project_id: str, sink: Callable[[Command, dict], None]
    ) -> None:
        """Register this server as *project_id*'s origin with a result sink."""
        self._sinks[project_id] = sink

    def submit_commands(self, commands: List[Command]) -> None:
        """Queue commands for a project hosted here (stamps origin)."""
        for command in commands:
            if not command.origin_server:
                command.origin_server = self.name
            self.queue.push(command)

    def hosts(self, project_id: str) -> bool:
        """Whether this server is the origin of *project_id*."""
        return project_id in self._sinks

    # -- message handling ---------------------------------------------------

    def handle(self, message: Message) -> Optional[dict]:
        """Dispatch one inbound request."""
        if message.type == MessageType.WORKER_ANNOUNCE:
            return self._on_announce(message)
        if message.type == MessageType.HEARTBEAT:
            return self._on_heartbeat(message)
        if message.type == MessageType.WORKLOAD_REQUEST:
            return self._on_workload_request(message)
        if message.type == MessageType.COMMAND_FETCH:
            return self._on_command_fetch(message)
        if message.type == MessageType.COMMAND_RESULT:
            return self._on_command_result(message)
        if message.type == MessageType.RESULT_FORWARD:
            return self._on_result_forward(message)
        if message.type == MessageType.PROJECT_STATUS:
            return self._on_project_status(message)
        raise SchedulingError(
            f"server {self.name!r} cannot handle {message.type}"
        )

    def _on_announce(self, message: Message) -> dict:
        caps = WorkerCapabilities.from_payload(message.payload)
        self.worker_caps[caps.worker] = caps
        self.assignments.setdefault(caps.worker, {})
        now = float(message.payload.get("now", 0.0))
        self.clock = max(self.clock, now)
        self.monitor.register(caps.worker, now)
        return {"ok": True, "server": self.name}

    def _on_heartbeat(self, message: Message) -> dict:
        worker = message.payload["worker"]
        now = float(message.payload["now"])
        self.clock = max(self.clock, now)
        checkpoints = message.payload.get("checkpoints")
        revived = self.monitor.beat(worker, now, checkpoints=checkpoints)
        if revived:
            self._record(EventKind.WORKER_REVIVED, worker=worker, server=self.name)
        for command_id, checkpoint in (checkpoints or {}).items():
            step = checkpoint.get("step") if isinstance(checkpoint, dict) else None
            self._record(
                EventKind.CHECKPOINT_REPORTED,
                worker=worker,
                command=command_id,
                step=step,
            )
        return {"ok": True}

    def _on_workload_request(self, message: Message) -> dict:
        caps = WorkerCapabilities.from_payload(message.payload)
        workload = build_workload(self.queue, caps)
        if not workload:
            workload = self._fetch_from_peers(caps)
        assigned = self.assignments.setdefault(caps.worker, {})
        out_commands, out_cores = [], []
        for command, cores in workload:
            assigned[command.command_id] = command
            out_commands.append(command.to_payload())
            out_cores.append(cores)
        return {"commands": out_commands, "cores": out_cores}

    def _fetch_from_peers(
        self, caps: WorkerCapabilities
    ) -> List[Tuple[Command, int]]:
        """Ask the overlay for commands when the local queue is empty."""
        try:
            response = self.send(
                ANY_SERVER, MessageType.COMMAND_FETCH, caps.to_payload()
            )
        except Exception:
            return []
        return [
            (Command.from_payload(p), int(c))
            for p, c in zip(response.get("commands", []), response.get("cores", []))
        ]

    def _on_command_fetch(self, message: Message) -> Optional[dict]:
        caps = WorkerCapabilities.from_payload(message.payload)
        workload = build_workload(self.queue, caps)
        if not workload:
            return None  # keep walking the overlay
        return {
            "commands": [c.to_payload() for c, _ in workload],
            "cores": [k for _, k in workload],
        }

    def _on_command_result(self, message: Message) -> dict:
        worker = message.payload["worker"]
        command = Command.from_payload(message.payload["command"])
        result = message.payload["result"]
        self.assignments.get(worker, {}).pop(command.command_id, None)
        self.monitor.clear_checkpoint(worker, command.command_id)
        self._route_result(command, result)
        return {"ok": True}

    def _on_result_forward(self, message: Message) -> dict:
        command = Command.from_payload(message.payload["command"])
        result = message.payload["result"]
        self._route_result(command, result)
        return {"ok": True}

    def _route_result(self, command: Command, result: dict) -> None:
        if command.project_id in self._sinks:
            if command.command_id in self.completed_ids:
                # a retried/duplicated COMMAND_RESULT, or a command that
                # was falsely requeued and finished twice: exactly-once
                self.duplicates_dropped += 1
                self._record(
                    EventKind.DUPLICATE_RESULT_DROPPED,
                    command=command.command_id,
                    server=self.name,
                )
                return
            self.completed_ids.add(command.command_id)
            self._sinks[command.project_id](command, result)
            return
        origin = command.origin_server
        if not origin or origin == self.name:
            raise SchedulingError(
                f"no sink for project {command.project_id!r} on {self.name!r}"
            )
        self.send(
            origin,
            MessageType.RESULT_FORWARD,
            {"command": command.to_payload(), "result": result},
        )

    def _on_project_status(self, message: Message) -> dict:
        return {
            "server": self.name,
            "queued": len(self.queue),
            "queued_ids": [c.command_id for c in self.queue.commands()],
            "workers": self.monitor.workers(),
            "in_flight": {
                w: sorted(cmds) for w, cmds in self.assignments.items() if cmds
            },
        }

    # -- failure handling --------------------------------------------------

    def check_failures(self, now: float) -> List[str]:
        """Detect dead workers; requeue their commands from checkpoints.

        Returns the names of workers newly declared dead.
        """
        self.clock = max(self.clock, now)
        dead = self.monitor.check(now)
        for worker in dead:
            self._record(EventKind.WORKER_DEAD, worker=worker, server=self.name)
            in_flight = self.assignments.get(worker, {})
            for command_id, command in list(in_flight.items()):
                checkpoint = self.monitor.checkpoint_for(worker, command_id)
                if checkpoint is not None:
                    command.checkpoint = checkpoint
                self.queue.push(command)
                self.requeued_after_failure += 1
                self._record(
                    EventKind.COMMAND_REQUEUED,
                    worker=worker,
                    command=command_id,
                    has_checkpoint=checkpoint is not None,
                )
            self.assignments[worker] = {}
        return dead
