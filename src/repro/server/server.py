"""The Copernicus server.

Every server runs identical code (paper section 2); its role — project
server, relay on a cluster head node, or both — emerges from its
connectivity and from whether projects were submitted to it.  A server:

* queues commands and matches them to worker capabilities;
* relays workload requests to "the first server with available
  commands" when its own queue is empty;
* tracks worker heartbeats, declares silent workers dead and requeues
  their in-flight commands from the last reported checkpoint;
* propagates command results back to the project's origin server,
  where the registered result sink (the project controller) consumes
  them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.command import Command
from repro.core.events import EventKind, EventLog
from repro.net.protocol import ANY_SERVER, Message, MessageType
from repro.net.transport import Endpoint, Network
from repro.server.heartbeat import DEFAULT_INTERVAL, HeartbeatMonitor
from repro.server.matching import WorkerCapabilities, build_workload
from repro.server.queue import CommandQueue
from repro.server.wal import ServerJournal
from repro.util.errors import (
    SchedulingError,
    TransientCommunicationError,
    WildcardUnclaimedError,
)


class CopernicusServer(Endpoint):
    """A server node on the overlay."""

    def __init__(
        self,
        name: str,
        network: Network,
        heartbeat_interval: float = DEFAULT_INTERVAL,
    ) -> None:
        super().__init__(name, network)
        self.queue = CommandQueue()
        self.monitor = HeartbeatMonitor(heartbeat_interval)
        #: Worker capabilities by worker name (workers attached here).
        self.worker_caps: Dict[str, WorkerCapabilities] = {}
        #: In-flight commands per worker: {worker: {command_id: Command}}.
        self.assignments: Dict[str, Dict[str, Command]] = {}
        #: Result sinks per locally hosted project.
        self._sinks: Dict[str, Callable[[Command, dict], None]] = {}
        #: Count of commands requeued after worker failures.
        self.requeued_after_failure = 0
        #: Commands whose results already reached their sink here; a
        #: retransmitted or duplicated result is dropped, keeping
        #: completion exactly-once even under message duplication.
        self.completed_ids: Set[str] = set()
        #: Count of duplicate results dropped by the dedup barrier.
        self.duplicates_dropped = 0
        #: Optional audit trail (attached by :class:`ProjectRunner`).
        self.events: Optional[EventLog] = None
        #: Latest virtual timestamp observed in messages/failure checks,
        #: used to stamp events that arrive without their own clock.
        self.clock = 0.0
        #: Optional durable journal (see :meth:`attach_journal`).  When
        #: set, every state transition of a hosted project — issue,
        #: lease, checkpoint, result, requeue — is journaled *before*
        #: it is acknowledged, so a restarted server can resume.
        self.journal: Optional[ServerJournal] = None

    def _record(self, kind: EventKind, **details) -> None:
        if self.events is not None:
            self.events.record(self.clock, kind, **details)

    # -- durability --------------------------------------------------------

    def attach_journal(self, journal: ServerJournal) -> None:
        """Make this server journal its hosted projects' transitions."""
        self.journal = journal

    def _journal_for(self, project_id: str):
        """The project's journal, or None when not journaling/hosting."""
        if self.journal is None or project_id not in self._sinks:
            return None
        return self.journal.project(project_id)

    # -- project hosting ---------------------------------------------------

    def host_project(
        self, project_id: str, sink: Callable[[Command, dict], None]
    ) -> None:
        """Register this server as *project_id*'s origin with a result sink."""
        self._sinks[project_id] = sink

    def submit_commands(self, commands: List[Command]) -> None:
        """Queue commands for a project hosted here (stamps origin).

        With a journal attached the issuance is durable before any
        command becomes visible to workers: a server that crashes right
        after this call requeues them on recovery.
        """
        for command in commands:
            if not command.origin_server:
                command.origin_server = self.name
        if self.journal is not None:
            by_project: Dict[str, List[Command]] = {}
            for command in commands:
                by_project.setdefault(command.project_id, []).append(command)
            for project_id, group in by_project.items():
                journal = self._journal_for(project_id)
                if journal is not None:
                    journal.record_issued(group)
        for command in commands:
            self.queue.push(command)

    def restore_commands(
        self,
        project_id: str,
        commands: List[Command],
        completed_ids: Set[str],
    ) -> None:
        """Re-adopt a recovered project's state after a server restart.

        Seeds the exactly-once barrier with the journaled completions
        (so a late duplicate of a pre-crash result is still dropped)
        and requeues the outstanding commands *without* re-journaling
        them as issued — their issuance is already on disk.
        """
        self.completed_ids.update(completed_ids)
        for command in commands:
            if not command.origin_server:
                command.origin_server = self.name
            self.queue.push(command)

    def hosts(self, project_id: str) -> bool:
        """Whether this server is the origin of *project_id*."""
        return project_id in self._sinks

    # -- message handling ---------------------------------------------------

    def handle(self, message: Message) -> Optional[dict]:
        """Dispatch one inbound request."""
        if message.type == MessageType.WORKER_ANNOUNCE:
            return self._on_announce(message)
        if message.type == MessageType.HEARTBEAT:
            return self._on_heartbeat(message)
        if message.type == MessageType.WORKLOAD_REQUEST:
            return self._on_workload_request(message)
        if message.type == MessageType.COMMAND_FETCH:
            return self._on_command_fetch(message)
        if message.type == MessageType.COMMAND_RESULT:
            return self._on_command_result(message)
        if message.type == MessageType.RESULT_FORWARD:
            return self._on_result_forward(message)
        if message.type == MessageType.PROJECT_STATUS:
            return self._on_project_status(message)
        raise SchedulingError(
            f"server {self.name!r} cannot handle {message.type}"
        )

    def _on_announce(self, message: Message) -> dict:
        caps = WorkerCapabilities.from_payload(message.payload)
        self.worker_caps[caps.worker] = caps
        self.assignments.setdefault(caps.worker, {})
        now = float(message.payload.get("now", 0.0))
        self.clock = max(self.clock, now)
        self.monitor.register(caps.worker, now)
        return {"ok": True, "server": self.name}

    def _on_heartbeat(self, message: Message) -> dict:
        worker = message.payload["worker"]
        now = float(message.payload["now"])
        self.clock = max(self.clock, now)
        checkpoints = message.payload.get("checkpoints")
        revived = self.monitor.beat(worker, now, checkpoints=checkpoints)
        if revived:
            self._record(EventKind.WORKER_REVIVED, worker=worker, server=self.name)
        for command_id, checkpoint in (checkpoints or {}).items():
            command = self.assignments.get(worker, {}).get(command_id)
            if command is not None and isinstance(checkpoint, dict):
                journal = self._journal_for(command.project_id)
                if journal is not None:
                    # durable before the ack: a restarted server requeues
                    # this command from the acknowledged checkpoint
                    journal.record_checkpoint(worker, command_id, checkpoint)
            step = checkpoint.get("step") if isinstance(checkpoint, dict) else None
            self._record(
                EventKind.CHECKPOINT_REPORTED,
                worker=worker,
                command=command_id,
                step=step,
            )
        return {"ok": True}

    def _on_workload_request(self, message: Message) -> dict:
        caps = WorkerCapabilities.from_payload(message.payload)
        workload = build_workload(self.queue, caps)
        if not workload:
            workload = self._fetch_from_peers(caps)
        if self.journal is not None:
            leases: Dict[str, List[str]] = {}
            for command, _ in workload:
                leases.setdefault(command.project_id, []).append(
                    command.command_id
                )
            for project_id, command_ids in leases.items():
                journal = self._journal_for(project_id)
                if journal is not None:
                    # lease is durable before the workload response
                    journal.record_assigned(caps.worker, command_ids)
        assigned = self.assignments.setdefault(caps.worker, {})
        out_commands, out_cores = [], []
        for command, cores in workload:
            assigned[command.command_id] = command
            out_commands.append(command.to_payload())
            out_cores.append(cores)
        return {"commands": out_commands, "cores": out_cores}

    def _fetch_from_peers(
        self, caps: WorkerCapabilities
    ) -> List[Tuple[Command, int]]:
        """Ask the overlay for commands when the local queue is empty.

        "No server has work" (the wildcard walked the whole overlay
        unclaimed) is an expected, quiet outcome.  Transient transport
        failures are recorded as ``PEER_FETCH_FAILED`` and the worker
        idles this cycle.  Permanent errors (unknown endpoints, broken
        trust) indicate a misconfigured overlay and propagate.
        """
        try:
            response = self.send(
                ANY_SERVER, MessageType.COMMAND_FETCH, caps.to_payload()
            )
        except WildcardUnclaimedError:
            return []
        except TransientCommunicationError as exc:
            self._record(
                EventKind.PEER_FETCH_FAILED,
                server=self.name,
                worker=caps.worker,
                error=type(exc).__name__,
            )
            return []
        return [
            (Command.from_payload(p), int(c))
            for p, c in zip(response.get("commands", []), response.get("cores", []))
        ]

    def _on_command_fetch(self, message: Message) -> Optional[dict]:
        caps = WorkerCapabilities.from_payload(message.payload)
        workload = build_workload(self.queue, caps)
        if not workload:
            return None  # keep walking the overlay
        return {
            "commands": [c.to_payload() for c, _ in workload],
            "cores": [k for _, k in workload],
        }

    def _on_command_result(self, message: Message) -> dict:
        worker = message.payload["worker"]
        command = Command.from_payload(message.payload["command"])
        result = message.payload["result"]
        # route FIRST: if forwarding to the origin fails transiently the
        # error propagates to the worker (which parks and resubmits)
        # while the assignment and checkpoint stay intact — clearing
        # them before a failed forward would drop the result with no
        # requeue path left.
        self._route_result(command, result)
        self.assignments.get(worker, {}).pop(command.command_id, None)
        self.monitor.clear_checkpoint(worker, command.command_id)
        return {"ok": True}

    def _on_result_forward(self, message: Message) -> dict:
        command = Command.from_payload(message.payload["command"])
        result = message.payload["result"]
        self._route_result(command, result)
        return {"ok": True}

    def _route_result(self, command: Command, result: dict) -> None:
        if command.project_id in self._sinks:
            if command.command_id in self.completed_ids:
                # a retried/duplicated COMMAND_RESULT, or a command that
                # was falsely requeued and finished twice: exactly-once
                self.duplicates_dropped += 1
                self._record(
                    EventKind.DUPLICATE_RESULT_DROPPED,
                    command=command.command_id,
                    server=self.name,
                )
                return
            journal = self._journal_for(command.project_id)
            if journal is not None:
                # durable before the sink applies it: a crash after this
                # point replays the result instead of losing it
                journal.record_result(command, result)
            self.completed_ids.add(command.command_id)
            self._sinks[command.project_id](command, result)
            return
        origin = command.origin_server
        if not origin or origin == self.name:
            raise SchedulingError(
                f"no sink for project {command.project_id!r} on {self.name!r}"
            )
        self.send(
            origin,
            MessageType.RESULT_FORWARD,
            {"command": command.to_payload(), "result": result},
        )

    def _on_project_status(self, message: Message) -> dict:
        return {
            "server": self.name,
            "queued": len(self.queue),
            "queued_ids": [c.command_id for c in self.queue.commands()],
            "workers": self.monitor.workers(),
            "in_flight": {
                w: sorted(cmds) for w, cmds in self.assignments.items() if cmds
            },
        }

    # -- failure handling --------------------------------------------------

    def check_failures(self, now: float) -> List[str]:
        """Detect dead workers; requeue their commands from checkpoints.

        Returns the names of workers newly declared dead.
        """
        self.clock = max(self.clock, now)
        dead = self.monitor.check(now)
        for worker in dead:
            self._record(EventKind.WORKER_DEAD, worker=worker, server=self.name)
            in_flight = self.assignments.get(worker, {})
            if self.journal is not None and in_flight:
                requeues: Dict[str, List[str]] = {}
                for command_id, command in in_flight.items():
                    requeues.setdefault(command.project_id, []).append(
                        command_id
                    )
                for project_id, command_ids in requeues.items():
                    journal = self._journal_for(project_id)
                    if journal is not None:
                        journal.record_requeued(worker, command_ids)
            for command_id, command in list(in_flight.items()):
                checkpoint = self.monitor.checkpoint_for(worker, command_id)
                if checkpoint is not None:
                    command.checkpoint = checkpoint
                self.queue.push(command)
                self.requeued_after_failure += 1
                self._record(
                    EventKind.COMMAND_REQUEUED,
                    worker=worker,
                    command=command_id,
                    has_checkpoint=checkpoint is not None,
                )
            self.assignments[worker] = {}
        return dead
