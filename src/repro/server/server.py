"""The Copernicus server.

Every server runs identical code (paper section 2); its role — project
server, relay on a cluster head node, or both — emerges from its
connectivity and from whether projects were submitted to it.  A server:

* queues commands and matches them to worker capabilities;
* relays workload requests to "the first server with available
  commands" when its own queue is empty;
* tracks worker heartbeats, declares silent workers dead and requeues
  their in-flight commands from the last reported checkpoint;
* propagates command results back to the project's origin server,
  where the registered result sink (the project controller) consumes
  them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.command import Command, scoped_command_id, split_scoped_id
from repro.core.events import EventKind, EventLog
from repro.net.protocol import ANY_SERVER, Message, MessageType
from repro.net.transport import Endpoint, Network
from repro.obs.trace import SpanContext, trace_id_for
from repro.server.fairshare import FairShareScheduler
from repro.server.health import HealthPolicy, HealthRegistry
from repro.server.heartbeat import DEFAULT_INTERVAL, HeartbeatMonitor
from repro.server.lease import LeasePolicy, LeaseTracker
from repro.server.matching import WorkerCapabilities, build_workload
from repro.server.queue import CommandQueue
from repro.server.wal import ServerJournal
from repro.util.errors import (
    FencedError,
    SchedulingError,
    TransientCommunicationError,
    WildcardUnclaimedError,
)


class CopernicusServer(Endpoint):
    """A server node on the overlay."""

    def __init__(
        self,
        name: str,
        network: Network,
        heartbeat_interval: float = DEFAULT_INTERVAL,
        lease_policy: Optional[LeasePolicy] = None,
        health_policy: Optional[HealthPolicy] = None,
    ) -> None:
        super().__init__(name, network)
        self.queue = CommandQueue()
        self.monitor = HeartbeatMonitor(heartbeat_interval)
        #: Deadline derivation for issued commands.  The default floor
        #: is two death-detection windows, so a worker is never called
        #: a straggler faster than it could be declared dead.
        self.lease_policy = lease_policy or LeasePolicy(
            min_seconds=max(240.0, 4.0 * heartbeat_interval)
        )
        #: Outstanding (worker, command) leases with deadlines.
        self.leases = LeaseTracker()
        #: Per-worker EWMA health scores, probation and quarantine.
        self.health = HealthRegistry(health_policy)
        #: Commands under speculative re-execution: {scoped command
        #: key: the straggling worker whose late result loses the race}.
        self.speculated: Dict[str, str] = {}
        #: Liveness accounting.
        self.stragglers_detected = 0
        self.speculations_started = 0
        self.speculations_won = 0
        self.speculations_lost = 0
        #: Workload requests refused because the worker is quarantined.
        self.workloads_denied = 0
        #: Worker capabilities by worker name (workers attached here).
        self.worker_caps: Dict[str, WorkerCapabilities] = {}
        #: In-flight commands per worker, keyed by the *scoped* command
        #: key (two tenants may both issue a ``gen0_r0``):
        #: {worker: {project::command: Command}}.
        self.assignments: Dict[str, Dict[str, Command]] = {}
        #: Result sinks per locally hosted project.
        self._sinks: Dict[str, Callable[[Command, dict], None]] = {}
        #: Count of commands requeued after worker failures.
        self.requeued_after_failure = 0
        #: Scoped keys of commands whose results already reached their
        #: sink here; a retransmitted or duplicated result is dropped,
        #: keeping completion exactly-once even under message
        #: duplication — and per tenant, since the keys are scoped.
        self.completed_ids: Set[str] = set()
        #: Count of duplicate results dropped by the dedup barrier.
        self.duplicates_dropped = 0
        #: Optional audit trail (attached by :class:`ProjectRunner`).
        self.events: Optional[EventLog] = None
        #: Latest virtual timestamp observed in messages/failure checks,
        #: used to stamp events that arrive without their own clock.
        self.clock = 0.0
        #: Optional durable journal (see :meth:`attach_journal`).  When
        #: set, every state transition of a hosted project — issue,
        #: lease, checkpoint, result, requeue — is journaled *before*
        #: it is acknowledged, so a restarted server can resume.
        self.journal: Optional[ServerJournal] = None
        #: Virtual enqueue time per queued command, by scoped key
        #: (feeds the ``queue.wait`` spans and the queue-wait histogram).
        self._queued_at: Dict[str, float] = {}
        #: Optional multi-tenant scheduler (see :meth:`attach_fairshare`).
        #: ``None`` keeps the classic single-queue matching untouched.
        self.fairshare: Optional[FairShareScheduler] = None
        #: Route overrides: {project_id: current origin server}.  A
        #: migrated project's commands still carry the dead shard's
        #: ``origin_server`` stamp; this table (flipped atomically by
        #: the failover driver) wins over the stamp when forwarding,
        #: and lets a stale peer answer a forward with a retryable
        #: redirect instead of a dead-end error.
        self.routes: Dict[str, str] = {}
        #: Ownership epochs: {project_id: the newest epoch this server
        #: knows}.  For hosted projects this is the authoritative
        #: regime every effectful write is fenced against; issued
        #: commands are stamped with it.  Absent entries mean epoch 0
        #: (first ownership), so epoch-unaware deployments see no
        #: fencing at all.
        self.epochs: Dict[str, int] = {}
        #: Demotion reports for projects this server lost to a newer
        #: epoch: {project_id: report dict}.  A fenced project is no
        #: longer hosted, dispatched or journaled here.
        self.fenced: Dict[str, dict] = {}
        #: Stale-epoch writes this server rejected as current owner.
        self.fencing_rejections = 0
        self.leases.bind_metrics(self.obs.metrics, self.name)
        self.health.bind_metrics(self.obs.metrics, self.name)

    def _record(self, kind: EventKind, **details) -> None:
        if self.events is not None:
            self.events.record(self.clock, kind, **details)

    def _count(self, name: str, amount: float = 1.0, help: str = "", **labels) -> None:
        """Increment a server-labelled counter on the shared registry."""
        self.obs.metrics.inc(name, amount, help=help, server=self.name, **labels)

    def _trace_ctx(self, command: Command) -> Dict:
        """The command's trace context, minted deterministically if absent."""
        if not command.trace or not command.trace.get("trace_id"):
            command.trace = {
                "trace_id": trace_id_for(command.project_id, command.command_id)
            }
        return command.trace

    # -- durability --------------------------------------------------------

    def attach_journal(self, journal: ServerJournal) -> None:
        """Make this server journal its hosted projects' transitions."""
        self.journal = journal

    def _journal_for(self, project_id: str):
        """The project's journal, or None when not journaling/hosting."""
        if self.journal is None or project_id not in self._sinks:
            return None
        return self.journal.project(project_id)

    # -- multi-tenancy -----------------------------------------------------

    def attach_fairshare(self, scheduler: FairShareScheduler) -> None:
        """Route dispatch and admission through a fair-share scheduler.

        Quotas, weighted fairness, aging and backpressure apply from
        the next submission/workload on; a server without a scheduler
        behaves exactly as before.
        """
        self.fairshare = scheduler

    def _build_workload(
        self, caps: WorkerCapabilities, max_commands: Optional[int] = None
    ):
        """Local workload construction: fair-share when attached."""
        if self.fairshare is None:
            return build_workload(self.queue, caps, max_commands=max_commands)
        workload = self.fairshare.build(
            self.queue,
            caps,
            now=self.clock,
            queued_at=self._queued_at,
            max_commands=max_commands,
        )
        for tenant, command_id, waited in self.fairshare.pop_violations():
            self._count(
                "repro_server_aging_violations_total",
                help="Aged admissible commands bypassed by the scheduler "
                "(must stay zero; invariant 12).",
                project=tenant,
            )
            self._record(
                EventKind.AGING_VIOLATED,
                command=command_id,
                project_id=tenant,
                server=self.name,
                waited=round(waited, 3),
            )
        return workload

    def _drain_deferred(self) -> None:
        """Admit deferred submissions whose tenants drained below the
        backpressure limit (deterministic: tenant name order, FIFO)."""
        if self.fairshare is None:
            return
        for command in self.fairshare.drain(self.queue):
            self._queued_at[command.scoped_id] = self.clock
            self.queue.push(command)
            self._count(
                "repro_server_admissions_released_total",
                help="Deferred commands admitted after queues drained.",
                project=command.project_id,
            )
            self._record(
                EventKind.ADMISSION_RELEASED,
                command=command.command_id,
                project_id=command.project_id,
                server=self.name,
            )

    # -- project hosting ---------------------------------------------------

    def host_project(
        self, project_id: str, sink: Callable[[Command, dict], None]
    ) -> None:
        """Register this server as *project_id*'s origin with a result sink."""
        self._sinks[project_id] = sink

    def submit_commands(self, commands: List[Command]) -> None:
        """Queue commands for a project hosted here (stamps origin).

        With a journal attached the issuance is durable before any
        command becomes visible to workers: a server that crashes right
        after this call requeues them on recovery.
        """
        for command in commands:
            if command.project_id in self.fenced:
                # this server lost the project to a newer owner; a
                # late controller submission here is a stale writer
                raise FencedError(
                    f"project {command.project_id!r} is fenced on "
                    f"{self.name!r} (owned by "
                    f"{self.fenced[command.project_id]['owner']!r} at epoch "
                    f"{self.fenced[command.project_id]['epoch']})",
                    project_id=command.project_id,
                    stale_epoch=self.fenced[command.project_id]["stale_epoch"],
                    current_epoch=self.fenced[command.project_id]["epoch"],
                )
            if not command.origin_server:
                command.origin_server = self.name
            # stamp the ownership regime the command is issued under;
            # every downstream write derived from it is fenced on this
            command.epoch = self.epochs.get(command.project_id, 0)
        if self.journal is not None:
            by_project: Dict[str, List[Command]] = {}
            for command in commands:
                by_project.setdefault(command.project_id, []).append(command)
            for project_id, group in by_project.items():
                journal = self._journal_for(project_id)
                if journal is not None:
                    journal.record_issued(group)
        for command in commands:
            trace_id = trace_id_for(command.project_id, command.command_id)
            issue = self.obs.tracer.record(
                "command.issue",
                self.clock,
                self.clock,
                trace_id,
                component=self.name,
                command=command.command_id,
            )
            command.trace = {"trace_id": trace_id, "span_id": issue.span_id}
            if self.fairshare is not None and self.fairshare.should_defer(
                command, self.queue
            ):
                # journaled (durable) but held back: the tenant's queue
                # is at its backpressure limit; released FIFO by
                # _drain_deferred as the queue drains
                self.fairshare.defer(command)
                self._count(
                    "repro_server_admissions_deferred_total",
                    help="Submissions deferred by queue-depth backpressure.",
                    project=command.project_id,
                )
                self._record(
                    EventKind.ADMISSION_DEFERRED,
                    command=command.command_id,
                    project_id=command.project_id,
                    server=self.name,
                )
                continue
            self._queued_at[command.scoped_id] = self.clock
            self.queue.push(command)
        self._count(
            "repro_server_commands_submitted_total",
            amount=len(commands),
            help="Commands submitted to this server by hosted controllers.",
        )

    def restore_commands(
        self,
        project_id: str,
        commands: List[Command],
        completed_ids: Set[str],
        epoch: Optional[int] = None,
    ) -> None:
        """Re-adopt a recovered project's state after a server restart.

        Seeds the exactly-once barrier with the journaled completions
        (so a late duplicate of a pre-crash result is still dropped)
        and requeues the outstanding commands *without* re-journaling
        them as issued — their issuance is already on disk.

        When *epoch* is given (the journal's recovered ownership
        epoch), it is adopted first — validated against anything this
        server already knows and journaled — and the restored commands
        are re-stamped with it, so work reissued by the new owner is
        distinguishable from the dead regime's in-flight copies.
        """
        if epoch is not None:
            self.adopt_epoch(project_id, int(epoch))
        current = self.epochs.get(project_id, 0)
        self.completed_ids.update(
            scoped_command_id(project_id, command_id)
            for command_id in completed_ids
        )
        for command in commands:
            if not command.origin_server:
                command.origin_server = self.name
            command.epoch = current
            self._trace_ctx(command)
            self._queued_at[command.scoped_id] = self.clock
            self.queue.push(command)
        self._count(
            "repro_server_commands_restored_total",
            amount=len(commands),
            help="Commands requeued from the journal after a restart.",
        )

    # -- ownership epochs (fencing) ----------------------------------------

    def adopt_epoch(self, project_id: str, epoch: int) -> None:
        """Adopt *epoch* as *project_id*'s current ownership regime.

        Epochs only move forward: adopting the known epoch again is an
        idempotent no-op (a plain restart), a newer epoch is journaled
        before any command is stamped with it, and an *older* one —
        a resurrected owner trying to re-adopt a project it lost —
        raises :class:`FencedError`.
        """
        epoch = int(epoch)
        current = self.epochs.get(project_id, 0)
        if epoch < current:
            self.fencing_rejections += 1
            self._count(
                "repro_fencing_rejections_total",
                help="Stale-epoch writes rejected by the project's "
                "current owner, by path.",
                project=project_id,
                path="adopt",
            )
            self._record(
                EventKind.FENCING_REJECTED,
                command="",
                project_id=project_id,
                server=self.name,
                path="adopt",
                stale_epoch=epoch,
                current_epoch=current,
            )
            raise FencedError(
                f"cannot adopt epoch {epoch} for project {project_id!r} "
                f"on {self.name!r}: current epoch is {current}",
                project_id=project_id,
                stale_epoch=epoch,
                current_epoch=current,
            )
        if epoch == current:
            self.epochs[project_id] = epoch
            return
        self.epochs[project_id] = epoch
        journal = self._journal_for(project_id)
        if journal is not None:
            # durable before any command carries the new stamp: a
            # restarted owner resumes under the same regime
            journal.record_epoch(epoch)
        self._count(
            "repro_epoch_bumps_total",
            help="Ownership epoch adoptions (one per regime change).",
            project=project_id,
        )
        self._record(
            EventKind.EPOCH_BUMPED,
            project_id=project_id,
            server=self.name,
            epoch=epoch,
            previous=current,
        )

    def _reject_fenced(self, command: Command, current: int, path: str) -> None:
        """Count and record one stale-epoch write rejection."""
        self.fencing_rejections += 1
        self._count(
            "repro_fencing_rejections_total",
            help="Stale-epoch writes rejected by the project's "
            "current owner, by path.",
            project=command.project_id,
            path=path,
        )
        self._record(
            EventKind.FENCING_REJECTED,
            command=command.command_id,
            project_id=command.project_id,
            server=self.name,
            path=path,
            stale_epoch=int(command.epoch),
            current_epoch=int(current),
        )

    def demote_project(self, project_id: str, epoch: int, owner: str) -> dict:
        """Stand down as *project_id*'s owner: it now lives at *owner*
        under *epoch*.

        The zombie path: a partitioned shard heals and learns — from a
        probe's fence table or its first rejected write — that the
        project was migrated away under a newer epoch while it was
        unreachable.  The shard stops dispatching the project, voids
        its leases, forwards its locally-journaled completions to the
        new owner still stamped with the dead regime's epoch (the
        owner's dedup barrier drops what it already has; its fence
        rejects and counts the rest — either way nothing is applied
        twice), releases the project's journal, and flips its route
        table.  Idempotent; returns the demotion report.
        """
        if project_id in self.fenced:
            return self.fenced[project_id]
        epoch = int(epoch)
        stale = self.epochs.get(project_id, 0)
        # 1. stop dispatch: purge the project's queued commands
        purged = self.queue.remove_project(project_id)
        for key in [
            k for k in self._queued_at if split_scoped_id(k)[0] == project_id
        ]:
            del self._queued_at[key]
        # 2. void leases and in-flight assignments — they belong to the
        #    dead regime; any results they still produce will be fenced
        voided = 0
        for worker, assigned in self.assignments.items():
            for key in [
                k for k in assigned if split_scoped_id(k)[0] == project_id
            ]:
                command = assigned.pop(key)
                self.leases.clear(worker, key)
                if self.fairshare is not None:
                    self.fairshare.release(command)
                self.monitor.clear_command(key)
                self.speculated.pop(key, None)
                voided += 1
        # 3. forward locally-journaled completions to the new owner,
        #    still carrying their stale stamps: exactly-once is decided
        #    there (dedup drop or fencing rejection), never here
        journal = self._journal_for(project_id)
        results = list(journal.state.results) if journal is not None else []
        forwarded = rejected = duplicates = 0
        for command, result in results:
            forwarded += 1
            try:
                response = self.send(
                    owner,
                    MessageType.RESULT_FORWARD,
                    {"command": command.to_payload(), "result": result},
                )
            except FencedError:
                rejected += 1
                continue
            except TransientCommunicationError:
                # the owner is momentarily unreachable; the completion
                # is still in the shipped journal, so nothing is lost
                continue
            if response.get("duplicate"):
                duplicates += 1
        # 4. release ownership: unhost, free the journal handle, flip
        #    the route so anything still arriving here is redirected
        self._sinks.pop(project_id, None)
        if self.journal is not None:
            self.journal.release(project_id)
        self.routes[project_id] = owner
        self.epochs[project_id] = epoch
        report = {
            "project_id": project_id,
            "server": self.name,
            "owner": owner,
            "stale_epoch": stale,
            "epoch": epoch,
            "queue_purged": purged,
            "leases_voided": voided,
            "results_forwarded": forwarded,
            "forwards_rejected": rejected,
            "forwards_duplicate": duplicates,
        }
        self.fenced[project_id] = report
        self._count(
            "repro_projects_fenced_total",
            help="Projects this server stood down from after losing "
            "ownership to a newer epoch.",
            project=project_id,
        )
        self._record(
            EventKind.PROJECT_FENCED,
            project_id=project_id,
            server=self.name,
            owner=owner,
            stale_epoch=stale,
            epoch=epoch,
            queue_purged=purged,
            leases_voided=voided,
            results_forwarded=forwarded,
            forwards_rejected=rejected,
            forwards_duplicate=duplicates,
        )
        return report

    def update_route(self, project_id: str, server: str) -> None:
        """Point *project_id*'s results at *server* (post-migration)."""
        self.routes[project_id] = server

    def hosts(self, project_id: str) -> bool:
        """Whether this server is the origin of *project_id*."""
        return project_id in self._sinks

    # -- message handling ---------------------------------------------------

    def handle(self, message: Message) -> Optional[dict]:
        """Dispatch one inbound request."""
        if message.type == MessageType.WORKER_ANNOUNCE:
            return self._on_announce(message)
        if message.type == MessageType.HEARTBEAT:
            return self._on_heartbeat(message)
        if message.type == MessageType.WORKLOAD_REQUEST:
            return self._on_workload_request(message)
        if message.type == MessageType.COMMAND_FETCH:
            return self._on_command_fetch(message)
        if message.type == MessageType.COMMAND_RESULT:
            return self._on_command_result(message)
        if message.type == MessageType.RESULT_FORWARD:
            return self._on_result_forward(message)
        if message.type == MessageType.PROJECT_STATUS:
            return self._on_project_status(message)
        raise SchedulingError(
            f"server {self.name!r} cannot handle {message.type}"
        )

    def _on_announce(self, message: Message) -> dict:
        caps = WorkerCapabilities.from_payload(message.payload)
        self.worker_caps[caps.worker] = caps
        self.assignments.setdefault(caps.worker, {})
        now = float(message.payload.get("now", 0.0))
        self.clock = max(self.clock, now)
        revived = self.monitor.register(caps.worker, now)
        if revived:
            # a re-announce after a declared death is a flap: record
            # the revival (so requeue accounting stays consistent) and
            # penalize the worker's health score
            self._record(EventKind.WORKER_REVIVED, worker=caps.worker, server=self.name)
            self._observe_failure(caps.worker, "flap")
        return {"ok": True, "server": self.name}

    def _on_heartbeat(self, message: Message) -> dict:
        worker = message.payload["worker"]
        now = float(message.payload["now"])
        self.clock = max(self.clock, now)
        checkpoints = message.payload.get("checkpoints")
        revived = self.monitor.beat(worker, now, checkpoints=checkpoints)
        if revived:
            self._record(EventKind.WORKER_REVIVED, worker=worker, server=self.name)
            self._observe_failure(worker, "flap")
        for key, checkpoint in (checkpoints or {}).items():
            project_id, command_id = split_scoped_id(key)
            command = self.assignments.get(worker, {}).get(key)
            if (
                command is not None
                and int(command.epoch) < self.epochs.get(command.project_id, 0)
            ):
                # a checkpoint for a dead regime's command: never
                # journal or acknowledge it — the new owner resumed
                # the command under a fresher epoch elsewhere
                self._reject_fenced(
                    command,
                    self.epochs.get(command.project_id, 0),
                    path="checkpoint",
                )
                continue
            if command is not None and isinstance(checkpoint, dict):
                journal = self._journal_for(command.project_id)
                if journal is not None:
                    # durable before the ack: a restarted server requeues
                    # this command from the acknowledged checkpoint
                    # (journals are per project, so the plain id is the
                    # right key there)
                    journal.record_checkpoint(
                        worker, command.command_id, checkpoint
                    )
            step = checkpoint.get("step") if isinstance(checkpoint, dict) else None
            self._record(
                EventKind.CHECKPOINT_REPORTED,
                worker=worker,
                command=command_id,
                project_id=project_id,
                step=step,
            )
            self._count(
                "repro_server_checkpoints_total",
                help="Checkpoints acknowledged from worker heartbeats.",
            )
            if command is not None:
                ctx = self._trace_ctx(command)
                self.obs.tracer.record(
                    "checkpoint.ack",
                    now,
                    now,
                    ctx["trace_id"],
                    component=self.name,
                    parent_id=ctx.get("span_id"),
                    command=command_id,
                    worker=worker,
                    step=step,
                )
        return {"ok": True}

    def _on_workload_request(self, message: Message) -> dict:
        caps = WorkerCapabilities.from_payload(message.payload)
        now = float(message.payload.get("now", self.clock))
        self.clock = max(self.clock, now)
        allowed, max_commands, transition = self.health.admit(
            caps.worker, self.clock
        )
        if transition == "readmitted":
            self._record(
                EventKind.WORKER_READMITTED,
                worker=caps.worker,
                server=self.name,
                score=round(self.health.score(caps.worker), 4),
            )
        if not allowed:
            self.workloads_denied += 1
            self._count(
                "repro_server_workloads_denied_total",
                help="Workload requests refused (worker quarantined).",
            )
            return {"commands": [], "cores": []}
        workload = self._build_workload(caps, max_commands=max_commands)
        if not workload:
            workload = self._fetch_from_peers(caps, max_commands=max_commands)
        admitted = []
        for command, cores in workload:
            current = self.epochs.get(command.project_id, 0)
            if int(command.epoch) < current:
                # a stale-regime command (e.g. fetched from a zombie
                # peer's queue) must never be leased: drop it here,
                # before the lease is journaled or granted
                self._reject_fenced(command, current, path="lease")
                continue
            admitted.append((command, cores))
        workload = admitted
        if self.journal is not None:
            leases: Dict[str, List[str]] = {}
            for command, _ in workload:
                leases.setdefault(command.project_id, []).append(
                    command.command_id
                )
            for project_id, command_ids in leases.items():
                journal = self._journal_for(project_id)
                if journal is not None:
                    # lease is durable before the workload response
                    journal.record_assigned(caps.worker, command_ids)
        assigned = self.assignments.setdefault(caps.worker, {})
        out_commands, out_cores = [], []
        for command, cores in workload:
            assigned[command.scoped_id] = command
            deadline = self.lease_policy.deadline_for(command, cores, self.clock)
            self.leases.grant(caps.worker, command, self.clock, deadline)
            ctx = self._trace_ctx(command)
            queued_at = self._queued_at.pop(command.scoped_id, self.clock)
            self.obs.tracer.record(
                "queue.wait",
                queued_at,
                self.clock,
                ctx["trace_id"],
                component=self.name,
                parent_id=ctx.get("span_id"),
                command=command.command_id,
                worker=caps.worker,
                deadline=deadline,
            )
            self.obs.metrics.observe(
                "repro_server_queue_wait_seconds",
                self.clock - queued_at,
                help="Virtual seconds commands waited in the queue.",
                server=self.name,
            )
            out_commands.append(command.to_payload())
            out_cores.append(cores)
        if workload:
            self._record(
                EventKind.WORKLOAD_ASSIGNED,
                worker=caps.worker,
                server=self.name,
                commands=[c.command_id for c, _ in workload],
                projects=sorted({c.project_id for c, _ in workload}),
            )
            self._count(
                "repro_server_workloads_assigned_total",
                help="Workloads handed to workers.",
            )
            self._count(
                "repro_server_commands_assigned_total",
                amount=len(workload),
                help="Commands handed to workers inside workloads.",
            )
        # queue depth dropped: deferred submissions may now be admitted
        self._drain_deferred()
        return {"commands": out_commands, "cores": out_cores}

    def _fetch_from_peers(
        self, caps: WorkerCapabilities, max_commands: Optional[int] = None
    ) -> List[Tuple[Command, int]]:
        """Ask the overlay for commands when the local queue is empty.

        "No server has work" (the wildcard walked the whole overlay
        unclaimed) is an expected, quiet outcome.  Transient transport
        failures are recorded as ``PEER_FETCH_FAILED`` and the worker
        idles this cycle.  Permanent errors (unknown endpoints, broken
        trust) indicate a misconfigured overlay and propagate.  A peer
        that keeps failing transiently trips this server's circuit
        breaker toward it and is skipped (see
        :meth:`~repro.net.transport.Network._deliver_any`).
        """
        payload = caps.to_payload()
        if max_commands is not None:
            # probation sizing travels with the fetch so a peer's queue
            # respects the health cap too
            payload["max_commands"] = max_commands
        try:
            response = self.send(
                ANY_SERVER, MessageType.COMMAND_FETCH, payload
            )
        except WildcardUnclaimedError:
            return []
        except TransientCommunicationError as exc:
            self._record(
                EventKind.PEER_FETCH_FAILED,
                server=self.name,
                worker=caps.worker,
                error=type(exc).__name__,
            )
            return []
        return [
            (Command.from_payload(p), int(c))
            for p, c in zip(response.get("commands", []), response.get("cores", []))
        ]

    def _on_command_fetch(self, message: Message) -> Optional[dict]:
        caps = WorkerCapabilities.from_payload(message.payload)
        max_commands = message.payload.get("max_commands")
        workload = self._build_workload(caps, max_commands=max_commands)
        if not workload:
            return None  # keep walking the overlay
        self._drain_deferred()
        return {
            "commands": [c.to_payload() for c, _ in workload],
            "cores": [k for _, k in workload],
        }

    def _on_command_result(self, message: Message) -> dict:
        worker = message.payload["worker"]
        command = Command.from_payload(message.payload["command"])
        result = message.payload["result"]
        # route FIRST: if forwarding to the origin fails transiently the
        # error propagates to the worker (which parks and resubmits)
        # while the assignment and checkpoint stay intact — clearing
        # them before a failed forward would drop the result with no
        # requeue path left.
        outcome = self._route_result(command, result)
        ctx = SpanContext.extract(message.headers)
        if ctx is not None:
            # the worker stamped its execution-end time so the span
            # covers the result's journey home (incl. parked retries)
            exec_end = float(message.headers.get("exec_end", self.clock))
            self.obs.tracer.record(
                "result.transfer",
                exec_end,
                max(self.clock, exec_end),
                ctx.trace_id,
                component=self.name,
                parent_id=ctx.span_id or None,
                command=command.command_id,
                worker=worker,
                outcome=outcome,
            )
        self.assignments.get(worker, {}).pop(command.scoped_id, None)
        self.leases.clear(worker, command.scoped_id)
        if self.fairshare is not None:
            # membership-guarded: a no-op for commands this server's
            # queue never dispatched (peer-stolen work)
            self.fairshare.release(command)
        # the command is finished from this server's perspective either
        # way — evict every worker's checkpoint for it
        self.monitor.clear_command(command.scoped_id)
        if outcome == "duplicate":
            straggler = self.speculated.get(command.scoped_id)
            if straggler is not None:
                # the slower copy of a speculated command came home
                # after the race was decided: journal the loss, drop
                # the result (the dedup barrier already did), and ding
                # only the worker that actually straggled
                self.speculations_lost += 1
                self._count(
                    "repro_server_speculations_total",
                    help="Speculative re-executions by race outcome.",
                    outcome="lost",
                )
                self._record(
                    EventKind.SPECULATION_LOST,
                    command=command.command_id,
                    project_id=command.project_id,
                    worker=worker,
                    server=self.name,
                )
                del self.speculated[command.scoped_id]
                if worker == straggler:
                    self._observe_failure(worker, "speculation_loss")
        elif outcome == "fenced":
            # a dead regime's result: rejected, never applied.  The
            # worker is innocent — it ran what it was handed — so no
            # health penalty, but no success credit either.
            pass
        else:
            self.health.observe_success(worker, self.clock)
            straggler = self.speculated.get(command.scoped_id)
            if straggler is not None and worker != straggler:
                # the speculative copy beat the straggler home; keep the
                # entry so the straggler's late copy is recognized (and
                # journaled) as the race's loser when it arrives
                self.speculations_won += 1
                self._count(
                    "repro_server_speculations_total",
                    help="Speculative re-executions by race outcome.",
                    outcome="won",
                )
        # the worker's ack carries no duplicate flag — the race outcome
        # is the server's business (and the ack shape is a wire contract)
        return {"ok": True}

    def _on_result_forward(self, message: Message) -> dict:
        command = Command.from_payload(message.payload["command"])
        result = message.payload["result"]
        if command.project_id in self._sinks:
            current = self.epochs.get(command.project_id, 0)
            if int(command.epoch) < current:
                # a stale writer (a healed zombie, or a relay holding
                # its results) forwarded a dead regime's result: answer
                # with the typed, authoritative rejection — distinct
                # from the retryable redirect, never retried
                self._reject_fenced(command, current, path="forward")
                raise FencedError(
                    f"result for {command.command_id!r} carries stale "
                    f"epoch {command.epoch} (project "
                    f"{command.project_id!r} is at epoch {current} on "
                    f"{self.name!r})",
                    project_id=command.project_id,
                    stale_epoch=int(command.epoch),
                    current_epoch=current,
                )
        if command.project_id not in self._sinks:
            route = self.routes.get(command.project_id)
            if route and route != self.name:
                # stale route: the project migrated away from here (or
                # was never ours post-failover).  Answer with a
                # retryable redirect so the sender re-forwards to the
                # successor itself rather than trusting us to relay.
                self._count(
                    "repro_shard_route_redirects_total",
                    help="Result forwards answered with a migration redirect.",
                    project=command.project_id,
                )
                return {"ok": False, "duplicate": False, "redirect": route}
        outcome = self._route_result(command, result)
        return {"ok": True, "duplicate": outcome == "duplicate"}

    def _route_result(self, command: Command, result: dict) -> str:
        """Deliver a result to its sink (or forward toward the origin).

        Returns ``"completed"`` when the sink consumed it,
        ``"duplicate"`` when the dedup barrier dropped it (here or at
        the origin), ``"fenced"`` when a stale ownership epoch kept it
        from ever reaching the sink, or ``"forwarded"`` otherwise.
        """
        ctx = self._trace_ctx(command)
        if command.project_id in self._sinks:
            current = self.epochs.get(command.project_id, 0)
            if int(command.epoch) < current:
                # a dead regime's result reached the owner directly
                # (worker delivery): fence it out *before* the dedup
                # barrier so it is rejected, counted and never applied
                self._reject_fenced(command, current, path="result")
                self._count(
                    "repro_server_results_total",
                    help="Results routed, by outcome.",
                    outcome="fenced",
                )
                return "fenced"
            if command.scoped_id in self.completed_ids:
                # a retried/duplicated COMMAND_RESULT, or a command that
                # was falsely requeued and finished twice: exactly-once
                self.duplicates_dropped += 1
                self._count(
                    "repro_server_duplicates_dropped_total",
                    help="Results dropped by the exactly-once dedup barrier.",
                )
                self._count(
                    "repro_server_results_total",
                    help="Results routed, by outcome.",
                    outcome="duplicate",
                )
                self._record(
                    EventKind.DUPLICATE_RESULT_DROPPED,
                    command=command.command_id,
                    project_id=command.project_id,
                    server=self.name,
                )
                self.obs.tracer.record(
                    "result.duplicate",
                    self.clock,
                    self.clock,
                    ctx["trace_id"],
                    component=self.name,
                    parent_id=ctx.get("span_id"),
                    command=command.command_id,
                )
                return "duplicate"
            journal = self._journal_for(command.project_id)
            if journal is not None:
                # durable before the sink applies it: a crash after this
                # point replays the result instead of losing it
                journal.record_result(command, result)
            self.completed_ids.add(command.scoped_id)
            if self.fairshare is not None:
                # the origin's ledger resolves here, covering commands
                # stolen cross-shard (their results only come home via
                # RESULT_FORWARD, never through _on_command_result)
                self.fairshare.release(command)
            self._sinks[command.project_id](command, result)
            self._count(
                "repro_server_results_total",
                help="Results routed, by outcome.",
                outcome="completed",
            )
            self.obs.tracer.record(
                "result.apply",
                self.clock,
                self.clock,
                ctx["trace_id"],
                component=self.name,
                parent_id=ctx.get("span_id"),
                command=command.command_id,
            )
            return "completed"
        # the route table (flipped on migration) wins over the
        # command's origin stamp, which may name a dead shard
        origin = self.routes.get(command.project_id, command.origin_server)
        if not origin or origin == self.name:
            raise SchedulingError(
                f"no sink for project {command.project_id!r} on {self.name!r}"
            )
        # no explicit trace headers: the forwarded command's payload
        # already carries its trace context end to end.  A peer whose
        # route is staler than ours answers with a redirect; follow it
        # (each hop visited at most once, so a routing cycle fails
        # loudly instead of looping).
        visited = {self.name}
        while True:
            if origin in visited:
                raise SchedulingError(
                    f"redirect cycle routing {command.project_id!r} "
                    f"result via {sorted(visited)}"
                )
            visited.add(origin)
            try:
                response = self.send(
                    origin,
                    MessageType.RESULT_FORWARD,
                    {"command": command.to_payload(), "result": result},
                )
            except FencedError:
                # the owner's authoritative verdict: our stamp is from
                # a dead regime.  Drop the relay quietly — the owner
                # counted the rejection, and the epoch only moves
                # forward, so retrying cannot change the answer.
                self._count(
                    "repro_server_results_total",
                    help="Results routed, by outcome.",
                    outcome="fenced",
                )
                return "fenced"
            redirect = response.get("redirect")
            if not redirect:
                break
            self.routes[command.project_id] = redirect
            self._count(
                "repro_shard_route_retries_total",
                help="Result/dispatch re-routes after a shard moved or "
                "went unreachable.",
                project=command.project_id,
                reason="redirect",
            )
            origin = redirect
        self._count(
            "repro_server_results_total",
            help="Results routed, by outcome.",
            outcome="forwarded",
        )
        return "duplicate" if response.get("duplicate") else "forwarded"

    def _on_project_status(self, message: Message) -> dict:
        # the gateway's probe carries its fence table: {project_id:
        # {"epoch", "owner"}} for every project migrated away from a
        # shard it declared dead.  A healed zombie learns here — from
        # its first answered probe — that it lost those projects and
        # demotes itself synchronously; the demotion reports ride back
        # in the response.  A live owner hosting at the same (or a
        # newer) epoch is untouched.
        demoted = []
        for project_id, fence in (message.payload.get("fenced") or {}).items():
            if not isinstance(fence, dict):
                continue
            epoch = int(fence.get("epoch", 0))
            if (
                project_id in self._sinks
                and self.epochs.get(project_id, 0) < epoch
            ):
                demoted.append(
                    self.demote_project(
                        project_id, epoch, str(fence.get("owner", ""))
                    )
                )
        return {
            "server": self.name,
            "queued": len(self.queue),
            "queued_ids": [c.command_id for c in self.queue.commands()],
            "workers": self.monitor.workers(),
            "in_flight": {
                w: sorted(c.command_id for c in cmds.values())
                for w, cmds in self.assignments.items()
                if cmds
            },
            "fenced_projects": sorted(self.fenced),
            "demoted": demoted,
        }

    # -- failure & liveness handling ---------------------------------------

    def _observe_failure(self, worker: str, kind: str) -> None:
        """Fold a failure into the worker's health; record transitions."""
        transition = self.health.observe_failure(worker, kind, self.clock)
        self._count(
            "repro_server_worker_failures_total",
            help="Worker failures folded into health scores, by kind.",
            kind=kind,
        )
        if transition == "quarantined":
            self._count(
                "repro_server_quarantines_total",
                help="Workers quarantined by the health policy.",
            )
            record = self.health.record_for(worker)
            self._record(
                EventKind.WORKER_QUARANTINED,
                worker=worker,
                server=self.name,
                cause=kind,
                score=round(record.score, 4),
                until=record.quarantined_until,
            )

    def check_liveness(self, now: float) -> List[str]:
        """One liveness sweep: dead workers *and* stragglers.

        Dead workers (no heartbeat within the death window) get their
        in-flight commands requeued from the last checkpoint, exactly
        as before.  Stragglers — workers that heartbeat happily but
        hold a lease past its perfmodel-derived deadline — keep
        running, while a speculative copy of the command (resuming
        from the straggler's last reported checkpoint) is queued for
        another worker.  The exactly-once dedup barrier decides the
        race: the first result wins, the loser's is dropped and
        journaled as ``SPECULATION_LOST``.

        Returns the names of workers newly declared dead.
        """
        self.clock = max(self.clock, now)
        dead = self.monitor.check(now)
        for worker in dead:
            self._count(
                "repro_server_workers_dead_total",
                help="Workers declared dead after missed heartbeats.",
            )
            self._record(EventKind.WORKER_DEAD, worker=worker, server=self.name)
            self._observe_failure(worker, "crash")
            self.leases.clear_worker(worker)
            in_flight = self.assignments.get(worker, {})
            # a command whose result already reached the barrier (e.g.
            # the worker died right after delivering) must not requeue
            requeue = {
                key: command
                for key, command in in_flight.items()
                if key not in self.completed_ids
            }
            if self.journal is not None and requeue:
                requeues: Dict[str, List[str]] = {}
                for command in requeue.values():
                    requeues.setdefault(command.project_id, []).append(
                        command.command_id
                    )
                for project_id, command_ids in requeues.items():
                    journal = self._journal_for(project_id)
                    if journal is not None:
                        journal.record_requeued(worker, command_ids)
            for key, command in requeue.items():
                checkpoint = self.monitor.checkpoint_for(worker, key)
                if checkpoint is not None:
                    command.checkpoint = checkpoint
                self.monitor.clear_checkpoint(worker, key)
                if self.fairshare is not None:
                    # back on the queue: no longer in flight, and its
                    # eventual re-dispatch counts afresh
                    self.fairshare.release(command)
                self._queued_at[key] = self.clock
                self.queue.push(command)
                self.requeued_after_failure += 1
                self._count(
                    "repro_server_requeues_total",
                    help="Commands requeued after worker deaths.",
                )
                self._record(
                    EventKind.COMMAND_REQUEUED,
                    worker=worker,
                    command=command.command_id,
                    project_id=command.project_id,
                    server=self.name,
                    has_checkpoint=checkpoint is not None,
                )
            self.assignments[worker] = {}
        self._check_stragglers(now)
        return dead

    #: Backwards-compatible alias: the failure check grew into a full
    #: liveness sweep (PR 3) but callers predate the rename.
    def check_failures(self, now: float) -> List[str]:
        """Deprecated alias for :meth:`check_liveness`."""
        from repro.compat import warn_deprecated

        warn_deprecated(
            "CopernicusServer.check_failures",
            "CopernicusServer.check_liveness",
            stacklevel=2,
        )
        return self.check_liveness(now)

    def _check_stragglers(self, now: float) -> None:
        """Speculatively re-queue commands whose leases are overdue."""
        for lease in self.leases.overdue(now):
            worker = lease.worker
            key = lease.command.scoped_id
            command_id = lease.command.command_id
            if not self.monitor.is_alive(worker):
                continue  # the dead path owns this lease
            command = self.assignments.get(worker, {}).get(key)
            if command is None or key in self.completed_ids:
                self.leases.clear(worker, key)
                continue
            lease.speculated = True
            self.stragglers_detected += 1
            self._count(
                "repro_server_stragglers_total",
                help="Leases overdue on live workers (stragglers).",
            )
            self._record(
                EventKind.STRAGGLER_DETECTED,
                worker=worker,
                command=command_id,
                project_id=command.project_id,
                server=self.name,
                deadline=lease.deadline,
            )
            self._observe_failure(worker, "straggler")
            # clone the command from the straggler's latest checkpoint;
            # the original keeps running — first result home wins
            clone = Command.from_payload(command.to_payload())
            checkpoint = self.monitor.checkpoint_for(worker, key)
            if checkpoint is not None:
                clone.checkpoint = checkpoint
            self.speculated[key] = worker
            self.speculations_started += 1
            self._count(
                "repro_server_speculations_total",
                help="Speculative re-executions by race outcome.",
                outcome="started",
            )
            self._queued_at[key] = now
            self.queue.push(clone)
            self._record(
                EventKind.SPECULATION_STARTED,
                command=command_id,
                project_id=command.project_id,
                worker=worker,
                server=self.name,
                has_checkpoint=checkpoint is not None,
            )
