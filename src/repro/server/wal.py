"""Crash-consistent project journal: write-ahead log + snapshots.

The paper's operational promise is that a Copernicus project is one
long-lived job that survives the loss of *any* component — including
the project server itself.  This module provides the durable half of
that promise:

* :class:`WriteAheadLog` — an append-only log of length-prefixed,
  CRC-checksummed records, fsync'd before the caller proceeds, split
  into rotating segment files.  Recovery tolerates a torn tail (a
  record cut short by the crash) by truncating back to the last fully
  written record; corruption anywhere else raises
  :class:`~repro.util.errors.JournalCorruptionError`.
* :class:`ProjectJournal` — typed state transitions for one project
  (commands issued, leased to a worker, checkpoint reported, result
  applied, requeued after a failure), journaled *before* they are
  acknowledged, plus periodic snapshot compaction: the full mirrored
  state is written atomically and the covered log segments deleted.
* :class:`ServerJournal` — the per-server root directory handing out
  one :class:`ProjectJournal` per hosted project.

Recovery (:meth:`ProjectJournal.recover`) returns the ordered result
history, the exactly-once barrier (completed command ids), the lease
table and the last checkpoint per command — everything
:meth:`repro.core.runner.ProjectRunner.resume` needs to rebuild queue
and controller state and continue the project.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.command import Command
from repro.util.errors import (
    ConfigurationError,
    JournalCorruptionError,
    PersistenceError,
)
from repro.util.serialization import decode_message, encode_message

#: Magic + format version written at the head of every segment file.
SEGMENT_MAGIC = b"CPWAL001"

#: Per-record header: payload length and CRC32 of the payload bytes.
_RECORD_HEADER = struct.Struct(">II")


def _fsync_path(path: Path) -> None:
    """fsync a file or directory by path (directory fsync makes renames
    and unlinks durable on POSIX filesystems)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _sweep_temp_files(directory: Path) -> int:
    """Delete leftover ``*.tmp`` files from interrupted atomic writes."""
    removed = 0
    for stale in directory.glob("*.tmp"):
        stale.unlink()
        removed += 1
    for stale in directory.glob(".*.tmp"):
        stale.unlink()
        removed += 1
    return removed


class WriteAheadLog:
    """Append-only, checksummed, fsync'd record log with segment rotation.

    Parameters
    ----------
    directory:
        Where segment files (``wal-<n>.log``) live; created if missing.
    segment_bytes:
        Rotate to a fresh segment once the current one exceeds this size.
    fsync:
        Whether to fsync after every append (disable only in tests that
        measure something else).
    """

    def __init__(
        self,
        directory: str | Path,
        segment_bytes: int = 1 << 20,
        fsync: bool = True,
    ) -> None:
        if segment_bytes < len(SEGMENT_MAGIC) + _RECORD_HEADER.size:
            raise ConfigurationError(
                f"segment_bytes too small: {segment_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.fsync = bool(fsync)
        self._handle = None
        #: Records appended or recovered so far (next record's sequence).
        self.next_seq = 0
        _sweep_temp_files(self.directory)
        existing = self.segments()
        #: Index of the next segment file to create (monotone across
        #: compactions so old and new segments can never collide).
        self._next_index = (
            self._segment_index(existing[-1]) + 1 if existing else 0
        )
        self._repair_tail()

    # -- segment bookkeeping ----------------------------------------------

    def segments(self) -> List[Path]:
        """Segment files in log order."""
        return sorted(self.directory.glob("wal-*.log"))

    @staticmethod
    def _segment_index(path: Path) -> int:
        return int(path.stem.split("-", 1)[1])

    def _open_for_append(self) -> None:
        if self._handle is not None:
            return
        segments = self.segments()
        if segments and segments[-1].stat().st_size < self.segment_bytes:
            self._handle = open(segments[-1], "ab")
        else:
            self._start_segment()

    def _start_segment(self) -> None:
        if self._handle is not None:
            self._handle.close()
        path = self.directory / f"wal-{self._next_index:08d}.log"
        self._next_index += 1
        self._handle = open(path, "ab")
        self._handle.write(SEGMENT_MAGIC)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
            _fsync_path(self.directory)

    def close(self) -> None:
        """Close the append handle (the log can be reopened later)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- writing -----------------------------------------------------------

    def append(self, record: dict) -> int:
        """Durably append one record; returns its sequence number.

        The record is on disk (written, flushed, fsync'd) when this
        returns — the caller may then acknowledge the transition it
        describes.
        """
        seq = self.next_seq
        payload = encode_message(dict(record, seq=seq))
        self._open_for_append()
        if self._handle.tell() + _RECORD_HEADER.size + len(payload) > (
            self.segment_bytes
        ) and self._handle.tell() > len(SEGMENT_MAGIC):
            self._start_segment()
        self._handle.write(
            _RECORD_HEADER.pack(len(payload), zlib.crc32(payload))
        )
        self._handle.write(payload)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.next_seq = seq + 1
        return seq

    def truncate_all(self) -> None:
        """Delete every segment (after a snapshot made them redundant).

        Segment numbering keeps increasing, so a snapshot racing an old
        directory listing can never confuse old and new segments.
        """
        self.close()
        for path in self.segments():
            path.unlink()
        if self.fsync:
            _fsync_path(self.directory)

    # -- reading / recovery ------------------------------------------------

    def _repair_tail(self) -> None:
        """Scan existing segments, truncating a torn tail in the last one.

        Also establishes ``next_seq`` from the surviving records so
        appends after a restart continue the sequence.
        """
        last = 0
        count = 0
        for record in self._scan(repair=True):
            last = int(record.get("seq", last))
            count += 1
        self.next_seq = last + 1 if count else 0

    def records(self) -> Iterator[dict]:
        """Yield every surviving record in order (tail already repaired)."""
        return self._scan(repair=True)

    def _scan(self, repair: bool) -> Iterator[dict]:
        segments = self.segments()
        for position, path in enumerate(segments):
            is_last = position == len(segments) - 1
            blob = path.read_bytes()
            offset = len(SEGMENT_MAGIC)
            if blob[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
                if is_last and repair:
                    # a segment created but not fully headered
                    self._truncate_segment(path, 0, remove_empty=True)
                    return
                raise JournalCorruptionError(
                    f"{path.name}: bad segment magic"
                )
            while offset < len(blob):
                record, end = self._read_record(blob, offset)
                if record is None:
                    if not (is_last and repair):
                        raise JournalCorruptionError(
                            f"{path.name}: corrupt record at offset {offset} "
                            f"in a non-final segment"
                        )
                    self._truncate_segment(path, offset)
                    return
                yield record
                offset = end

    @staticmethod
    def _read_record(blob: bytes, offset: int) -> Tuple[Optional[dict], int]:
        """Decode one record; ``(None, offset)`` marks a torn/corrupt one."""
        header_end = offset + _RECORD_HEADER.size
        if header_end > len(blob):
            return None, offset
        length, crc = _RECORD_HEADER.unpack(blob[offset:header_end])
        end = header_end + length
        if end > len(blob):
            return None, offset
        payload = blob[header_end:end]
        if zlib.crc32(payload) != crc:
            return None, offset
        try:
            record = decode_message(payload)
        except Exception:
            return None, offset
        if not isinstance(record, dict):
            return None, offset
        return record, end

    def _truncate_segment(
        self, path: Path, offset: int, remove_empty: bool = False
    ) -> None:
        """Physically cut a torn tail so future appends start clean."""
        if remove_empty or offset <= len(SEGMENT_MAGIC):
            # nothing valid in this segment at all: drop the file
            path.unlink(missing_ok=True)
        else:
            with open(path, "rb+") as handle:
                handle.truncate(offset)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        if self.fsync:
            _fsync_path(self.directory)


# ---------------------------------------------------------------------------
# typed project journal + snapshots
# ---------------------------------------------------------------------------

#: Snapshot format version (bumped on incompatible layout changes).
SNAPSHOT_VERSION = 1


@dataclass
class JournalState:
    """The recovered (or live-mirrored) durable state of one project."""

    #: Ordered (command, result) history, the controller replay input.
    results: List[Tuple[Command, dict]] = field(default_factory=list)
    #: Exactly-once barrier: ids of commands whose result was applied.
    completed_ids: Set[str] = field(default_factory=set)
    #: Every command id ever journaled as issued.
    issued_ids: Set[str] = field(default_factory=set)
    #: Latest reported checkpoint per in-flight command id.
    checkpoints: Dict[str, dict] = field(default_factory=dict)
    #: Open leases: worker -> command ids assigned and not yet resolved.
    leases: Dict[str, Set[str]] = field(default_factory=dict)
    #: Requeue transitions journaled (for reports/assertions).
    requeues: int = 0
    #: Ownership epoch: monotonic per project, bumped on failover before
    #: the journal ships, reseeded into the successor on resume.  Every
    #: effectful write is fenced against it (invariant 14).
    epoch: int = 0

    def lease_holder(self, command_id: str) -> Optional[str]:
        """The worker currently leasing *command_id*, if any."""
        for worker, ids in self.leases.items():
            if command_id in ids:
                return worker
        return None

    def _release(self, command_id: str) -> None:
        for ids in self.leases.values():
            ids.discard(command_id)

    def apply(self, record: dict) -> None:
        """Fold one journal record into the mirrored state."""
        kind = record.get("type")
        if kind == "issued":
            self.issued_ids.update(record["command_ids"])
        elif kind == "assigned":
            self.leases.setdefault(record["worker"], set()).update(
                record["command_ids"]
            )
        elif kind == "checkpoint":
            self.checkpoints[record["command"]] = record["checkpoint"]
        elif kind == "result":
            command = Command.from_payload(record["command"])
            if command.command_id in self.completed_ids:
                return  # replaying an idempotent duplicate
            self.results.append((command, record["result"]))
            self.completed_ids.add(command.command_id)
            self.issued_ids.add(command.command_id)
            self.checkpoints.pop(command.command_id, None)
            self._release(command.command_id)
        elif kind == "requeued":
            ids = set(record["command_ids"])
            self.leases.setdefault(record["worker"], set()).difference_update(
                ids
            )
            self.requeues += len(ids)
        elif kind == "epoch":
            # epochs only move forward; a replayed stale bump is a no-op
            self.epoch = max(self.epoch, int(record["epoch"]))
        else:
            raise JournalCorruptionError(
                f"unknown journal record type {kind!r}"
            )

    # -- snapshot (de)serialisation ---------------------------------------

    def to_payload(self) -> dict:
        return {
            "version": SNAPSHOT_VERSION,
            "results": [
                {"command": c.to_payload(), "result": r}
                for c, r in self.results
            ],
            "completed_ids": sorted(self.completed_ids),
            "issued_ids": sorted(self.issued_ids),
            "checkpoints": dict(self.checkpoints),
            "leases": {w: sorted(ids) for w, ids in self.leases.items()},
            "requeues": int(self.requeues),
            "epoch": int(self.epoch),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JournalState":
        if payload.get("version") != SNAPSHOT_VERSION:
            raise JournalCorruptionError(
                f"unsupported snapshot version {payload.get('version')!r}"
            )
        return cls(
            results=[
                (Command.from_payload(e["command"]), e["result"])
                for e in payload["results"]
            ],
            completed_ids=set(payload["completed_ids"]),
            issued_ids=set(payload["issued_ids"]),
            checkpoints=dict(payload["checkpoints"]),
            leases={w: set(ids) for w, ids in payload["leases"].items()},
            requeues=int(payload.get("requeues", 0)),
            # pre-epoch snapshots load at epoch 0 (first ownership)
            epoch=int(payload.get("epoch", 0)),
        )


class ProjectJournal:
    """Durable, typed state transitions for one project.

    Every ``record_*`` call appends to the write-ahead log (fsync'd)
    *before* returning, so the caller can acknowledge the transition
    knowing a restart will see it.  A full in-memory mirror of the
    durable state is maintained; every ``snapshot_every`` applied
    results it is written out atomically and the log compacted away.
    """

    def __init__(
        self,
        directory: str | Path,
        segment_bytes: int = 1 << 20,
        snapshot_every: Optional[int] = 8,
        fsync: bool = True,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be >= 1 or None, got {snapshot_every}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self.fsync = bool(fsync)
        _sweep_temp_files(self.directory)
        self.wal = WriteAheadLog(
            self.directory / "wal", segment_bytes=segment_bytes, fsync=fsync
        )
        #: Live mirror of the durable state (== recover() at all times).
        self.state, snapshot_seq = self._load()
        # a compaction empties the log; new records must keep sequencing
        # past the snapshot or recovery would skip them
        self.wal.next_seq = max(self.wal.next_seq, snapshot_seq + 1)
        self._results_at_last_snapshot = self._snapshot_result_count()
        #: Snapshots written by this process (for reports/tests).
        self.snapshots_written = 0

    # -- snapshot files ----------------------------------------------------

    def _snapshot_paths(self) -> List[Path]:
        return sorted(self.directory.glob("snapshot-*.bin"))

    def _snapshot_result_count(self) -> int:
        paths = self._snapshot_paths()
        if not paths:
            return 0
        return int(paths[-1].stem.split("-", 1)[1])

    def _load(self) -> Tuple[JournalState, int]:
        """Newest snapshot + surviving log records -> mirrored state.

        Returns ``(state, snapshot_seq)`` where ``snapshot_seq`` is the
        last journal sequence number the snapshot covers (-1 if none).
        """
        state = JournalState()
        paths = self._snapshot_paths()
        snapshot_seq = -1
        if paths:
            try:
                payload = decode_message(paths[-1].read_bytes())
            except Exception as exc:
                raise JournalCorruptionError(
                    f"snapshot {paths[-1].name} unreadable: {exc}"
                ) from exc
            snapshot_seq = int(payload.get("last_seq", -1))
            state = JournalState.from_payload(payload)
        for record in self.wal.records():
            if int(record.get("seq", -1)) <= snapshot_seq:
                continue  # already folded into the snapshot
            state.apply(record)
        return state, snapshot_seq

    def recover(self) -> JournalState:
        """Re-read snapshot + log from disk (what a restart would see)."""
        return self._load()[0]

    def snapshot(self) -> Path:
        """Write the mirrored state atomically and compact the log."""
        n = len(self.state.results)
        payload = dict(self.state.to_payload(), last_seq=self.wal.next_seq - 1)
        blob = encode_message(payload)
        final = self.directory / f"snapshot-{n:08d}.bin"
        temp = self.directory / f".snapshot-{n:08d}.tmp"
        with open(temp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        temp.rename(final)
        if self.fsync:
            _fsync_path(self.directory)
        # the snapshot now covers everything: drop old snapshots + log
        for path in self._snapshot_paths():
            if path != final:
                path.unlink()
        self.wal.truncate_all()
        self._results_at_last_snapshot = n
        self.snapshots_written += 1
        return final

    def _maybe_snapshot(self) -> None:
        if self.snapshot_every is None:
            return
        applied = len(self.state.results)
        if applied - self._results_at_last_snapshot >= self.snapshot_every:
            self.snapshot()

    # -- journaled transitions --------------------------------------------

    @property
    def results_applied(self) -> int:
        """Results durably applied so far."""
        return len(self.state.results)

    def _append(self, record: dict) -> None:
        self.wal.append(record)
        self.state.apply(record)

    def record_issued(self, commands: List[Command]) -> None:
        """Commands entered the queue (journal before acknowledging)."""
        if not commands:
            return
        self._append(
            {
                "type": "issued",
                "command_ids": [c.command_id for c in commands],
                "commands": [c.to_payload() for c in commands],
            }
        )

    def record_assigned(self, worker: str, command_ids: List[str]) -> None:
        """Commands leased to *worker* (journal before the workload ack)."""
        if not command_ids:
            return
        self._append(
            {
                "type": "assigned",
                "worker": worker,
                "command_ids": list(command_ids),
            }
        )

    def record_checkpoint(
        self, worker: str, command_id: str, checkpoint: dict
    ) -> None:
        """A heartbeat carried a fresh checkpoint for a leased command."""
        self._append(
            {
                "type": "checkpoint",
                "worker": worker,
                "command": command_id,
                "checkpoint": checkpoint,
            }
        )

    def record_result(self, command: Command, result: dict) -> None:
        """A result is about to be applied to the project (journal first)."""
        self._append(
            {
                "type": "result",
                "command": command.to_payload(),
                "result": result,
            }
        )
        self._maybe_snapshot()

    def record_epoch(self, epoch: int) -> None:
        """The project's ownership epoch moved forward (journal before
        the new owner acts under it)."""
        if int(epoch) <= self.state.epoch:
            return  # idempotent: epochs only move forward
        self._append({"type": "epoch", "epoch": int(epoch)})

    def record_requeued(self, worker: str, command_ids: List[str]) -> None:
        """Leased commands of a dead worker went back on the queue."""
        if not command_ids:
            return
        self._append(
            {
                "type": "requeued",
                "worker": worker,
                "command_ids": list(command_ids),
            }
        )

    def close(self) -> None:
        """Release the log's append handle."""
        self.wal.close()


class ServerJournal:
    """Per-server journal root: one :class:`ProjectJournal` per project."""

    def __init__(
        self,
        root: str | Path,
        segment_bytes: int = 1 << 20,
        snapshot_every: Optional[int] = 8,
        fsync: bool = True,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.snapshot_every = snapshot_every
        self.fsync = bool(fsync)
        self._journals: Dict[str, ProjectJournal] = {}

    def project(self, project_id: str) -> ProjectJournal:
        """The (lazily opened) journal for *project_id*."""
        if not project_id or "/" in project_id or project_id.startswith("."):
            raise ConfigurationError(f"bad project id {project_id!r}")
        journal = self._journals.get(project_id)
        if journal is None:
            journal = ProjectJournal(
                self.root / project_id,
                segment_bytes=self.segment_bytes,
                snapshot_every=self.snapshot_every,
                fsync=self.fsync,
            )
            self._journals[project_id] = journal
        return journal

    def project_ids(self) -> List[str]:
        """Projects with journals on disk."""
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def release(self, project_id: str) -> None:
        """Close and forget one project's journal (zombie demotion).

        The on-disk files stay — they are the fenced regime's history,
        useful for audits — but this server stops holding the append
        handle and will not journal under the project again unless it
        is re-adopted via :meth:`project`.
        """
        journal = self._journals.pop(project_id, None)
        if journal is not None:
            journal.close()

    def close(self) -> None:
        """Close every open project journal."""
        for journal in self._journals.values():
            journal.close()


# -- journal shipping (shard failover) ------------------------------------

@dataclass(frozen=True)
class ShipmentReport:
    """What one journal shipment moved (for migration accounting)."""

    project_id: str
    snapshots: int
    segments: int
    bytes: int


def _copy_durably(src: Path, dst: Path, fsync: bool = True) -> int:
    """Copy *src* to *dst* atomically (temp + rename); returns bytes."""
    blob = src.read_bytes()
    temp = dst.parent / f".{dst.name}.tmp"
    with open(temp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    temp.rename(dst)
    return len(blob)


def ship_project_journal(
    src_root: str | Path,
    dst_root: str | Path,
    project_id: str,
    fsync: bool = True,
) -> ShipmentReport:
    """Copy a project's snapshot + WAL segments between journal roots.

    The transport half of a :class:`ProjectMigration`: the dead
    shard's on-disk journal (``<src_root>/<project_id>``) is copied
    byte-for-byte into the successor's root, after which the successor
    recovers it exactly as if the project had always been its own.

    Shipping is *idempotent and convergent*: files are copied via
    temp + rename (a crash mid-ship leaves no torn file), a re-ship
    overwrites with identical bytes, and destination files that no
    longer exist at the source (e.g. a snapshot that compacted away
    log segments between two ships) are removed — after shipping, the
    destination directory mirrors the source exactly, so replaying it
    yields the same :class:`JournalState` no matter how many times the
    shipment ran or raced a late recovery on the first shard.
    """
    src = Path(src_root) / project_id
    dst = Path(dst_root) / project_id
    if not src.is_dir():
        raise PersistenceError(
            f"no journal for project {project_id!r} under {src_root}"
        )
    dst.mkdir(parents=True, exist_ok=True)
    (dst / "wal").mkdir(exist_ok=True)
    _sweep_temp_files(dst)
    _sweep_temp_files(dst / "wal")
    shipped_bytes = 0
    snapshots = [p.name for p in sorted(src.glob("snapshot-*.bin"))]
    segments = [p.name for p in sorted((src / "wal").glob("wal-*.log"))]
    for name in snapshots:
        shipped_bytes += _copy_durably(src / name, dst / name, fsync)
    for name in segments:
        shipped_bytes += _copy_durably(
            src / "wal" / name, dst / "wal" / name, fsync
        )
    # converge: drop destination files the source no longer has, so
    # the copy is byte-for-byte the source (double-migration safe)
    for stale in dst.glob("snapshot-*.bin"):
        if stale.name not in snapshots:
            stale.unlink()
    for stale in (dst / "wal").glob("wal-*.log"):
        if stale.name not in segments:
            stale.unlink()
    if fsync:
        _fsync_path(dst / "wal")
        _fsync_path(dst)
    return ShipmentReport(
        project_id=project_id,
        snapshots=len(snapshots),
        segments=len(segments),
        bytes=shipped_bytes,
    )
