"""Command leases with perfmodel-derived completion deadlines.

Every command handed to a worker becomes a :class:`Lease`: who runs
it, when it was granted and — new in the liveness layer — when the
server *expects* it back.  The deadline comes from the strong-scaling
performance model (:mod:`repro.perfmodel.mdperf`): the simulated
nanoseconds remaining after the command's checkpoint, divided by the
modelled rate at the assigned core count, times a slack factor.

A worker that heartbeats happily but blows past its deadline is a
*straggler* — alive but useless — and is handled by speculative
re-execution (:meth:`CopernicusServer.check_liveness`), not by the
dead-worker requeue path.

The virtual overlay executes commands instantly, so ``hours_to_seconds``
is the calibration point mapping modelled wallclock hours onto the
runner's logical clock; scenarios shrink it to make deadlines land
within a few ticks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.command import Command
from repro.perfmodel.mdperf import MDPerformanceModel, VILLIN_MODEL
from repro.util.errors import ConfigurationError

#: Fallback estimate for payloads the perfmodel cannot price.
DEFAULT_ESTIMATE_SECONDS = 600.0


def estimate_command_seconds(
    command: Command,
    cores: int,
    model: MDPerformanceModel = VILLIN_MODEL,
    hours_to_seconds: float = 3600.0,
) -> float:
    """Expected virtual seconds for *command* on *cores* cores.

    Prices the MD payload's remaining steps (after any checkpoint)
    through the strong-scaling model; non-MD payloads fall back to
    :data:`DEFAULT_ESTIMATE_SECONDS`.
    """
    payload = command.payload or {}
    n_steps = payload.get("n_steps")
    if not isinstance(n_steps, (int, float)) or n_steps <= 0:
        return DEFAULT_ESTIMATE_SECONDS
    done = 0
    if isinstance(command.checkpoint, dict):
        step = command.checkpoint.get("step")
        if isinstance(step, (int, float)):
            done = max(0, int(step))
    remaining = max(0, int(n_steps) - done)
    if remaining == 0:
        return 0.0
    timestep_ps = float(payload.get("timestep", 0.02))
    ns = remaining * timestep_ps / 1000.0
    hours = model.hours_for(ns, max(1, int(cores)))
    return hours * hours_to_seconds


@dataclass(frozen=True)
class LeasePolicy:
    """How deadlines are derived from the perfmodel estimate.

    Attributes
    ----------
    slack:
        Multiplier on the estimate (heterogeneous hardware is allowed
        to be this much slower than the model before it is suspect).
    min_seconds:
        Deadline floor — at least a couple of heartbeat windows, so a
        worker is never declared a straggler faster than it could be
        declared dead.
    hours_to_seconds:
        Mapping from modelled wallclock hours to virtual clock seconds
        (see module docstring).
    """

    slack: float = 3.0
    min_seconds: float = 240.0
    hours_to_seconds: float = 3600.0
    model: MDPerformanceModel = VILLIN_MODEL

    def __post_init__(self) -> None:
        if self.slack <= 0:
            raise ConfigurationError("lease slack must be positive")
        if self.min_seconds <= 0:
            raise ConfigurationError("lease min_seconds must be positive")
        if self.hours_to_seconds <= 0:
            raise ConfigurationError("hours_to_seconds must be positive")

    def deadline_for(self, command: Command, cores: int, now: float) -> float:
        """Absolute virtual-time deadline for a grant at *now*."""
        estimate = estimate_command_seconds(
            command, cores, self.model, self.hours_to_seconds
        )
        return now + max(self.min_seconds, self.slack * estimate)


@dataclass
class Lease:
    """One outstanding (worker, command) grant."""

    worker: str
    command: Command
    granted_at: float
    deadline: float
    #: Set once a speculative copy has been queued, so the straggler
    #: is not re-speculated on every liveness sweep.
    speculated: bool = False


class LeaseTracker:
    """All outstanding leases of one server.

    Keys are ``(worker, scoped command key)`` — the scoped key (see
    :meth:`repro.core.command.Command.scoped_id`) namespaces the
    command by its project, so two tenants reusing a command id (both
    issuing a ``gen0_r0``, say) can never alias each other's leases.
    """

    def __init__(self) -> None:
        self._leases: Dict[Tuple[str, str], Lease] = {}
        self._metrics = None
        self._metric_labels: Dict[str, str] = {}

    def bind_metrics(self, registry, server: str) -> None:
        """Report lease activity to *registry*, labelled by *server*.

        Optional: an unbound tracker works identically, minus telemetry.
        """
        self._metrics = registry
        self._metric_labels = {"server": server}

    def _count(self, name: str, help: str) -> None:
        if self._metrics is not None:
            self._metrics.inc(name, help=help, **self._metric_labels)

    def _set_outstanding(self) -> None:
        if self._metrics is not None:
            self._metrics.set_gauge(
                "repro_server_leases_outstanding",
                len(self._leases),
                help="Currently outstanding (worker, command) leases.",
                **self._metric_labels,
            )

    def grant(
        self, worker: str, command: Command, now: float, deadline: float
    ) -> Lease:
        """Record a workload grant; re-granting replaces the old lease."""
        lease = Lease(
            worker=worker, command=command, granted_at=now, deadline=deadline
        )
        self._leases[(worker, command.scoped_id)] = lease
        self._count(
            "repro_server_leases_granted_total",
            "Leases granted to workers.",
        )
        self._set_outstanding()
        return lease

    def get(self, worker: str, command_id: str) -> Optional[Lease]:
        """The lease for (worker, command), if outstanding."""
        return self._leases.get((worker, command_id))

    def clear(self, worker: str, command_id: str) -> Optional[Lease]:
        """Drop one lease (result arrived, or command requeued)."""
        lease = self._leases.pop((worker, command_id), None)
        if lease is not None:
            self._count(
                "repro_server_leases_cleared_total",
                "Leases cleared (result arrived or command requeued).",
            )
            self._set_outstanding()
        return lease

    def clear_worker(self, worker: str) -> List[Lease]:
        """Drop every lease held by *worker* (declared dead)."""
        gone = [l for (w, _), l in self._leases.items() if w == worker]
        self._leases = {
            key: lease for key, lease in self._leases.items()
            if key[0] != worker
        }
        if gone:
            self._set_outstanding()
        return gone

    def clear_command(self, command_id: str) -> List[Lease]:
        """Drop every lease on *command_id* (completed somewhere)."""
        gone = [l for (_, c), l in self._leases.items() if c == command_id]
        self._leases = {
            key: lease for key, lease in self._leases.items()
            if key[1] != command_id
        }
        if gone:
            self._set_outstanding()
        return gone

    def overdue(self, now: float) -> List[Lease]:
        """Leases past their deadline and not yet speculated."""
        overdue = [
            lease
            for lease in self._leases.values()
            if not lease.speculated and now > lease.deadline
        ]
        for _ in overdue:
            self._count(
                "repro_server_leases_overdue_total",
                "Leases found past their deadline by liveness sweeps.",
            )
        return overdue

    def active(self) -> List[Lease]:
        """Every outstanding lease."""
        return list(self._leases.values())

    def __len__(self) -> int:
        return len(self._leases)
