"""Worker liveness tracking via heartbeats.

Paper section 2.3: workers heartbeat every 120 s (default, ~200-byte
messages); a server that misses heartbeats for twice the interval
declares the worker dead and arranges for its commands to be requeued
— continuing from the last checkpoint when one is available.
Heartbeats are never forwarded past the nearest server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Default heartbeat interval in seconds (paper value).
DEFAULT_INTERVAL = 120.0


@dataclass
class WorkerRecord:
    """Liveness and recovery state for one worker."""

    worker: str
    last_heartbeat: float
    alive: bool = True
    #: Latest checkpoint payload per running command id.
    checkpoints: Dict[str, dict] = field(default_factory=dict)


class HeartbeatMonitor:
    """Tracks worker heartbeats and detects failures."""

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval}")
        self.interval = float(interval)
        self._records: Dict[str, WorkerRecord] = {}

    def register(self, worker: str, now: float) -> bool:
        """Start tracking a worker (e.g. at announce time).

        Re-announcing is a liveness signal, not a reset: an existing
        record keeps its saved checkpoints so a worker that reconnects
        after a network outage doesn't lose recovery state.

        Returns ``True`` when the announce revived a worker previously
        declared dead (so the server can log the flap).
        """
        record = self._records.get(worker)
        if record is None:
            self._records[worker] = WorkerRecord(worker=worker, last_heartbeat=now)
            return False
        revived = not record.alive
        record.last_heartbeat = now
        record.alive = True
        return revived

    def beat(
        self,
        worker: str,
        now: float,
        checkpoints: Optional[Dict[str, dict]] = None,
    ) -> bool:
        """Record a heartbeat, optionally carrying command checkpoints.

        Returns ``True`` when the beat revived a worker previously
        declared dead (so the server can log the revival).
        """
        record = self._records.get(worker)
        if record is None:
            self.register(worker, now)
            record = self._records[worker]
        revived = not record.alive
        record.last_heartbeat = now
        record.alive = True
        if checkpoints:
            record.checkpoints.update(checkpoints)
        return revived

    def is_alive(self, worker: str) -> bool:
        """Whether the worker is currently considered alive."""
        record = self._records.get(worker)
        return bool(record and record.alive)

    def checkpoint_for(self, worker: str, command_id: str) -> Optional[dict]:
        """Last checkpoint the worker reported for a command, if any."""
        record = self._records.get(worker)
        if record is None:
            return None
        return record.checkpoints.get(command_id)

    def clear_checkpoint(self, worker: str, command_id: str) -> None:
        """Forget a command's checkpoint (after completion)."""
        record = self._records.get(worker)
        if record is not None:
            record.checkpoints.pop(command_id, None)

    def clear_command(self, command_id: str) -> None:
        """Forget a finished command's checkpoints on *every* worker.

        Under speculative re-execution more than one worker may hold a
        checkpoint for the same command; once it completes anywhere,
        all of them are dead recovery state.
        """
        for record in self._records.values():
            record.checkpoints.pop(command_id, None)

    def check(self, now: float) -> List[str]:
        """Return workers newly declared dead at time *now*.

        A worker dies when no heartbeat arrived within twice the
        interval.  Each worker is reported dead at most once (until it
        beats again).
        """
        dead = []
        for record in self._records.values():
            if record.alive and now - record.last_heartbeat > 2.0 * self.interval:
                record.alive = False
                dead.append(record.worker)
        return dead

    def workers(self) -> List[str]:
        """All tracked worker names."""
        return list(self._records)
