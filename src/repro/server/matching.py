"""Resource matching: pairing queued commands with worker capabilities.

The paper (section 2.3): the worker conveys its architecture, core
count and installed executables; the server "matches the available
executables to commands in its queue, and constructs a workload that
maximally utilizes the available resources given the preferred
resource requirements of the commands".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.command import Command
from repro.server.queue import CommandQueue
from repro.util.errors import SchedulingError


@dataclass
class WorkerCapabilities:
    """What a worker announced about itself."""

    worker: str
    platform: str
    cores: int
    executables: List[str] = field(default_factory=list)
    #: How many compatible MD commands the worker will coalesce into
    #: one batched kernel call (1 = no coalescing).
    batch_capacity: int = 1

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise SchedulingError(
                f"worker {self.worker!r} announced {self.cores} cores"
            )
        if self.batch_capacity < 1:
            raise SchedulingError(
                f"worker {self.worker!r} announced batch capacity "
                f"{self.batch_capacity}"
            )

    def to_payload(self) -> Dict:
        """Wire-format dict."""
        return {
            "worker": self.worker,
            "platform": self.platform,
            "cores": int(self.cores),
            "executables": list(self.executables),
            "batch_capacity": int(self.batch_capacity),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "WorkerCapabilities":
        """Inverse of :meth:`to_payload`."""
        return cls(
            worker=payload["worker"],
            platform=payload["platform"],
            cores=int(payload["cores"]),
            executables=list(payload.get("executables", [])),
            batch_capacity=int(payload.get("batch_capacity", 1)),
        )


def can_run(command: Command, caps: WorkerCapabilities) -> bool:
    """Whether a worker can execute a command at all."""
    return (
        command.executable in caps.executables
        and command.min_cores <= caps.cores
    )


def build_workload(
    queue: CommandQueue,
    caps: WorkerCapabilities,
    max_commands: Optional[int] = None,
) -> List[Tuple[Command, int]]:
    """Pop commands for a worker, packing its cores greedily.

    Commands are taken in priority order.  Each receives its preferred
    core count when available, degrading toward ``min_cores`` as the
    worker fills up; packing stops when no queued command fits in the
    remaining cores.

    ``max_commands`` caps the workload size regardless of free cores —
    the health layer's probation sizing for workers that have been
    crashing, flapping or straggling.

    A worker announcing ``batch_capacity > 1`` (and the batched MD
    executable) also receives *rider* commands: queued commands that
    share a popped command's coalesce key ride along on the same cores,
    up to the capacity, because the worker will merge them into one
    batched kernel call.  Riders are ordinary commands — each gets its
    own lease, trace and assignment.

    Returns
    -------
    List of ``(command, cores_assigned)``.
    """
    from repro.worker.coalesce import BATCH_EXECUTABLE, coalesce_key

    batching = (
        caps.batch_capacity > 1 and BATCH_EXECUTABLE in caps.executables
    )
    workload: List[Tuple[Command, int]] = []
    free = caps.cores
    while free > 0:
        if max_commands is not None and len(workload) >= max_commands:
            break
        command = queue.pop_matching(
            lambda c: c.executable in caps.executables and c.min_cores <= free
        )
        if command is None:
            break
        assigned = min(command.preferred_cores, free)
        assigned = max(assigned, command.min_cores)
        workload.append((command, assigned))
        free -= assigned
        if not batching:
            continue
        key = coalesce_key(command)
        if key is None:
            continue
        group = 1
        while group < caps.batch_capacity:
            if max_commands is not None and len(workload) >= max_commands:
                break
            rider = queue.pop_matching(lambda c: coalesce_key(c) == key)
            if rider is None:
                break
            workload.append((rider, assigned))
            group += 1
    return workload
