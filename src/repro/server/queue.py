"""Priority command queue."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro.core.command import Command


class CommandQueue:
    """Commands ordered by (priority, insertion sequence).

    The routing priority encoded on each command determines run order,
    matching the paper's description; FIFO breaks ties so generations
    drain in submission order.
    """

    def __init__(self) -> None:
        self._heap: List = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, command: Command) -> None:
        """Enqueue a command."""
        heapq.heappush(self._heap, (command.priority, next(self._counter), command))

    def peek(self) -> Optional[Command]:
        """The next command without removing it (None when empty)."""
        return self._heap[0][2] if self._heap else None

    def pop(self) -> Optional[Command]:
        """Remove and return the next command (None when empty)."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def pop_matching(
        self, predicate: Callable[[Command], bool]
    ) -> Optional[Command]:
        """Remove and return the best-priority command satisfying *predicate*."""
        for entry in sorted(self._heap):
            if predicate(entry[2]):
                self._heap.remove(entry)
                heapq.heapify(self._heap)
                return entry[2]
        return None

    def commands(self) -> List[Command]:
        """All queued commands in priority order (non-destructive)."""
        return [entry[2] for entry in sorted(self._heap)]

    def remove_project(self, project_id: str) -> int:
        """Drop every command of a project; returns how many were removed."""
        keep = [e for e in self._heap if e[2].project_id != project_id]
        removed = len(self._heap) - len(keep)
        self._heap = keep
        heapq.heapify(self._heap)
        return removed
