"""Gateway-side shard liveness: probe, score, declare dead.

The multi-tenant plane hashes every project onto a shard server; a
crashed shard therefore strands every project consistent-hashed onto
it.  This module gives the gateway the same posture toward shards that
:mod:`repro.server.health` gives a server toward workers: an EWMA
liveness score per shard, fed by explicit liveness probes
(``PROJECT_STATUS`` round-trips on the existing wire protocol — no new
message types) and by circuit-breaker transitions toward the shard.

A shard whose probes fail ``dead_after_misses`` times in a row *and*
whose score has sunk below ``dead_threshold`` is declared dead once
(never resurrected by the monitor — failover is one-way; a replacement
shard joins under a fresh name).  The caller —
:meth:`repro.core.multirunner.MultiProjectRunner._liveness_sweep` —
then drives the actual failover: ring removal, journal shipping,
replay and re-routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.circuit import BreakerState
from repro.net.protocol import MessageType
from repro.server.health import ewma
from repro.util.errors import CommunicationError, ConfigurationError

#: Probe outcomes folded into the EWMA (success counts 1.0).
PROBE_MISS = 0.0
#: A breaker opening toward the shard is strong badness, but softer
#: than a missed probe — the breaker may have opened for one flaky
#: link while the shard itself is healthy.
BREAKER_OPEN_OUTCOME = 0.25


@dataclass(frozen=True)
class ShardProbePolicy:
    """Tuning for shard liveness probes and the death verdict."""

    #: Virtual seconds between probes of the same shard.
    probe_interval: float = 5.0
    #: Consecutive missed probes before the shard may be declared dead.
    dead_after_misses: int = 3
    #: EWMA smoothing (same scale as :class:`HealthPolicy.alpha`).
    alpha: float = 0.4
    #: Score below which a miss streak is fatal.
    dead_threshold: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        if self.probe_interval <= 0:
            raise ConfigurationError("probe_interval must be positive")
        if self.dead_after_misses < 1:
            raise ConfigurationError("dead_after_misses must be >= 1")
        if not 0.0 < self.dead_threshold < 1.0:
            raise ConfigurationError("dead_threshold must be in (0, 1)")


@dataclass
class ShardHealth:
    """Mutable liveness state for one shard, as seen by the gateway."""

    shard: str
    score: float = 1.0
    consecutive_misses: int = 0
    probes: int = 0
    misses: int = 0
    last_probe: float = float("-inf")
    dead: bool = False
    #: Last status payload a live probe returned (queue depth etc).
    last_status: dict = field(default_factory=dict)


class ShardMonitor:
    """Probes every shard from the gateway and reports the dead.

    ``check(now)`` is called from the runner's liveness sweep every
    drive cycle; it probes shards whose probe interval has elapsed and
    returns the names of shards *newly* declared dead this sweep (each
    shard is reported exactly once).
    """

    def __init__(
        self,
        gateway,
        shards: List[str],
        policy: Optional[ShardProbePolicy] = None,
    ) -> None:
        if not shards:
            raise ConfigurationError("a shard monitor needs >= 1 shard")
        self.gateway = gateway
        self.policy = policy or ShardProbePolicy()
        self._records: Dict[str, ShardHealth] = {
            name: ShardHealth(shard=name) for name in shards
        }
        #: Ownership fences learned from failovers: {project_id:
        #: {"epoch": int, "owner": shard}}.  Carried on every probe so
        #: a healed zombie shard learns from its first answered probe
        #: that it lost those projects and demotes itself.
        self.fences: Dict[str, dict] = {}
        #: Demotion reports collected from healed zombies' probe
        #: answers (invariant 14 cross-checks these against the event
        #: log and the fencing-rejection counters).
        self.demotions: List[dict] = []
        self._metrics = gateway.obs.metrics
        # Breaker-open transitions toward a shard are liveness
        # evidence too: a wildcard fetch or a result forward tripping
        # the breaker tells us the shard is unreachable even between
        # probes.
        gateway.breaker_hooks.append(self._on_breaker_transition)

    # -- evidence ----------------------------------------------------------

    def _on_breaker_transition(self, breaker, state) -> None:
        record = self._records.get(breaker.peer)
        if record is None or record.dead:
            return
        if state is BreakerState.OPEN:
            record.score = ewma(
                record.score, BREAKER_OPEN_OUTCOME, self.policy.alpha
            )
            self._export(record)

    def _export(self, record: ShardHealth) -> None:
        self._metrics.set_gauge(
            "repro_shard_health_score",
            round(record.score, 6),
            help="EWMA liveness score per shard (1.0 = perfect).",
            shard=record.shard,
        )

    def _count_probe(self, record: ShardHealth, outcome: str) -> None:
        self._metrics.inc(
            "repro_shard_probes_total",
            help="Gateway liveness probes per shard, by outcome.",
            shard=record.shard,
            outcome=outcome,
        )

    # -- probing -----------------------------------------------------------

    def probe(self, shard: str, now: float) -> bool:
        """Probe one shard once; returns whether it answered."""
        record = self._records[shard]
        record.probes += 1
        record.last_probe = now
        try:
            # any hosted project id works for a liveness check; an
            # unknown project still answers with hosted=False, which
            # proves the shard process is alive and serving.  The
            # fence table rides along so a healed zombie demotes
            # itself from the very first probe it answers.
            status = self.gateway.send(
                shard,
                MessageType.PROJECT_STATUS,
                {"project_id": "__probe__", "fenced": dict(self.fences)},
            )
        except CommunicationError:
            record.misses += 1
            record.consecutive_misses += 1
            record.score = ewma(record.score, PROBE_MISS, self.policy.alpha)
            self._count_probe(record, "miss")
            self._export(record)
            return False
        record.consecutive_misses = 0
        record.score = ewma(record.score, 1.0, self.policy.alpha)
        record.last_status = status or {}
        for report in (status or {}).get("demoted") or []:
            self.demotions.append(dict(report))
        self._count_probe(record, "ok")
        self._export(record)
        return True

    def check(self, now: float) -> List[str]:
        """Probe due shards; return shards newly declared dead."""
        newly_dead: List[str] = []
        for name, record in self._records.items():
            if now - record.last_probe < self.policy.probe_interval:
                continue
            if record.dead:
                # zombie watch: a declared-dead shard stays on the
                # probe schedule (never resurrected — death is one-way)
                # so that if it was merely partitioned and heals, the
                # fence table riding on the probe demotes it.  Misses
                # are expected and quiet.
                self.probe(name, now)
                continue
            self.probe(name, now)
            if (
                record.consecutive_misses >= self.policy.dead_after_misses
                and record.score < self.policy.dead_threshold
            ):
                record.dead = True
                newly_dead.append(name)
                self._count_probe(record, "declared_dead")
        return newly_dead

    # -- bookkeeping -------------------------------------------------------

    def forget(self, shard: str) -> None:
        """Drop a shard from monitoring (post-failover cleanup)."""
        self._records.pop(shard, None)

    def mark_dead(self, shard: str) -> None:
        """Record a death verdict reached outside :meth:`check` (an
        explicit drain, or a dispatch-path failover) so the shard
        joins the zombie watch instead of being probed as live."""
        record = self._records.get(shard)
        if record is None:
            record = ShardHealth(shard=shard)
            self._records[shard] = record
        record.dead = True

    def record_fence(self, project_id: str, epoch: int, owner: str) -> None:
        """Remember that *project_id* now lives at *owner* under
        *epoch*; every future probe carries this fence."""
        self.fences[project_id] = {"epoch": int(epoch), "owner": owner}

    def watch(self, shard: str) -> None:
        """Start monitoring a shard that joined after construction."""
        if shard not in self._records:
            self._records[shard] = ShardHealth(shard=shard)

    def is_dead(self, shard: str) -> bool:
        record = self._records.get(shard)
        return record is not None and record.dead

    def describe(self) -> Dict[str, dict]:
        """Schema-stable per-shard summary for monitoring."""
        return {
            name: {
                "score": round(record.score, 4),
                "dead": record.dead,
                "probes": record.probes,
                "misses": record.misses,
                "consecutive_misses": record.consecutive_misses,
            }
            for name, record in sorted(self._records.items())
        }
