"""The unit of work: a *command*.

A command is one independent parallel simulation (paper terminology):
serialisable, routable between servers, resumable from a checkpoint.
Controllers create commands; servers queue and match them; workers
execute them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Separator inside scoped command keys.  Chosen to be absent from the
#: conventional id styles (``gen1_r0``, ``ensemble/r0``) so a scoped
#: key splits back unambiguously.
SCOPE_SEPARATOR = "::"


def scoped_command_id(project_id: str, command_id: str) -> str:
    """The (project, command) key used by cross-project server tables."""
    return f"{project_id}{SCOPE_SEPARATOR}{command_id}"


def split_scoped_id(key: str) -> Tuple[str, str]:
    """Inverse of :func:`scoped_command_id`.

    A key without a separator (e.g. from a pre-namespacing client)
    maps to an empty project scope rather than failing.
    """
    project_id, sep, command_id = key.partition(SCOPE_SEPARATOR)
    if not sep:
        return "", key
    return project_id, command_id


@dataclass
class Command:
    """A serialisable work unit.

    Attributes
    ----------
    command_id:
        Unique id, conventionally ``gen<generation>_r<index>`` as in the
        paper's Fig. 1 queue listings.
    project_id:
        Owning project.
    executable:
        Required executable name (e.g. ``mdrun``), matched against the
        worker's installed executables.
    payload:
        Wire-format task body (e.g. an :class:`~repro.md.engine.MDTask`
        payload).
    min_cores / preferred_cores:
        Resource requirements used by workload matching.
    priority:
        Routing priority; lower runs sooner (the paper: "the encoded
        routing priority effectively determines the run priority").
    origin_server:
        Name of the server holding the project; results are propagated
        back to it.
    checkpoint:
        Resume payload attached when a failed worker's command is
        requeued.
    trace:
        Distributed-tracing context (``trace_id``/``span_id``) stamped
        by the issuing server so the worker's execution spans join the
        command's trace.  Telemetry only — never consulted by matching
        or execution logic.
    epoch:
        The project's ownership epoch at issue time.  Every effectful
        write derived from this command (lease, checkpoint, result,
        forward) is fenced against the owner's current epoch; a stamp
        older than the owner's is a stale writer and is rejected.
    """

    command_id: str
    project_id: str
    executable: str
    payload: Dict = field(default_factory=dict)
    min_cores: int = 1
    preferred_cores: int = 1
    priority: int = 0
    origin_server: str = ""
    checkpoint: Optional[Dict] = None
    trace: Optional[Dict] = None
    epoch: int = 0

    @property
    def scoped_id(self) -> str:
        """The command's deployment-wide key, namespaced by project.

        ``command_id`` is only unique *within* a project (two tenants
        may both issue ``gen0_r0``), so every server-side table that
        spans projects — assignments, leases, the exactly-once dedup
        barrier, heartbeat checkpoints — keys by this instead.
        """
        return scoped_command_id(self.project_id, self.command_id)

    def to_payload(self) -> Dict:
        """Wire-format dict."""
        out = {
            "command_id": self.command_id,
            "project_id": self.project_id,
            "executable": self.executable,
            "payload": self.payload,
            "min_cores": int(self.min_cores),
            "preferred_cores": int(self.preferred_cores),
            "priority": int(self.priority),
            "origin_server": self.origin_server,
            "epoch": int(self.epoch),
        }
        if self.checkpoint is not None:
            out["checkpoint"] = self.checkpoint
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    @classmethod
    def from_payload(cls, payload: Dict) -> "Command":
        """Inverse of :meth:`to_payload`."""
        return cls(
            command_id=payload["command_id"],
            project_id=payload["project_id"],
            executable=payload["executable"],
            payload=payload.get("payload", {}),
            min_cores=int(payload.get("min_cores", 1)),
            preferred_cores=int(payload.get("preferred_cores", 1)),
            priority=int(payload.get("priority", 0)),
            origin_server=payload.get("origin_server", ""),
            checkpoint=payload.get("checkpoint"),
            trace=payload.get("trace"),
            # pre-epoch payloads stamp as 0 (first ownership regime)
            epoch=int(payload.get("epoch", 0)),
        )
