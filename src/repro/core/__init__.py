"""The Copernicus controller framework: plugin-driven adaptive projects.

Controllers are event handlers (paper section 2.1): they react to
project start and command completion, emit new commands in response,
and decide when the project has converged.  All knowledge about how to
interpret command output lives in these user-installable plugins; the
server/worker fabric underneath is application-agnostic.

Shipped plugins (matching the paper's): the Markov-state-model
adaptive-sampling controller and the Bennett-acceptance-ratio
free-energy controller.
"""

__all__ = [
    "Command",
    "Controller",
    "Project",
    "ProjectStatus",
    "ProjectRunner",
    "MultiProjectRunner",
    "AdaptiveMSMController",
    "MSMProjectConfig",
    "BARController",
    "FEPProjectConfig",
]

_LAZY = {
    "Command": ("repro.core.command", "Command"),
    "Controller": ("repro.core.controller", "Controller"),
    "Project": ("repro.core.project", "Project"),
    "ProjectStatus": ("repro.core.project", "ProjectStatus"),
    "ProjectRunner": ("repro.core.runner", "ProjectRunner"),
    "MultiProjectRunner": ("repro.core.multirunner", "MultiProjectRunner"),
    "AdaptiveMSMController": ("repro.core.msm_controller", "AdaptiveMSMController"),
    "MSMProjectConfig": ("repro.core.msm_controller", "MSMProjectConfig"),
    "BARController": ("repro.core.fep_controller", "BARController"),
    "FEPProjectConfig": ("repro.core.fep_controller", "FEPProjectConfig"),
}


def __getattr__(name: str):
    # Lazy exports break the core <-> server import cycle: the server
    # layer needs only repro.core.command, which must stay importable
    # while repro.core.runner (which imports the server) is not yet.
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
