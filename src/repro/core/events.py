"""Project event log: the audit trail behind real-time monitoring.

Every notable occurrence — project submitted, command completed,
follow-up commands issued, workers declared dead, project completed —
is appended as a typed record.  The monitoring layer and post-mortem
analyses read this trail; tests assert against it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class EventKind(enum.Enum):
    """Kinds of project events."""

    PROJECT_SUBMITTED = "project_submitted"
    COMMANDS_ISSUED = "commands_issued"
    COMMAND_COMPLETED = "command_completed"
    #: A finished command's result arrived again (retry after a lost
    #: response, duplicated message); the server dropped it.
    DUPLICATE_RESULT_DROPPED = "duplicate_result_dropped"
    #: A worker reported a mid-command checkpoint in a heartbeat.
    CHECKPOINT_REPORTED = "checkpoint_reported"
    WORKER_DEAD = "worker_dead"
    #: A worker declared dead heartbeated again.
    WORKER_REVIVED = "worker_revived"
    #: An in-flight command of a dead worker went back on the queue.
    COMMAND_REQUEUED = "command_requeued"
    PROJECT_COMPLETED = "project_completed"
    #: A relay's overlay-wide command fetch failed transiently; the
    #: worker idles this cycle instead of receiving peer work.
    PEER_FETCH_FAILED = "peer_fetch_failed"
    #: A restarted project server rebuilt its state from the journal.
    SERVER_RECOVERED = "server_recovered"
    #: An outstanding command was requeued during journal recovery
    #: (distinct from COMMAND_REQUEUED, which requires a worker death).
    COMMAND_RESTORED = "command_restored"
    #: A non-empty workload left the server for a worker.
    WORKLOAD_ASSIGNED = "workload_assigned"
    #: A leased command blew past its deadline while its worker kept
    #: heartbeating — alive but not delivering.
    STRAGGLER_DETECTED = "straggler_detected"
    #: A straggler's command was re-queued for speculative execution
    #: from its last checkpoint while the original keeps running.
    SPECULATION_STARTED = "speculation_started"
    #: The slower copy of a speculated command finished after the race
    #: was already won; its result was dropped by the dedup barrier.
    SPECULATION_LOST = "speculation_lost"
    #: A worker's health score crossed the quarantine threshold; it
    #: receives no workload until the cooldown expires.
    WORKER_QUARANTINED = "worker_quarantined"
    #: A quarantined worker's cooldown expired; re-admitted on probation.
    WORKER_READMITTED = "worker_readmitted"
    #: Admission control held a submitted command back because its
    #: tenant's queue depth hit the backpressure limit.
    ADMISSION_DEFERRED = "admission_deferred"
    #: A deferred command entered the queue after depth drained.
    ADMISSION_RELEASED = "admission_released"
    #: The fair-share scheduler bypassed an admissible command that
    #: had waited past the aging bound — must never happen; checked by
    #: invariant 12.
    AGING_VIOLATED = "aging_violated"
    #: The shard monitor declared a shard server dead after missed
    #: liveness probes; failover follows for its hosted projects.
    SHARD_DEAD = "shard_dead"
    #: One displaced project finished migrating to a successor shard
    #: (journal shipped, state replayed, routes flipped).
    PROJECT_MIGRATED = "project_migrated"
    #: A project's ownership epoch moved forward (failover bump or
    #: recovery reseed); every effectful write is fenced against it.
    EPOCH_BUMPED = "epoch_bumped"
    #: A write carrying a stale ownership epoch was rejected by the
    #: project's current owner (counted by
    #: ``repro_fencing_rejections_total``; checked by invariant 14).
    FENCING_REJECTED = "fencing_rejected"
    #: A healed zombie shard learned it lost ownership of a project:
    #: dispatch stopped, leases voided, local results forwarded
    #: stale-epoch-tagged, journal freed.
    PROJECT_FENCED = "project_fenced"
    #: A displaced project had no surviving successor shard; it is
    #: parked (off the ring, journal intact) until a shard joins.
    PROJECT_PARKED = "project_parked"
    #: A parked project resumed on a newly joined shard.
    PROJECT_UNPARKED = "project_unparked"


@dataclass(frozen=True)
class EventRecord:
    """One event occurrence."""

    time: float
    kind: EventKind
    project_id: str = ""
    details: Dict = field(default_factory=dict)

    def __str__(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in self.details.items())
        scope = f" [{self.project_id}]" if self.project_id else ""
        return f"t={self.time:.0f} {self.kind.value}{scope} {extras}".rstrip()


class EventLog:
    """Append-only in-memory event trail."""

    def __init__(self) -> None:
        self._records: List[EventRecord] = []

    def record(
        self,
        time: float,
        kind: EventKind,
        project_id: str = "",
        **details,
    ) -> EventRecord:
        """Append one event."""
        record = EventRecord(
            time=float(time), kind=kind, project_id=project_id, details=details
        )
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> List[EventRecord]:
        """Every record in order."""
        return list(self._records)

    def filter(
        self,
        kind: Optional[EventKind] = None,
        project_id: Optional[str] = None,
    ) -> List[EventRecord]:
        """Records matching the given kind and/or project."""
        out = self._records
        if kind is not None:
            out = [r for r in out if r.kind is kind]
        if project_id is not None:
            out = [r for r in out if r.project_id == project_id]
        return list(out)

    def counts(self) -> Dict[str, int]:
        """Occurrences per event kind."""
        out: Dict[str, int] = {}
        for record in self._records:
            out[record.kind.value] = out.get(record.kind.value, 0) + 1
        return out

    def to_text(self) -> str:
        """Human-readable transcript."""
        return "\n".join(str(r) for r in self._records)
