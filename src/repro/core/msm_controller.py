"""The Markov-state-model adaptive-sampling controller.

This is the paper's MSM plugin (section 3): given a set of unfolded
starting structures it launches a swarm of simulation commands, and at
every *generation* boundary it

1. pools the frames of all completed trajectories,
2. kinetically clusters them into microstates (k-centers, RMSD metric),
3. counts microstate transitions at a lag time,
4. computes spawning weights — *even* over discovered states while the
   partitioning is immature, or *adaptive* (transition-uncertainty-
   weighted) once it stabilises,
5. terminates trajectories in well-explored regions and spawns new
   commands from under-explored microstates.

The loop repeats for a fixed number of generations or until a stop
criterion (e.g. a conformation within an RMSD threshold of native)
fires.  After the run, :meth:`AdaptiveMSMController.final_msm` builds
the production MSM used for the blind native-state prediction and the
kinetics of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.rmsd import rmsd_to_reference
from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.project import Project
from repro.lab.adapters import Adapter, normalize_scheme, resolve_adapter
from repro.md.engine import MDTask
from repro.md.models.villin import build_villin
from repro.msm.adaptive import allocate_starts
from repro.msm.cluster import ClusterResult, KCentersClustering
from repro.msm.counts import count_matrix_multi
from repro.msm.metrics import EuclideanMetric, RMSDMetric
from repro.msm.model import MarkovStateModel
from repro.util.errors import ConfigurationError, EstimationError
from repro.util.rng import RandomStream


def _canonical_weighting(weighting):
    """Canonical scheme name for a config ``weighting`` value.

    Adapter instances pass through unchanged (the sweep harness uses
    them for custom schemes); strings go through the registry, which
    warns on legacy aliases and raises a typed error listing the
    registered adapters for unknown names.
    """
    if isinstance(weighting, Adapter):
        return weighting
    return normalize_scheme(weighting)


@dataclass
class MSMProjectConfig:
    """Parameters of an adaptive MSM project.

    The defaults describe a laptop-scale villin run; the paper's values
    are noted in brackets.

    Attributes
    ----------
    model:
        Registered MD model ([villin, 9,864 atoms all-atom] ->
        ``villin-fast``/``villin-full`` CG Gō model here).
    n_starting_conformations:
        Distinct unfolded starts [9].
    trajectories_per_start:
        Commands per start in generation 0 [25, i.e. 225 total].
    steps_per_command:
        MD steps per command [50 ns].
    report_interval:
        Steps between stored frames [50 ps].
    n_clusters:
        Microstates for the k-centers pass [10,000].
    lag_frames:
        Transition-counting lag in frames [25 ns].
    n_generations:
        Clustering rounds before completion [~8-10].
    weighting:
        A scheme name from the adapter registry (``uniform``,
        ``min-counts``, ``weighted-counts``, ``uncertainty``, or
        anything added via :func:`repro.lab.register_adapter`); the
        legacy names ``even``/``adaptive``/``mincounts`` still work
        with a deprecation warning.
    weighting_params:
        Keyword arguments for the adapter factory (e.g.
        ``{"n": 2.0}`` for ``weighted-counts``).
    integrator:
        Integrator name handed to every MD command (``langevin``
        default; ``markov-chain`` for the lab's exact toy systems).
    stop_rmsd:
        Early-stop when any frame comes this close to native (nm);
        ``None`` disables [0.6-0.7 A first-folded criterion].
    """

    model: str = "villin-fast"
    model_params: Dict = field(default_factory=dict)
    n_starting_conformations: int = 3
    trajectories_per_start: int = 5
    steps_per_command: int = 10000
    report_interval: int = 100
    temperature: float = 300.0
    timestep: float = 0.02
    friction: float = 1.0
    n_clusters: int = 40
    lag_frames: int = 5
    subsample: int = 1
    n_generations: int = 4
    weighting: str = "uniform"
    weighting_params: Dict = field(default_factory=dict)
    integrator: str = "langevin"
    seed: int = 0
    stop_rmsd: Optional[float] = None
    min_cores: int = 1
    preferred_cores: int = 1

    def __post_init__(self) -> None:
        # resolving eagerly gives the typed unknown-scheme error (with
        # the registered adapter names) at config time, not mid-run;
        # legacy aliases are canonicalised here with their warning
        self.weighting = _canonical_weighting(self.weighting)
        resolve_adapter(self.weighting, **self.weighting_params)
        for name in (
            "n_starting_conformations",
            "trajectories_per_start",
            "steps_per_command",
            "report_interval",
            "n_clusters",
            "lag_frames",
            "subsample",
            "n_generations",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")

    @property
    def n_trajectories(self) -> int:
        """Commands per generation."""
        return self.n_starting_conformations * self.trajectories_per_start


@dataclass
class TrajectoryRecord:
    """One trajectory (one command) and its lineage."""

    traj_id: str
    generation: int
    frames: Optional[np.ndarray] = None
    times: Optional[np.ndarray] = None
    parent: Optional[str] = None  # trajectory the start frame came from
    start_cluster: Optional[int] = None
    status: str = "running"


class AdaptiveMSMController(Controller):
    """The adaptive-sampling MSM plugin.

    The spawning scheme is a pluggable :class:`repro.lab.Adapter`:
    pass one explicitly, or let the controller resolve
    ``config.weighting`` through the adapter registry.  An optional
    *convergence* checker (anything with an
    ``evaluate(frames_by_traj, **context)`` method, e.g.
    :class:`repro.lab.ConvergenceChecker`) is invoked at every
    generation boundary; its numeric results land in
    ``convergence_history`` and the obs metrics registry.
    """

    def __init__(
        self,
        config: MSMProjectConfig,
        adapter: Optional[Adapter] = None,
        convergence=None,
    ) -> None:
        self.config = config
        if adapter is None:
            adapter = resolve_adapter(config.weighting, **config.weighting_params)
        self.adapter = adapter
        self.convergence = convergence
        self.rng = RandomStream(config.seed)
        self._is_villin = config.model.startswith("villin")
        if self._is_villin:
            variant = config.model.split("-", 1)[1]
            self._villin = build_villin(variant=variant, **config.model_params)
            self.native = self._villin.native
            self.metric = RMSDMetric()
        else:
            self._villin = None
            self.native = None
            self.metric = EuclideanMetric()
        # mutable run state
        self.generation = 0
        self.trajectories: Dict[str, TrajectoryRecord] = {}
        self.pending: set = set()
        self.history: List[dict] = []
        self.cluster_model: Optional[ClusterResult] = None
        self.convergence_history: List[dict] = []
        self.simulated_steps = 0
        self._complete = False
        self._stop_hit = False
        self._command_counter = 0

    # -- command fabrication ---------------------------------------------

    def _new_command(
        self,
        project: Project,
        initial_positions: np.ndarray,
        generation: int,
        parent: Optional[str],
        start_cluster: Optional[int],
    ) -> Command:
        cfg = self.config
        index = self._command_counter
        self._command_counter += 1
        traj_id = f"gen{generation}_r{index}"
        task = MDTask(
            model=cfg.model,
            n_steps=cfg.steps_per_command,
            report_interval=cfg.report_interval,
            temperature=cfg.temperature,
            timestep=cfg.timestep,
            friction=cfg.friction,
            integrator=cfg.integrator,
            seed=int(self.rng.integers(0, 2**31 - 1)),
            initial_positions=np.asarray(initial_positions),
            model_params=cfg.model_params,
            task_id=traj_id,
        )
        self.trajectories[traj_id] = TrajectoryRecord(
            traj_id=traj_id,
            generation=generation,
            parent=parent,
            start_cluster=start_cluster,
        )
        self.pending.add(traj_id)
        return Command(
            command_id=traj_id,
            project_id=project.project_id,
            executable="mdrun",
            payload=task.to_payload(),
            min_cores=cfg.min_cores,
            preferred_cores=cfg.preferred_cores,
            priority=generation,
        )

    def _starting_conformations(self) -> List[np.ndarray]:
        cfg = self.config
        streams = self.rng.spawn(cfg.n_starting_conformations)
        if self._is_villin:
            return [
                self._villin.extended_state(rng=s).positions for s in streams
            ]
        # model-potential fallback: scatter starts around the default state
        from repro.md.engine import MDEngine, MDTask as _Task

        engine = MDEngine()
        confs = []
        for s in streams:
            sim = engine.prepare(
                _Task(
                    model=cfg.model,
                    n_steps=0,
                    seed=int(s.integers(0, 2**31 - 1)),
                    model_params=cfg.model_params,
                )
            )
            confs.append(sim.state.positions.copy())
        return confs

    # -- controller events --------------------------------------------------

    def on_project_start(self, project: Project) -> List[Command]:
        """Generation 0: a swarm of commands from the unfolded starts."""
        cfg = self.config
        project.state["config"] = cfg
        commands = []
        for conf in self._starting_conformations():
            for _ in range(cfg.trajectories_per_start):
                commands.append(
                    self._new_command(project, conf, 0, parent=None, start_cluster=None)
                )
        self._observe_generation(project, len(commands))
        return commands

    def _observe_generation(self, project: Project, n_commands: int) -> None:
        """Export generation progress to the bound observability hub."""
        if self.obs is None:
            return
        self.obs.metrics.set_gauge(
            "repro_msm_generation",
            self.generation,
            help="Current adaptive-sampling generation.",
            project=project.project_id,
        )
        self.obs.metrics.inc(
            "repro_msm_commands_total",
            amount=n_commands,
            help="Simulation commands spawned by the MSM controller.",
            project=project.project_id,
        )
        self.obs.metrics.set_gauge(
            "repro_msm_simulated_steps",
            self.simulated_steps,
            help="Aggregate simulated steps across finished commands.",
            project=project.project_id,
        )

    def on_command_finished(
        self, project: Project, command: Command, result: Dict
    ) -> List[Command]:
        """Store frames; at generation boundaries, cluster and respawn."""
        traj = self.trajectories.get(command.command_id)
        if traj is None:
            return []
        traj.frames = np.asarray(result["frames"])
        traj.times = np.asarray(result["times"])
        traj.status = "done"
        self.simulated_steps += self.config.steps_per_command
        self.pending.discard(command.command_id)
        if self._check_stop(traj):
            self._complete = True
            self._stop_hit = True
            return []
        if self.pending:
            return []
        # generation boundary
        summary = self._cluster_and_summarise()
        self.history.append(summary)
        self._evaluate_convergence(project, summary)
        if self.obs is not None:
            self.obs.metrics.inc(
                "repro_msm_clusterings_total",
                help="Generation-boundary clustering passes.",
                project=project.project_id,
            )
            self.obs.metrics.set_gauge(
                "repro_msm_states",
                summary["n_states"],
                help="Microstates in the latest clustering.",
                project=project.project_id,
            )
            self.obs.metrics.set_gauge(
                "repro_msm_pool_frames",
                summary["n_pool_frames"],
                help="Pooled frames fed to the latest clustering.",
                project=project.project_id,
            )
            if "min_center_rmsd" in summary:
                self.obs.metrics.set_gauge(
                    "repro_msm_min_center_rmsd",
                    summary["min_center_rmsd"],
                    help="Best cluster-center RMSD to native (nm).",
                    project=project.project_id,
                )
        if self.generation + 1 >= self.config.n_generations:
            self._complete = True
            return []
        self.generation += 1
        follow_ups = self._spawn_next_generation(project, summary)
        self._observe_generation(project, len(follow_ups))
        return follow_ups

    def _evaluate_convergence(self, project: Project, summary: dict) -> None:
        """Score model-vs-truth error at a generation boundary."""
        if self.convergence is None:
            return
        frames_by_traj = [
            t.frames
            for t in self.trajectories.values()
            if t.frames is not None and len(t.frames)
        ]
        record = self.convergence.evaluate(
            frames_by_traj,
            lag_frames=self.config.lag_frames,
            frame_stride=self.config.report_interval,
            generation=self.generation,
            simulated_steps=self.simulated_steps,
        )
        summary["convergence"] = record
        self.convergence_history.append(record)
        if self.obs is None:
            return
        for key, value in record.items():
            if isinstance(value, (int, float)) and np.isfinite(value):
                self.obs.metrics.set_gauge(
                    f"repro_lab_{key}",
                    float(value),
                    help="Lab convergence metric (model vs exact ground truth).",
                    project=project.project_id,
                )

    def _check_stop(self, traj: TrajectoryRecord) -> bool:
        if self.config.stop_rmsd is None or self.native is None:
            return False
        values = rmsd_to_reference(traj.frames, self.native)
        return bool(values.min() < self.config.stop_rmsd)

    # -- clustering / adaptive step --------------------------------------------

    def _pooled_frames(self) -> Tuple[np.ndarray, List[Tuple[str, np.ndarray]]]:
        """All stored frames (subsampled) plus per-trajectory index map."""
        stride = self.config.subsample
        chunks, index = [], []
        offset = 0
        for traj in self.trajectories.values():
            if traj.frames is None or not len(traj.frames):
                continue
            sub = traj.frames[::stride]
            chunks.append(sub)
            index.append((traj.traj_id, np.arange(offset, offset + len(sub))))
            offset += len(sub)
        if not chunks:
            raise ConfigurationError("no frames collected; nothing to cluster")
        return np.concatenate(chunks), index

    def _cluster_and_summarise(self) -> dict:
        cfg = self.config
        pool, index = self._pooled_frames()
        clustering = KCentersClustering(
            n_clusters=min(cfg.n_clusters, len(pool)),
            metric=self.metric,
            seed=self.rng,
        )
        self.cluster_model = clustering.fit(pool)
        labels = self.cluster_model.assignments
        n_states = self.cluster_model.n_clusters

        # per-command discrete trajectories (no cross-command counting)
        dtrajs = [labels[idx] for _, idx in index]
        counts = count_matrix_multi(dtrajs, n_states, cfg.lag_frames)
        try:
            weights = self.adapter.weights(counts)
        except EstimationError:
            # nothing countable at this lag yet (every command shorter
            # than lag_frames): spawn uniformly via allocate_starts'
            # all-zero fallback and let the next generation's counts
            # decide
            weights = np.zeros(n_states)

        summary = {
            "generation": self.generation,
            "n_states": n_states,
            "n_pool_frames": len(pool),
            "counts": counts,
            "weights": weights,
            "populations": self.cluster_model.populations(),
            "dtrajs": dtrajs,
            "pool_index": index,
        }
        if self.native is not None:
            center_rmsd = rmsd_to_reference(self.cluster_model.centers, self.native)
            summary["center_rmsd"] = center_rmsd
            summary["min_center_rmsd"] = float(center_rmsd.min())
        return summary

    def _spawn_next_generation(
        self, project: Project, summary: dict
    ) -> List[Command]:
        cfg = self.config
        allocation = allocate_starts(
            summary["weights"], cfg.n_trajectories, rng=self.rng
        )
        pool, index = self._pooled_frames()
        labels = self.cluster_model.assignments
        commands: List[Command] = []
        # map pool index back to owning trajectory for lineage tracking
        owner = np.empty(len(pool), dtype=object)
        for traj_id, idx in index:
            owner[idx] = traj_id
        for state, n_spawn in enumerate(allocation):
            if n_spawn == 0:
                continue
            members = np.flatnonzero(labels == state)
            picks = self.rng.choice(members, size=n_spawn, replace=True)
            for pick in np.atleast_1d(picks):
                commands.append(
                    self._new_command(
                        project,
                        pool[int(pick)],
                        self.generation,
                        parent=str(owner[int(pick)]),
                        start_cluster=int(state),
                    )
                )
        return commands

    # -- completion / reporting ---------------------------------------------

    def is_complete(self, project: Project) -> bool:
        """Whether the configured generations or stop criterion was reached."""
        return self._complete

    def summary(self, project: Project) -> Dict:
        """Progress report: generation, trajectory count, best RMSD."""
        base = super().summary(project)
        base.update(
            {
                "generation": self.generation,
                "n_trajectories": len(self.trajectories),
                "stopped_on_rmsd": self._stop_hit,
            }
        )
        if self.history and "min_center_rmsd" in self.history[-1]:
            base["min_center_rmsd"] = self.history[-1]["min_center_rmsd"]
        return base

    # -- post-run analysis ------------------------------------------------------

    def min_rmsd_per_generation(self) -> Dict[int, float]:
        """Minimum frame RMSD to native seen in each generation's data."""
        if self.native is None:
            raise ConfigurationError("no native reference for this model")
        out: Dict[int, float] = {}
        for traj in self.trajectories.values():
            if traj.frames is None:
                continue
            value = float(rmsd_to_reference(traj.frames, self.native).min())
            g = traj.generation
            out[g] = min(out.get(g, np.inf), value)
        return out

    def rmsd_traces(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Per-trajectory (times, rmsd-to-native) traces (Fig. 2 data)."""
        if self.native is None:
            raise ConfigurationError("no native reference for this model")
        out = {}
        for traj in self.trajectories.values():
            if traj.frames is None:
                continue
            out[traj.traj_id] = (
                traj.times,
                rmsd_to_reference(traj.frames, self.native),
            )
        return out

    def final_msm(
        self, lag_frames: Optional[int] = None, reversible: bool = False
    ) -> Tuple[MarkovStateModel, ClusterResult]:
        """Build the production MSM from all collected trajectories.

        Returns the fitted model plus the cluster model it lives on.
        The frame time of the MSM is ``report_interval * timestep *
        subsample`` (ps).
        """
        cfg = self.config
        pool, index = self._pooled_frames()
        if self.cluster_model is None:
            self.cluster_model = KCentersClustering(
                n_clusters=min(cfg.n_clusters, len(pool)),
                metric=self.metric,
                seed=self.rng,
            ).fit(pool)
        labels = self.cluster_model.assign(pool, metric=self.metric)
        dtrajs = [labels[idx] for _, idx in index]
        frame_time = cfg.report_interval * cfg.timestep * cfg.subsample
        msm = MarkovStateModel(
            lag=lag_frames or cfg.lag_frames,
            frame_time=frame_time,
            reversible=reversible,
        ).fit(dtrajs, n_states=self.cluster_model.n_clusters)
        return msm, self.cluster_model

    def blind_native_prediction(
        self, msm: MarkovStateModel, n_samples: int = 5
    ) -> dict:
        """The paper's blind test: RMSD of the top-equilibrium cluster.

        The predicted "native" cluster is the most populated state at
        equilibrium; its RMSD to the true native is "estimated as the
        average of five random samples" of its members.
        """
        if self.native is None:
            raise ConfigurationError("no native reference for this model")
        pool, _ = self._pooled_frames()
        labels = self.cluster_model.assign(pool, metric=self.metric)
        state_active = msm.equilibrium_state()
        state = int(msm.active_set[state_active])
        members = np.flatnonzero(labels == state)
        picks = self.rng.choice(
            members, size=min(n_samples, len(members)), replace=False
        )
        values = rmsd_to_reference(pool[np.atleast_1d(picks)], self.native)
        return {
            "predicted_state": state,
            "rmsd_mean": float(values.mean()),
            "rmsd_values": values,
            "equilibrium_population": float(
                msm.stationary_distribution()[state_active]
            ),
        }
