"""Project state: the long-running job a controller drives."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.core.command import Command


class ProjectStatus(enum.Enum):
    """Lifecycle of a project."""

    NEW = "new"
    RUNNING = "running"
    COMPLETE = "complete"
    FAILED = "failed"


@dataclass
class Project:
    """One Copernicus project (e.g. ``msm_villin`` in the paper's Fig. 1).

    Attributes
    ----------
    project_id:
        Unique name.
    status:
        Lifecycle state, advanced by the runner.
    state:
        Controller-owned scratch space; the framework never looks
        inside.
    issued / completed:
        Command bookkeeping.
    """

    project_id: str
    status: ProjectStatus = ProjectStatus.NEW
    state: Dict[str, Any] = field(default_factory=dict)
    issued: int = 0
    completed: int = 0
    #: log of (command_id, result) pairs in completion order
    results_log: List[Tuple[str, dict]] = field(default_factory=list)

    def record_issue(self, commands: List[Command]) -> None:
        """Note newly issued commands."""
        self.issued += len(commands)

    def record_result(self, command: Command, result: dict) -> None:
        """Note a completed command."""
        self.completed += 1
        self.results_log.append((command.command_id, result))

    @property
    def outstanding(self) -> int:
        """Commands issued but not yet completed."""
        return self.issued - self.completed
