"""Real-time project monitoring (the paper's web-interface analogue).

Copernicus users watch their runs through a web interface; this module
produces the same view — project progress, per-server queues, worker
liveness, overlay traffic — as a structured snapshot, a terminal
rendering and a self-contained HTML page.

Since the observability layer landed (:mod:`repro.obs`) the snapshot is
built on two sources: live component state (queues, assignments,
health) read through the runner's *public* accessors, and the
deployment's shared metrics registry (``runner.network.obs.metrics``),
whose counters provide the numeric series (requeues, speculations,
duplicates) the dashboards render.  Snapshot time also refreshes the
point-in-time gauges (queue depth, workers alive) so a metrics dump
taken alongside the dashboard agrees with it.
"""

from __future__ import annotations

import html
from typing import Dict, List


def _servers_of(runner) -> List:
    """The runner's servers via the public accessor (with a fallback
    for test doubles that only set the private list)."""
    servers = getattr(runner, "servers", None)
    if servers is None:
        servers = runner._servers
    return list(servers)


def _series(obs, name: str, default, **labels) -> float:
    """One numeric series from the registry; *default* (the component's
    own attribute) covers registry-less runners and unseen label sets."""
    if obs is None:
        return default
    return obs.metrics.value(name, default=float(default), **labels)


def _refresh_gauges(runner) -> None:
    """Write point-in-time gauges into the shared registry, if any."""
    obs = getattr(getattr(runner, "network", None), "obs", None)
    if obs is None:
        return
    for server in _servers_of(runner):
        workers = server.monitor.workers()
        obs.metrics.set_gauge(
            "repro_server_queue_depth",
            len(server.queue),
            help="Commands currently queued.",
            server=server.name,
        )
        obs.metrics.set_gauge(
            "repro_server_workers_alive",
            sum(1 for w in workers if server.monitor.is_alive(w)),
            help="Workers currently considered alive.",
            server=server.name,
        )
        obs.metrics.set_gauge(
            "repro_server_commands_in_flight",
            sum(len(cmds) for cmds in server.assignments.values()),
            help="Commands currently assigned to workers.",
            server=server.name,
        )


def status_snapshot(runner) -> Dict:
    """A structured snapshot of a :class:`~repro.core.runner.ProjectRunner`."""
    network = runner.network
    _refresh_gauges(runner)
    obs = getattr(network, "obs", None)
    servers = []
    for server in _servers_of(runner):
        servers.append(
            {
                "name": server.name,
                "queued": len(server.queue),
                "queued_ids": [c.command_id for c in server.queue.commands()][:20],
                "workers": {
                    w: server.monitor.is_alive(w)
                    for w in server.monitor.workers()
                },
                "in_flight": {
                    w: sorted(c.command_id for c in cmds.values())
                    for w, cmds in server.assignments.items()
                    if cmds
                },
                "requeued_after_failure": int(
                    _series(
                        obs,
                        "repro_server_requeues_total",
                        server.requeued_after_failure,
                        server=server.name,
                    )
                ),
                "health": server.health.describe(),
                "speculation": {
                    "stragglers_detected": int(
                        _series(
                            obs,
                            "repro_server_stragglers_total",
                            server.stragglers_detected,
                            server=server.name,
                        )
                    ),
                    "started": int(
                        _series(
                            obs,
                            "repro_server_speculations_total",
                            server.speculations_started,
                            server=server.name,
                            outcome="started",
                        )
                    ),
                    "won": int(
                        _series(
                            obs,
                            "repro_server_speculations_total",
                            server.speculations_won,
                            server=server.name,
                            outcome="won",
                        )
                    ),
                    "lost": int(
                        _series(
                            obs,
                            "repro_server_speculations_total",
                            server.speculations_lost,
                            server=server.name,
                            outcome="lost",
                        )
                    ),
                    "workloads_denied": int(
                        _series(
                            obs,
                            "repro_server_workloads_denied_total",
                            server.workloads_denied,
                            server=server.name,
                        )
                    ),
                },
                "breakers": [
                    breaker.describe()
                    for breaker in server.peer_breakers.values()
                ],
            }
        )
    snapshot = {
        "now": runner.now,
        "projects": runner.status(),
        "servers": servers,
        "traffic": network.traffic_report(),
        "total_bytes": network.total_bytes(),
        "messages": network.messages_delivered,
    }
    if obs is not None:
        snapshot["metrics"] = obs.metrics.snapshot()
    return snapshot


def render_text(snapshot: Dict) -> str:
    """Terminal dashboard."""
    lines: List[str] = [f"== Copernicus status @ t={snapshot['now']:.0f}s =="]
    lines.append("-- projects --")
    for project in snapshot["projects"]:
        fields = ", ".join(
            f"{k}={v}" for k, v in project.items() if k != "project"
        )
        lines.append(f"  {project['project']}: {fields}")
    lines.append("-- servers --")
    for server in snapshot["servers"]:
        alive = sum(server["workers"].values())
        lines.append(
            f"  {server['name']}: {server['queued']} queued, "
            f"{alive}/{len(server['workers'])} workers alive, "
            f"{server['requeued_after_failure']} requeued after failures"
        )
        for worker, commands in server["in_flight"].items():
            lines.append(f"    {worker} running: {', '.join(commands)}")
        spec = server.get("speculation", {})
        if any(spec.values()):
            lines.append(
                f"    liveness: {spec.get('stragglers_detected', 0)} "
                f"stragglers, {spec.get('started', 0)} speculations "
                f"({spec.get('won', 0)} won, {spec.get('lost', 0)} lost), "
                f"{spec.get('workloads_denied', 0)} workloads denied"
            )
        for worker, health in server.get("health", {}).items():
            if health["state"] != "healthy" or health["failures"]:
                lines.append(
                    f"    {worker} health: {health['score']:.2f} "
                    f"({health['state']}, {health['quarantines']} quarantines)"
                )
    lines.append(
        f"-- overlay: {snapshot['messages']} messages, "
        f"{snapshot['total_bytes']} bytes --"
    )
    for row in snapshot["traffic"]:
        if "retries" in row:
            lines.append(
                f"  {row['link']}: {row['retries']} retries, "
                f"{row['timeouts']} timeouts, {row['failures']} gave up, "
                f"{row['backoff_seconds']:.2f}s backoff"
            )
        elif "state" in row:
            lines.append(
                f"  {row['link']}: {row['state']}, {row['opens']} opens, "
                f"{row['closes']} closes, {row['skips']} skips"
            )
        else:
            lines.append(
                f"  {row['link']}: {row['messages']} msgs, {row['bytes']} bytes"
            )
    metrics = snapshot.get("metrics")
    if metrics:
        lines.append(
            f"-- metrics: {len(metrics)} series "
            f"(`repro obs metrics` for the full dump) --"
        )
    return "\n".join(lines)


def render_html(snapshot: Dict) -> str:
    """Self-contained HTML dashboard (write it to a file and open it)."""
    rows = []
    for project in snapshot["projects"]:
        cells = "".join(
            f"<td>{html.escape(str(v))}</td>" for v in project.values()
        )
        rows.append(f"<tr>{cells}</tr>")
    header = "".join(
        f"<th>{html.escape(str(k))}</th>"
        for k in (snapshot["projects"][0].keys() if snapshot["projects"] else [])
    )
    servers = []
    for server in snapshot["servers"]:
        alive = sum(server["workers"].values())
        servers.append(
            f"<li><b>{html.escape(server['name'])}</b>: "
            f"{server['queued']} queued, {alive}/{len(server['workers'])} "
            f"workers alive</li>"
        )
    traffic = "".join(
        f"<tr><td>{html.escape(row['link'])}</td>"
        f"<td>{row.get('messages', row.get('retries', 0))}</td>"
        f"<td>{row.get('bytes', '')}</td></tr>"
        for row in snapshot["traffic"]
    )
    return f"""<!doctype html>
<html><head><meta charset="utf-8"><title>Copernicus status</title>
<style>body{{font-family:sans-serif}}table{{border-collapse:collapse}}
td,th{{border:1px solid #999;padding:4px 8px}}</style></head>
<body>
<h1>Copernicus status &mdash; t={snapshot['now']:.0f}s</h1>
<h2>Projects</h2>
<table><tr>{header}</tr>{''.join(rows)}</table>
<h2>Servers</h2>
<ul>{''.join(servers)}</ul>
<h2>Overlay traffic ({snapshot['messages']} messages,
{snapshot['total_bytes']} bytes)</h2>
<table><tr><th>link</th><th>messages</th><th>bytes</th></tr>{traffic}</table>
</body></html>"""
