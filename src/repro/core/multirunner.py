"""MultiProjectRunner: many concurrent projects over a sharded overlay.

The paper's service plane hosts many users' projects on one server
overlay.  This runner drives that shape: project ids are
consistent-hashed onto *shards* (project servers) by a
:class:`~repro.net.sharding.ShardRouter`, every shard keeps its own
queue, lease tracker, heartbeat monitor and (optionally) its own
:class:`~repro.server.wal.ServerJournal`, and a shared
:class:`~repro.server.fairshare.FairSharePolicy` can be applied so no
tenant starves another.

It *is* a :class:`~repro.core.runner.ProjectRunner` — the only routing
decision, "which server hosts this project", is the ``_origin_for``
hook, so submission, recovery, the drive loop, liveness sweeps and the
event log are shared code.  A deployment with one shard and no policy
therefore behaves exactly like the classic runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.controller import Controller
from repro.core.events import EventKind
from repro.core.project import Project
from repro.core.runner import ProjectRunner
from repro.net.circuit import BreakerState
from repro.net.protocol import MessageType
from repro.net.sharding import DEFAULT_REPLICAS, ShardRouter
from repro.net.transport import Network
from repro.obs.trace import trace_id_for
from repro.server.fairshare import FairSharePolicy, FairShareScheduler
from repro.server.server import CopernicusServer
from repro.server.shardmon import ShardMonitor, ShardProbePolicy
from repro.server.wal import (
    ProjectJournal,
    ServerJournal,
    ship_project_journal,
)
from repro.util.errors import (
    CommunicationError,
    ConfigurationError,
    TransientCommunicationError,
    UnknownShardError,
)
from repro.worker.worker import Worker


@dataclass(frozen=True)
class MigrationReport:
    """Accounting for one project's failover migration."""

    project_id: str
    from_shard: str
    to_shard: str
    #: Results replayed from the shipped journal on the successor.
    replayed: int
    #: Outstanding commands requeued on the successor.
    restored: int
    #: Snapshot + WAL files shipped.
    files_shipped: int
    bytes_shipped: int
    #: The ownership epoch the successor adopted (bumped past the dead
    #: shard's regime before the journal shipped; fences stale writers).
    epoch: int = 0


class MultiProjectRunner(ProjectRunner):
    """Drives many projects, each hosted on its hashed shard.

    Parameters
    ----------
    network:
        The overlay.
    shards:
        The project servers acting as shard fabric.  Workers may be
        attached to any of them (or to relays); cross-shard wildcard
        fetches keep every worker busy, guarded by the per-peer
        circuit breakers of :mod:`repro.net.transport`.
    workers:
        Worker clients, already linked on the overlay.
    tick:
        Logical seconds per runner cycle.
    replicas:
        Virtual nodes per shard on the consistent-hash ring.
    """

    def __init__(
        self,
        network: Network,
        shards: List[CopernicusServer],
        workers: List[Worker],
        tick: float = 60.0,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if not shards:
            raise ConfigurationError("a multi-project runner needs >= 1 shard")
        super().__init__(network, shards[0], workers, tick=tick)
        self.shards = list(shards)
        self._shards_by_name: Dict[str, CopernicusServer] = {
            shard.name: shard for shard in shards
        }
        if len(self._shards_by_name) != len(shards):
            raise ConfigurationError("shard server names must be unique")
        self.router = ShardRouter(
            [shard.name for shard in shards], replicas=replicas
        )
        #: Journal root handed to :meth:`attach_journals` (failover
        #: ships journal files between per-shard subdirectories of it).
        self._journal_root: Optional[Path] = None
        #: Fresh-controller factories per project (needed to replay a
        #: shipped journal deterministically on the successor shard).
        self._factories: Dict[str, Callable[[], Controller]] = {}
        #: Gateway-side shard liveness (see :meth:`attach_shard_monitor`).
        self.monitor: Optional[ShardMonitor] = None
        self.gateway = None
        #: Completed failovers, in order (invariant 13 cross-checks
        #: these against the event log and the metrics registry).
        self.migrations: List[MigrationReport] = []
        #: The fair-share policy shards were configured with, so a
        #: successor adopting migrated tenants uses the same policy.
        self._fairshare_policy: Optional[FairSharePolicy] = None
        #: Whether apply_fairshare ran (the policy itself may be None).
        self._fairshare_applied = False
        #: Projects displaced by a failover that found no surviving
        #: successor: {project_id: the dead shard whose journal holds
        #: its state}.  Unparked by :meth:`add_shard`.
        self._parked: Dict[str, str] = {}
        #: Names of shards failed over so far (workers still pointing
        #: at one are re-homed when a replacement shard joins).
        self._dead_shards: set = set()

    # -- routing -------------------------------------------------------------

    def _origin_for(self, project_id: str) -> CopernicusServer:
        """The shard server hosting *project_id* (consistent hash)."""
        return self._shards_by_name[self.router.route(project_id)]

    def shard_of(self, project_id: str) -> str:
        """The shard name a project routes to (stable across runs)."""
        return self.router.route(project_id)

    # -- tenancy plumbing ----------------------------------------------------

    def apply_fairshare(
        self, policy: Optional[FairSharePolicy] = None
    ) -> Dict[str, FairShareScheduler]:
        """Attach an independent fair-share scheduler to every shard.

        One shared policy, one scheduler (ledger) per shard — quotas
        bound each tenant's in-flight load per shard, which is also
        its total bound since a project lives on exactly one shard.
        Returns the schedulers by shard name for tests/monitoring.
        """
        schedulers: Dict[str, FairShareScheduler] = {}
        self._fairshare_policy = policy
        self._fairshare_applied = True
        for shard in self.shards:
            scheduler = FairShareScheduler(policy)
            shard.attach_fairshare(scheduler)
            schedulers[shard.name] = scheduler
        return schedulers

    def attach_journals(self, root) -> None:
        """Give every shard its own write-ahead journal under *root*."""
        self._journal_root = Path(root)
        for shard in self.shards:
            shard.attach_journal(ServerJournal(Path(root) / shard.name))

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        project: Project,
        controller: Controller,
        controller_factory: Optional[Callable[[], Controller]] = None,
    ) -> None:
        """Submit a project to its hashed shard.

        ``controller_factory`` builds a *fresh* equivalent controller;
        it is what makes the project eligible for shard failover —
        replaying a shipped journal needs a clean deterministic
        controller, exactly like :meth:`ProjectRunner.resume` after a
        restart.  Without one the project still runs, but a shard
        crash strands it.
        """
        if controller_factory is not None:
            self._factories[project.project_id] = controller_factory
        super().submit(project, controller)

    # -- shard failover ------------------------------------------------------

    def attach_shard_monitor(
        self,
        gateway,
        policy: Optional[ShardProbePolicy] = None,
    ) -> ShardMonitor:
        """Probe shard liveness from *gateway*; fail over the dead.

        The monitor runs inside the normal drive loop (the
        :meth:`_liveness_sweep` hook), so a shard crashed mid-run is
        detected and failed over without any out-of-band driver.
        """
        self.gateway = gateway
        self.monitor = ShardMonitor(
            gateway, [shard.name for shard in self.shards], policy
        )
        gateway.breaker_hooks.append(self._on_shard_breaker)
        return self.monitor

    def _on_shard_breaker(self, breaker, state) -> None:
        """Breaker-open toward a shard = a re-route is coming; count it."""
        if state is BreakerState.OPEN and breaker.peer in self._shards_by_name:
            self.obs.metrics.inc(
                "repro_shard_route_retries_total",
                help="Result/dispatch re-routes after a shard moved or "
                "went unreachable.",
                project="",
                reason="breaker_open",
            )

    def _liveness_sweep(self) -> None:
        super()._liveness_sweep()
        if self.monitor is not None:
            for dead in self.monitor.check(self.now):
                self.fail_over(dead)

    def dispatch(self, project_id: str, commands) -> str:
        """Queue *commands* on the project's shard, riding out an
        unreachable shard instead of failing the submission.

        With a gateway attached the shard is first probed over the
        wire; a transiently unreachable shard is retried with the
        transport's capped backoff (inside
        :meth:`~repro.net.transport.Endpoint.send`), each exhausted
        probe counted in ``repro_shard_route_retries_total``.  If the
        shard stays unreachable it is declared dead and the project
        fails over — the commands queue on the successor.  Returns the
        name of the shard that accepted the commands.
        """
        origin = self._origin_for(project_id)
        if self.gateway is not None:
            try:
                before = self.gateway.send_retries
                self.gateway.send(
                    origin.name,
                    MessageType.PROJECT_STATUS,
                    {"project_id": project_id},
                )
            except TransientCommunicationError:
                self.obs.metrics.inc(
                    "repro_shard_route_retries_total",
                    amount=max(1, self.gateway.send_retries - before),
                    help="Result/dispatch re-routes after a shard moved "
                    "or went unreachable.",
                    project=project_id,
                    reason="dispatch",
                )
                if self.monitor is None or len(self.shards) < 2:
                    raise
                self.fail_over(origin.name)
                origin = self._origin_for(project_id)
        origin.submit_commands(commands)
        return origin.name

    def fail_over(self, dead: str) -> List[MigrationReport]:
        """Remove the dead shard and migrate its projects.

        The sequence per displaced project: ship its WAL snapshot +
        log segments from the dead shard's journal directory to the
        successor's, replay them through a fresh controller with the
        shared :meth:`ProjectRunner.resume` machinery (which reseeds
        the exactly-once barrier, restores checkpoints and requeues
        outstanding commands under scoped ids), then flip the route
        table on every live server so in-flight results re-route.
        Workers homed on the dead shard are re-pointed at the
        successor fabric.  Calling this twice for the same shard is a
        no-op (the double-remove is idempotent).

        When the dead shard was the *last* one, there is no successor
        to migrate to: the displaced projects are parked
        (``PROJECT_PARKED``) with their journals intact, and resume
        automatically when a replacement shard joins the ring via
        :meth:`add_shard` — instead of failing the whole sweep.
        """
        shard = self._shards_by_name.get(dead)
        if shard is None:
            # already failed over (or never a member): the router
            # distinguishes the two, raising UnknownShardError for
            # names that were never shards
            self.router.remove_shard(dead)
            return []
        if self._journal_root is None or shard.journal is None:
            raise ConfigurationError(
                f"cannot fail over {dead!r}: shards run without journals "
                f"(attach_journals first)"
            )
        t0 = self.now
        displaced = sorted(
            pid for pid in self._projects if self.router.route(pid) == dead
        )
        self.router.remove_shard(dead)
        shard.journal.close()
        self.events.record(
            self.now,
            EventKind.SHARD_DEAD,
            server=dead,
            displaced=len(displaced),
        )
        self.obs.metrics.inc(
            "repro_shard_failovers_total",
            help="Shards declared dead and failed over.",
            shard=dead,
        )
        # the dead server's in-memory state is gone with the process;
        # drop it from every fleet-wide view (liveness, invariants,
        # stall detection must not consult a corpse)
        self.shards = [s for s in self.shards if s.name != dead]
        del self._shards_by_name[dead]
        self._servers = [s for s in self._servers if s.name != dead]
        self._dead_shards.add(dead)
        if self.project_server.name == dead and self.shards:
            self.project_server = self.shards[0]
        if self.monitor is not None:
            # keep the corpse on the zombie watch: if it was merely
            # partitioned and heals, the fence table riding on the
            # probes demotes it (PROJECT_FENCED) instead of leaving a
            # split-brain owner running
            self.monitor.mark_dead(dead)
        self._rehome_workers(dead)
        if not self.shards:
            # no surviving successor: park the displaced projects with
            # their journals intact; add_shard unparks them
            for pid in displaced:
                self._parked[pid] = dead
                self.events.record(
                    self.now, EventKind.PROJECT_PARKED, pid, from_shard=dead
                )
                self.obs.metrics.inc(
                    "repro_projects_parked_total",
                    help="Projects parked awaiting a replacement shard.",
                    project=pid,
                )
            self.obs.tracer.record(
                "shard.failover",
                t0,
                self.now,
                trace_id_for("__fleet__", f"failover-{dead}"),
                component="gateway",
                shard=dead,
                migrated=0,
                parked=len(displaced),
            )
            return []
        reports: List[MigrationReport] = []
        for pid in displaced:
            reports.append(self._migrate_project(pid, dead))
        self._finish_migrations(reports)
        self.obs.tracer.record(
            "shard.failover",
            t0,
            self.now,
            trace_id_for("__fleet__", f"failover-{dead}"),
            component="gateway",
            shard=dead,
            migrated=len(reports),
        )
        return reports

    def _finish_migrations(self, reports: List[MigrationReport]) -> None:
        """Route flips + fence recording for completed migrations."""
        for report in reports:
            # atomic route flip: every live server (the gateway
            # included) now answers/forwards toward the successor, so
            # results carried by in-flight workers re-route instead of
            # chasing the dead origin stamp
            for server in self._servers:
                server.update_route(report.project_id, report.to_shard)
            if self.monitor is not None:
                # every future probe carries the fence, so the old
                # owner — if it turns out to be a healed zombie rather
                # than a corpse — demotes itself on first contact
                self.monitor.record_fence(
                    report.project_id, report.epoch, report.to_shard
                )
        self.migrations.extend(reports)

    def add_shard(self, shard: CopernicusServer) -> List[MigrationReport]:
        """Join a replacement shard to the ring mid-run.

        The shard is wired up exactly like a constructor-time shard —
        journal under the shared root, a fair-share scheduler when the
        fleet runs one, liveness monitoring, the shared event log —
        and workers stranded on dead shards are re-pointed at it.
        Projects parked by a successor-less failover are then migrated
        onto the ring (``PROJECT_UNPARKED``) from the dead shard's
        journals; the migration reports are returned.
        """
        if shard.name in self._shards_by_name:
            raise ConfigurationError(
                f"shard {shard.name!r} is already on the ring"
            )
        if shard.name in self._dead_shards:
            raise ConfigurationError(
                f"shard name {shard.name!r} belonged to a dead shard; "
                f"replacements join under a fresh name"
            )
        self.shards.append(shard)
        self._shards_by_name[shard.name] = shard
        if all(s.name != shard.name for s in self._servers):
            self._servers.append(shard)
        self.router.add_shard(shard.name)
        shard.events = self.events
        shard.clock = max(shard.clock, self.now)
        if self._journal_root is not None and shard.journal is None:
            shard.attach_journal(
                ServerJournal(self._journal_root / shard.name)
            )
        if self._fairshare_applied and shard.fairshare is None:
            shard.attach_fairshare(FairShareScheduler(self._fairshare_policy))
        if self.monitor is not None:
            self.monitor.watch(shard.name)
        if self.project_server.name not in self._shards_by_name:
            self.project_server = shard
        for dead in sorted(self._dead_shards):
            self._rehome_workers(dead)
        reports: List[MigrationReport] = []
        for pid in sorted(self._parked):
            source = self._parked.pop(pid)
            report = self._migrate_project(pid, source)
            reports.append(report)
            self.events.record(
                self.now,
                EventKind.PROJECT_UNPARKED,
                pid,
                from_shard=source,
                to_shard=report.to_shard,
                epoch=report.epoch,
            )
            self.obs.metrics.inc(
                "repro_projects_unparked_total",
                help="Parked projects resumed on a replacement shard.",
                project=pid,
            )
        self._finish_migrations(reports)
        return reports

    def _rehome_workers(self, dead: str) -> None:
        """Point the dead shard's workers at a surviving shard."""
        survivors = [s.name for s in self.shards]
        if not survivors:
            # nowhere to re-home to; add_shard re-homes them when a
            # replacement joins
            return
        for index, worker in enumerate(self.workers):
            if worker.server != dead:
                continue
            worker.server = survivors[index % len(survivors)]
            try:
                worker.announce(self.now)
            except CommunicationError:
                # the worker's own uplink may be flaky; heartbeats
                # auto-register it with the new shard on next contact
                pass

    def _migrate_project(self, pid: str, dead: str) -> MigrationReport:
        factory = self._factories.get(pid)
        if factory is None:
            raise ConfigurationError(
                f"project {pid!r} has no controller factory; submit with "
                f"controller_factory= to make it migratable"
            )
        # bump the ownership epoch *in the source journal, before the
        # ship*: the successor recovers the new epoch atomically with
        # the state it adopts, and anything the dead shard's regime
        # still writes is fenced as stale (invariant 14)
        source = ProjectJournal(
            self._journal_root / dead / pid, snapshot_every=None
        )
        new_epoch = source.state.epoch + 1
        source.record_epoch(new_epoch)
        source.close()
        shipment = ship_project_journal(
            self._journal_root / dead,
            self._journal_root / self.router.route(pid),
            pid,
        )
        successor = self.router.route(pid)
        # resume() refuses projects it already knows — forget the
        # pre-crash registration first; the journal replay rebuilds it
        self._projects.pop(pid, None)
        self._controllers.pop(pid, None)
        self.resume(pid, factory())
        recovered = [
            e for e in self.events.filter(EventKind.SERVER_RECOVERED)
            if e.project_id == pid
        ][-1]
        report = MigrationReport(
            project_id=pid,
            from_shard=dead,
            to_shard=successor,
            replayed=recovered.details.get("replayed", 0),
            restored=recovered.details.get("restored", 0),
            files_shipped=shipment.snapshots + shipment.segments,
            bytes_shipped=shipment.bytes,
            epoch=new_epoch,
        )
        self.events.record(
            self.now,
            EventKind.PROJECT_MIGRATED,
            pid,
            from_shard=dead,
            to_shard=successor,
            replayed=report.replayed,
            restored=report.restored,
            epoch=new_epoch,
        )
        self.obs.metrics.inc(
            "repro_projects_migrated_total",
            help="Projects migrated off dead shards.",
            project=pid,
            to=successor,
        )
        self.obs.tracer.record(
            "project.migrate",
            self.now,
            self.now,
            trace_id_for(pid, "migration"),
            component="gateway",
            from_shard=dead,
            to_shard=successor,
            replayed=report.replayed,
            restored=report.restored,
        )
        return report

    # -- per-tenant telemetry ------------------------------------------------

    def _refresh_status(self) -> None:
        super()._refresh_status()
        for pid, project in self._projects.items():
            self.obs.metrics.set_gauge(
                "repro_tenant_commands_outstanding",
                project.outstanding,
                help="Issued-minus-completed commands per tenant.",
                project=pid,
                shard=self.shard_of(pid),
            )
            self.obs.metrics.set_gauge(
                "repro_tenant_commands_completed",
                project.completed,
                help="Completed commands per tenant.",
                project=pid,
                shard=self.shard_of(pid),
            )

    def tenant_report(self) -> Dict[str, Dict]:
        """Per-tenant rollup: shard placement, progress, scheduler ledger."""
        ledgers: Dict[str, Dict] = {}
        for shard in self.shards:
            if shard.fairshare is not None:
                ledgers.update(shard.fairshare.snapshot())
        out: Dict[str, Dict] = {}
        for pid, project in self._projects.items():
            out[pid] = {
                "shard": self.shard_of(pid),
                "status": project.status.value,
                "issued": project.issued,
                "completed": project.completed,
                "ledger": ledgers.get(pid, {}),
            }
        return out
