"""MultiProjectRunner: many concurrent projects over a sharded overlay.

The paper's service plane hosts many users' projects on one server
overlay.  This runner drives that shape: project ids are
consistent-hashed onto *shards* (project servers) by a
:class:`~repro.net.sharding.ShardRouter`, every shard keeps its own
queue, lease tracker, heartbeat monitor and (optionally) its own
:class:`~repro.server.wal.ServerJournal`, and a shared
:class:`~repro.server.fairshare.FairSharePolicy` can be applied so no
tenant starves another.

It *is* a :class:`~repro.core.runner.ProjectRunner` — the only routing
decision, "which server hosts this project", is the ``_origin_for``
hook, so submission, recovery, the drive loop, liveness sweeps and the
event log are shared code.  A deployment with one shard and no policy
therefore behaves exactly like the classic runner.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.core.runner import ProjectRunner
from repro.net.sharding import DEFAULT_REPLICAS, ShardRouter
from repro.net.transport import Network
from repro.server.fairshare import FairSharePolicy, FairShareScheduler
from repro.server.server import CopernicusServer
from repro.server.wal import ServerJournal
from repro.util.errors import ConfigurationError
from repro.worker.worker import Worker


class MultiProjectRunner(ProjectRunner):
    """Drives many projects, each hosted on its hashed shard.

    Parameters
    ----------
    network:
        The overlay.
    shards:
        The project servers acting as shard fabric.  Workers may be
        attached to any of them (or to relays); cross-shard wildcard
        fetches keep every worker busy, guarded by the per-peer
        circuit breakers of :mod:`repro.net.transport`.
    workers:
        Worker clients, already linked on the overlay.
    tick:
        Logical seconds per runner cycle.
    replicas:
        Virtual nodes per shard on the consistent-hash ring.
    """

    def __init__(
        self,
        network: Network,
        shards: List[CopernicusServer],
        workers: List[Worker],
        tick: float = 60.0,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if not shards:
            raise ConfigurationError("a multi-project runner needs >= 1 shard")
        super().__init__(network, shards[0], workers, tick=tick)
        self.shards = list(shards)
        self._shards_by_name: Dict[str, CopernicusServer] = {
            shard.name: shard for shard in shards
        }
        if len(self._shards_by_name) != len(shards):
            raise ConfigurationError("shard server names must be unique")
        self.router = ShardRouter(
            [shard.name for shard in shards], replicas=replicas
        )

    # -- routing -------------------------------------------------------------

    def _origin_for(self, project_id: str) -> CopernicusServer:
        """The shard server hosting *project_id* (consistent hash)."""
        return self._shards_by_name[self.router.route(project_id)]

    def shard_of(self, project_id: str) -> str:
        """The shard name a project routes to (stable across runs)."""
        return self.router.route(project_id)

    # -- tenancy plumbing ----------------------------------------------------

    def apply_fairshare(
        self, policy: Optional[FairSharePolicy] = None
    ) -> Dict[str, FairShareScheduler]:
        """Attach an independent fair-share scheduler to every shard.

        One shared policy, one scheduler (ledger) per shard — quotas
        bound each tenant's in-flight load per shard, which is also
        its total bound since a project lives on exactly one shard.
        Returns the schedulers by shard name for tests/monitoring.
        """
        schedulers: Dict[str, FairShareScheduler] = {}
        for shard in self.shards:
            scheduler = FairShareScheduler(policy)
            shard.attach_fairshare(scheduler)
            schedulers[shard.name] = scheduler
        return schedulers

    def attach_journals(self, root) -> None:
        """Give every shard its own write-ahead journal under *root*."""
        for shard in self.shards:
            shard.attach_journal(ServerJournal(Path(root) / shard.name))

    # -- per-tenant telemetry ------------------------------------------------

    def _refresh_status(self) -> None:
        super()._refresh_status()
        for pid, project in self._projects.items():
            self.obs.metrics.set_gauge(
                "repro_tenant_commands_outstanding",
                project.outstanding,
                help="Issued-minus-completed commands per tenant.",
                project=pid,
                shard=self.shard_of(pid),
            )
            self.obs.metrics.set_gauge(
                "repro_tenant_commands_completed",
                project.completed,
                help="Completed commands per tenant.",
                project=pid,
                shard=self.shard_of(pid),
            )

    def tenant_report(self) -> Dict[str, Dict]:
        """Per-tenant rollup: shard placement, progress, scheduler ledger."""
        ledgers: Dict[str, Dict] = {}
        for shard in self.shards:
            if shard.fairshare is not None:
                ledgers.update(shard.fairshare.snapshot())
        out: Dict[str, Dict] = {}
        for pid, project in self._projects.items():
            out[pid] = {
                "shard": self.shard_of(pid),
                "status": project.status.value,
                "issued": project.issued,
                "completed": project.completed,
                "ledger": ledgers.get(pid, {}),
            }
        return out
