"""ProjectRunner: binds network, servers, workers and controllers.

The runner is the driver a user's ``cpc`` command would start: it
submits a project to its origin server, then cycles workers (each cycle
a worker requests a workload, executes it in checkpointed segments and
returns results), advances the logical clock, and runs failure
detection on every server.  Command results reaching the origin server
trigger the controller, whose follow-up commands are queued
immediately — adaptivity in action.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.events import EventKind, EventLog
from repro.core.project import Project, ProjectStatus
from repro.net.transport import Network
from repro.server.datastore import replay_results
from repro.server.server import CopernicusServer
from repro.util.errors import (
    ConfigurationError,
    JournalCorruptionError,
    SchedulingError,
)
from repro.worker.worker import Worker


class ProjectRunner:
    """Drives one or more projects over a Copernicus deployment.

    Parameters
    ----------
    network:
        The overlay.
    project_server:
        The server projects are submitted to.
    workers:
        Worker clients (already linked on the overlay).
    tick:
        Logical seconds per runner cycle (heartbeat timestamps advance
        by this much).
    """

    def __init__(
        self,
        network: Network,
        project_server: CopernicusServer,
        workers: List[Worker],
        tick: float = 60.0,
    ) -> None:
        if tick <= 0:
            raise SchedulingError("tick must be positive")
        self.network = network
        self.project_server = project_server
        self.workers = list(workers)
        self.tick = float(tick)
        self.now = 0.0
        #: Audit trail of everything that happened on this runner.
        self.events = EventLog()
        self._projects: Dict[str, Project] = {}
        self._controllers: Dict[str, Controller] = {}
        #: All servers observed on the overlay (for failure checks).
        self._servers: List[CopernicusServer] = []
        for name in network.endpoints():
            endpoint = network.endpoint(name)
            if isinstance(endpoint, CopernicusServer):
                self._servers.append(endpoint)

    # -- public accessors ----------------------------------------------------

    @property
    def servers(self) -> List[CopernicusServer]:
        """Every server on the overlay (monitoring/invariant checkers
        read this instead of reaching into private state)."""
        return list(self._servers)

    @property
    def projects(self) -> List[Project]:
        """Every submitted project, in submission order."""
        return list(self._projects.values())

    def project(self, project_id: str) -> Project:
        """One submitted project by id (raises KeyError when unknown)."""
        return self._projects[project_id]

    def controller(self, project_id: str) -> Controller:
        """The live controller for a project.  After a resume or a
        shard-failover migration this is the fresh replay controller,
        not the one originally submitted."""
        return self._controllers[project_id]

    @property
    def obs(self):
        """The deployment's observability hub (shared via the network)."""
        return self.network.obs

    # -- routing -------------------------------------------------------------

    def _origin_for(self, project_id: str) -> CopernicusServer:
        """The server hosting *project_id*.

        The single-project runner always answers with its one project
        server; :class:`~repro.core.multirunner.MultiProjectRunner`
        overrides this with a consistent-hash shard lookup.  Every
        submission/forwarding path routes through here, so the two
        runners share all other machinery.
        """
        return self.project_server

    # -- submission ----------------------------------------------------------

    def submit(self, project: Project, controller: Controller) -> None:
        """Submit a project: host it and queue its initial commands."""
        if project.project_id in self._projects:
            raise SchedulingError(
                f"project {project.project_id!r} already submitted"
            )
        self._projects[project.project_id] = project
        self._controllers[project.project_id] = controller
        controller.bind_obs(self.network.obs)

        def sink(command: Command, result: dict) -> None:
            self._on_result(project, controller, command, result)

        origin = self._origin_for(project.project_id)
        # Attach the audit trail before the first submission so events
        # raised at admission time (e.g. backpressure deferrals) land
        # in the same log run() later re-attaches fleet-wide.
        origin.events = self.events
        origin.clock = max(origin.clock, self.now)
        origin.host_project(project.project_id, sink)
        initial = controller.on_project_start(project)
        project.record_issue(initial)
        origin.submit_commands(initial)
        project.status = ProjectStatus.RUNNING
        self.events.record(
            self.now, EventKind.PROJECT_SUBMITTED, project.project_id
        )
        self.events.record(
            self.now,
            EventKind.COMMANDS_ISSUED,
            project.project_id,
            count=len(initial),
            ids=[c.command_id for c in initial],
            generation="initial",
        )

    def resume(self, project_id: str, controller: Controller) -> Project:
        """Restart a journaled project after a project-server crash.

        The project server must have a journal attached
        (:meth:`~repro.server.server.CopernicusServer.attach_journal`)
        whose directory survived the crash.  The journal's snapshot+log
        is replayed through the *fresh* ``controller`` (controllers are
        deterministic, so this reconstructs the exact pre-crash state),
        the exactly-once barrier is reseeded from the journaled
        completions, and every outstanding command — issued, leased or
        requeued before the crash but never completed — goes back on
        the queue, resuming from its last journaled checkpoint when one
        was reported.  Afterwards :meth:`run` continues the project to
        completion as if the crash had not happened.

        Returns the reconstructed :class:`Project`.
        """
        if project_id in self._projects:
            raise SchedulingError(
                f"project {project_id!r} already submitted"
            )
        origin = self._origin_for(project_id)
        server_journal = origin.journal
        if server_journal is None:
            raise ConfigurationError(
                f"server {origin.name!r} has no journal "
                f"attached; nothing to resume from"
            )
        state = server_journal.project(project_id).recover()
        project, outstanding, completed_ids = replay_results(
            project_id, state.results, controller
        )
        # determinism cross-check: every command the journal saw issued
        # must be explained by the fresh controller's re-issue
        replayed_ids = completed_ids | {c.command_id for c in outstanding}
        unexplained = state.issued_ids - replayed_ids
        if unexplained:
            raise JournalCorruptionError(
                f"journal for {project_id!r} holds issued commands the "
                f"fresh controller did not re-issue (controller not "
                f"deterministic?): {sorted(unexplained)[:5]}"
            )
        for command in outstanding:
            checkpoint = state.checkpoints.get(command.command_id)
            if checkpoint is not None:
                command.checkpoint = checkpoint
        self._projects[project_id] = project
        self._controllers[project_id] = controller
        controller.bind_obs(self.network.obs)

        def sink(command: Command, result: dict) -> None:
            self._on_result(project, controller, command, result)

        origin.events = self.events
        origin.clock = max(origin.clock, self.now)
        origin.host_project(project_id, sink)
        # reseed the journaled ownership epoch before the outstanding
        # commands are queued, so they are restamped under the regime
        # the recovering owner actually holds (invariant 14)
        origin.restore_commands(
            project_id, outstanding, completed_ids, epoch=state.epoch
        )
        self.events.record(
            self.now,
            EventKind.SERVER_RECOVERED,
            project_id,
            server=origin.name,
            replayed=len(state.results),
            restored=len(outstanding),
            issued=project.issued,
        )
        self.events.record(
            self.now,
            EventKind.COMMANDS_ISSUED,
            project_id,
            count=len(replayed_ids),
            ids=sorted(replayed_ids),
            generation="recovered",
        )
        for command, _result in state.results:
            self.events.record(
                self.now,
                EventKind.COMMAND_COMPLETED,
                project_id,
                command=command.command_id,
                replayed=True,
            )
        for command in outstanding:
            checkpoint = command.checkpoint
            self.events.record(
                self.now,
                EventKind.COMMAND_RESTORED,
                project_id,
                command=command.command_id,
                has_checkpoint=checkpoint is not None,
                step=(
                    checkpoint.get("step")
                    if isinstance(checkpoint, dict)
                    else None
                ),
            )
        project.status = ProjectStatus.RUNNING
        self._refresh_status()  # already-complete projects finish here
        return project

    def _on_result(
        self,
        project: Project,
        controller: Controller,
        command: Command,
        result: dict,
    ) -> None:
        project.record_result(command, result)
        self.events.record(
            self.now,
            EventKind.COMMAND_COMPLETED,
            project.project_id,
            command=command.command_id,
        )
        follow_ups = controller.on_command_finished(project, command, result)
        ctx = command.trace or {}
        self.network.obs.tracer.record(
            "controller.update",
            self.now,
            self.now,
            ctx.get("trace_id") or "",
            component="controller",
            parent_id=ctx.get("span_id"),
            command=command.command_id,
            follow_ups=len(follow_ups or ()),
        )
        self.network.obs.metrics.inc(
            "repro_controller_results_total",
            help="Results folded into projects by controllers.",
            project=project.project_id,
        )
        if follow_ups:
            project.record_issue(follow_ups)
            self._origin_for(project.project_id).submit_commands(follow_ups)
            self.network.obs.metrics.inc(
                "repro_controller_follow_ups_total",
                amount=len(follow_ups),
                help="Follow-up commands issued by controllers.",
                project=project.project_id,
            )
            self.events.record(
                self.now,
                EventKind.COMMANDS_ISSUED,
                project.project_id,
                count=len(follow_ups),
                ids=[c.command_id for c in follow_ups],
                trigger=command.command_id,
            )

    # -- main loop ------------------------------------------------------------

    def _queued_anywhere(self) -> int:
        return sum(len(server.queue) for server in self._servers)

    def run(self, max_cycles: int = 10000) -> None:
        """Cycle until every project completes (or no progress is possible).

        Raises
        ------
        SchedulingError
            If commands remain but no live worker can make progress
            (deadlock), or ``max_cycles`` is exhausted.
        """
        # Point the overlay's servers at this runner's audit trail so
        # failure handling (deaths, requeues, checkpoints, duplicate
        # drops) lands in the same log the invariant checker replays.
        for server in self._servers:
            server.events = self.events
            server.clock = max(server.clock, self.now)
        for _ in range(max_cycles):
            if self._all_complete():
                return
            progress = 0
            for worker in self.workers:
                if worker.crashed:
                    continue
                # each worker beats/polls at its own jittered offset
                # within the cycle, not in lockstep at the boundary
                worker_now = self.now + worker.poll_offset
                worker.heartbeat(worker_now)
                progress += worker.work_once(now=worker_now)
            self.now += self.tick
            self._liveness_sweep()
            self._refresh_status()
            if progress == 0:
                if self._all_complete():
                    return
                if self._queued_anywhere() == 0 and not self._any_in_flight():
                    raise SchedulingError(
                        "no queued commands and no progress; project stalled"
                    )
                if all(w.crashed for w in self.workers):
                    raise SchedulingError("every worker has crashed")
        if not self._all_complete():
            raise SchedulingError(f"projects unfinished after {max_cycles} cycles")

    def _liveness_sweep(self) -> None:
        """Per-cycle failure detection across the fleet.

        The single-server runner checks worker liveness on every
        server; :class:`~repro.core.multirunner.MultiProjectRunner`
        extends this with shard-level probes and failover.
        """
        for server in self._servers:
            server.check_liveness(self.now)

    def _any_in_flight(self) -> bool:
        return any(
            any(cmds for cmds in server.assignments.values())
            for server in self._servers
        )

    def _all_complete(self) -> bool:
        self._refresh_status()
        return all(
            p.status is ProjectStatus.COMPLETE for p in self._projects.values()
        )

    def _refresh_status(self) -> None:
        for pid, project in self._projects.items():
            if project.status is ProjectStatus.RUNNING and self._controllers[
                pid
            ].is_complete(project):
                project.status = ProjectStatus.COMPLETE
                self.events.record(
                    self.now, EventKind.PROJECT_COMPLETED, pid
                )

    # -- monitoring ------------------------------------------------------------

    def status(self) -> List[dict]:
        """Controller summaries for every project (the web-UI view)."""
        return [
            self._controllers[pid].summary(project)
            for pid, project in self._projects.items()
        ]
