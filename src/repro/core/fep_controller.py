"""The BAR free-energy controller plugin.

Runs a ladder of lambda windows between two harmonic end states; each
command samples one window and reports work values to its neighbours.
Per adjacent pair the controller estimates the free-energy gap with
BAR, sums the ladder, and — demonstrating the paper's convergence-
driven stop criterion ("until ... the standard error estimate of the
output result has reached a user-specified minimum value") — issues
another round of sampling commands if the combined error is too large.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.project import Project
from repro.fep.bar import bar_free_energy, bar_error
from repro.fep.systems import HarmonicWindow, window_ladder
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


@dataclass
class FEPProjectConfig:
    """Parameters of a BAR free-energy project."""

    k_start: float = 1.0
    k_end: float = 16.0
    x0_start: float = 0.0
    x0_end: float = 0.0
    n_windows: int = 6
    samples_per_command: int = 200
    kt: float = 1.0
    target_error: float = 0.05
    max_rounds: int = 10
    method: str = "exact"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_windows < 2:
            raise ConfigurationError("need at least two windows")
        if self.samples_per_command < 2:
            raise ConfigurationError("samples_per_command must be >= 2")
        if self.target_error <= 0:
            raise ConfigurationError("target_error must be positive")
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")


class BARController(Controller):
    """Adaptive BAR ladder with an error-based stop criterion."""

    def __init__(self, config: FEPProjectConfig) -> None:
        self.config = config
        self.rng = RandomStream(config.seed)
        self.windows: List[HarmonicWindow] = window_ladder(
            HarmonicWindow(config.k_start, config.x0_start),
            HarmonicWindow(config.k_end, config.x0_end),
            config.n_windows,
        )
        # accumulated work samples per window
        self._work_next: Dict[int, List[np.ndarray]] = {}
        self._work_prev: Dict[int, List[np.ndarray]] = {}
        self.round = 0
        self.pending: set = set()
        self._complete = False
        self.estimate: Optional[float] = None
        self.error: Optional[float] = None
        self.history: List[dict] = []

    # -- command fabrication ----------------------------------------------

    def _window_commands(self, project: Project) -> List[Command]:
        cfg = self.config
        commands = []
        for i, window in enumerate(self.windows):
            payload = {
                "k": window.k,
                "x0": window.x0,
                "n_samples": cfg.samples_per_command,
                "kt": cfg.kt,
                "seed": int(self.rng.integers(0, 2**31 - 1)),
                "method": cfg.method,
                "window_index": i,
            }
            if i + 1 < len(self.windows):
                payload["k_next"] = self.windows[i + 1].k
                payload["x0_next"] = self.windows[i + 1].x0
            if i > 0:
                payload["k_prev"] = self.windows[i - 1].k
                payload["x0_prev"] = self.windows[i - 1].x0
            command_id = f"lambda{i}_round{self.round}"
            self.pending.add(command_id)
            commands.append(
                Command(
                    command_id=command_id,
                    project_id=project.project_id,
                    executable="fepsample",
                    payload=payload,
                    priority=self.round,
                )
            )
        return commands

    # -- controller events ----------------------------------------------------

    def on_project_start(self, project: Project) -> List[Command]:
        """Issue the first round of window-sampling commands."""
        return self._window_commands(project)

    def on_command_finished(
        self, project: Project, command: Command, result: Dict
    ) -> List[Command]:
        """Collect work values; at round end, re-estimate and maybe re-issue."""
        self.pending.discard(command.command_id)
        window = int(result["window_index"])
        if "work_to_next" in result:
            self._work_next.setdefault(window, []).append(
                np.asarray(result["work_to_next"])
            )
        if "work_to_prev" in result:
            self._work_prev.setdefault(window, []).append(
                np.asarray(result["work_to_prev"])
            )
        if self.pending:
            return []
        # round complete: estimate the ladder
        self._estimate()
        self.history.append(
            {"round": self.round, "dF": self.estimate, "error": self.error}
        )
        if self.error is not None and self.error <= self.config.target_error:
            self._complete = True
            return []
        self.round += 1
        if self.round >= self.config.max_rounds:
            self._complete = True
            return []
        return self._window_commands(project)

    def _estimate(self) -> None:
        total, variance = 0.0, 0.0
        for i in range(len(self.windows) - 1):
            forward = np.concatenate(self._work_next.get(i, [np.zeros(0)]))
            reverse = np.concatenate(self._work_prev.get(i + 1, [np.zeros(0)]))
            if len(forward) == 0 or len(reverse) == 0:
                self.estimate, self.error = None, None
                return
            df = bar_free_energy(forward, reverse, kt=self.config.kt)
            err = bar_error(forward, reverse, df, kt=self.config.kt)
            total += df
            variance += err * err
        self.estimate = total
        self.error = float(np.sqrt(variance))

    def is_complete(self, project: Project) -> bool:
        """Whether the error target (or round limit) was reached."""
        return self._complete

    def summary(self, project: Project) -> Dict:
        """Progress report: round, current estimate and error."""
        base = super().summary(project)
        base.update(
            {
                "round": self.round,
                "dF": self.estimate,
                "error": self.error,
                "target_error": self.config.target_error,
            }
        )
        return base

    def analytic_reference(self) -> float:
        """The exact ladder free energy, for validation."""
        kt = self.config.kt
        return self.windows[-1].free_energy(kt) - self.windows[0].free_energy(kt)
