"""Distance metrics for clustering trajectory frames.

A metric computes distances between a batch of frames and a single
target frame (``to_target``), vectorised over the batch — the access
pattern of k-centers clustering, where each iteration measures every
frame against one new centre.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.rmsd import rmsd_to_reference
from repro.util.errors import ConfigurationError


class EuclideanMetric:
    """Plain Euclidean distance on feature vectors ``(n_frames, d)``."""

    def to_target(self, frames: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Distances from every frame to *target*."""
        frames = np.asarray(frames, dtype=float)
        target = np.asarray(target, dtype=float)
        if frames.ndim == 1:
            frames = frames[:, None]
        if target.ndim == 0:
            target = target[None]
        if frames.shape[1:] != target.shape:
            raise ConfigurationError(
                f"frame shape {frames.shape[1:]} != target shape {target.shape}"
            )
        diff = frames - target[None]
        return np.sqrt(np.sum(diff.reshape(len(frames), -1) ** 2, axis=1))


class RMSDMetric:
    """Optimal-superposition RMSD on coordinate frames ``(n, n_atoms, 3)``.

    This is the paper's clustering metric: conformations are compared
    after rigid-body alignment, so rotated/translated copies of the
    same structure cluster together.
    """

    def to_target(self, frames: np.ndarray, target: np.ndarray) -> np.ndarray:
        """RMSD from every frame to *target* after Kabsch alignment."""
        frames = np.asarray(frames, dtype=float)
        target = np.asarray(target, dtype=float)
        if frames.ndim != 3 or target.ndim != 2:
            raise ConfigurationError(
                "RMSDMetric needs (n_frames, n_atoms, 3) frames and "
                "(n_atoms, 3) target"
            )
        return rmsd_to_reference(frames, target, align=True)
