"""Adaptive-sampling weight schemes for spawning new trajectories.

The Copernicus MSM controller chooses, at every clustering step, how
many new trajectories to start from each microstate (paper section
3.2).  Two regimes:

* **even weighting** — uniform over discovered states; right when the
  state partitioning itself is still unstable (early generations);
* **adaptive weighting** — proportional to the statistical uncertainty
  of each state's outgoing transition probabilities; optimises
  convergence of the kinetics once states are stable, and "can boost
  sampling efficiency twofold compared to even weighting".

The uncertainty weight uses the Dirichlet posterior of each row: a row
observed ``n_i`` times has total transition-probability variance
``sum_j p_ij (1 - p_ij) / (n_i + K + 1)`` under a uniform prior with
``K`` states — the `mincounts` variant keeps only the ``1/n`` scaling,
the classic "explore least-visited states" heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError, EstimationError
from repro.util.rng import RandomStream, ensure_stream


def _check_counts(counts: np.ndarray) -> np.ndarray:
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
        raise EstimationError(f"count matrix must be square, got {counts.shape}")
    return counts


def even_weights(counts: np.ndarray) -> np.ndarray:
    """Uniform weights over discovered (visited) states."""
    counts = _check_counts(counts)
    visited = (counts.sum(axis=1) + counts.sum(axis=0)) > 0
    if not visited.any():
        raise EstimationError("no visited states")
    w = visited.astype(float)
    return w / w.sum()


def mincounts_weights(counts: np.ndarray) -> np.ndarray:
    """Weights inversely proportional to visit counts (exploration)."""
    return weighted_counts_weights(counts, n=1.0)


def weighted_counts_weights(counts: np.ndarray, n: float = 1.0) -> np.ndarray:
    """Weights proportional to ``(1 + visits)^(-n)`` over visited states.

    MAccelerator's weighted-counts family: the exponent *n* trades
    exploration against refinement — ``n = 0`` reproduces even
    weighting over visited states, ``n = 1`` is the classic min-counts
    heuristic, and larger *n* concentrates spawns ever harder on the
    least-visited states (the ratio of a rare state's weight to a
    popular state's grows monotonically with *n*).
    """
    counts = _check_counts(counts)
    if n < 0:
        raise ConfigurationError(f"exponent n must be >= 0, got {n}")
    visits = counts.sum(axis=1) + counts.sum(axis=0)
    visited = visits > 0
    if not visited.any():
        raise EstimationError("no visited states")
    with np.errstate(over="ignore"):
        w = np.where(visited, (1.0 + visits) ** (-float(n)), 0.0)
    return w / w.sum()


def uncertainty_weights(counts: np.ndarray, prior: float = 1.0) -> np.ndarray:
    """Weights from the Dirichlet posterior variance of each row.

    ``w_i proportional to sum_j p_ij (1 - p_ij) / (n_i + K + 1)`` with
    posterior means ``p_ij = (c_ij + prior/K) / (n_i + prior)``.
    States with no outgoing counts receive the maximum row weight, so
    newly discovered states are sampled first — which is what makes the
    scheme *adaptive* rather than merely refining.
    """
    counts = _check_counts(counts)
    n_states = counts.shape[0]
    visited = (counts.sum(axis=1) + counts.sum(axis=0)) > 0
    if not visited.any():
        raise EstimationError("no visited states")
    row_totals = counts.sum(axis=1)
    alpha = counts + prior / n_states
    alpha_total = row_totals + prior
    p = alpha / alpha_total[:, None]
    variance = (p * (1.0 - p)).sum(axis=1) / (alpha_total + 1.0)
    w = np.where(visited, variance, 0.0)
    # unvisited-out states (seen only as destinations) are maximally uncertain
    no_out = visited & (row_totals == 0)
    if w[visited].max() > 0:
        w[no_out] = np.where(w[no_out] > 0, w[no_out], w.max())
    if w.sum() == 0:
        return even_weights(counts)
    return w / w.sum()


def allocate_starts(
    weights: np.ndarray,
    n_trajectories: int,
    rng: int | RandomStream | None = 0,
) -> np.ndarray:
    """Turn state weights into integer trajectory counts per state.

    Uses largest-remainder apportionment with random tie-breaking, so
    the allocation is exact (sums to ``n_trajectories``), proportional
    and reproducible.  An all-zero weight vector (every state pruned,
    or nothing visited yet) falls back to uniform apportionment over
    all states, so callers always get exactly ``n_trajectories`` starts
    back — the invariant the MSM controller's generation size rests on.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or len(weights) == 0:
        raise ConfigurationError("weights must be a non-empty 1-D array")
    if np.any(~np.isfinite(weights)) or np.any(weights < 0):
        raise ConfigurationError("weights must be finite and non-negative")
    if n_trajectories < 0:
        raise ConfigurationError("n_trajectories must be >= 0")
    total = weights.sum()
    if total <= 0:
        # nothing visited: spread the starts evenly rather than dying
        weights = np.ones_like(weights)
        total = weights.sum()
    stream = ensure_stream(rng)
    quota = weights / total * n_trajectories
    base = np.floor(quota).astype(int)
    remaining = n_trajectories - int(base.sum())
    if remaining > 0:
        remainders = quota - base
        # random jitter breaks exact ties reproducibly
        order = np.argsort(-(remainders + 1e-12 * stream.uniform(size=len(weights))))
        base[order[:remaining]] += 1
    return base
