"""Markov state modelling: clustering, estimation, analysis, adaptive sampling.

This subpackage is the reproduction's stand-in for the MSMBuilder-style
tooling the paper's MSM plugin used: kinetic clustering of trajectory
frames into microstates, transition counting at a lag time, maximum-
likelihood (optionally reversible) transition-matrix estimation,
spectral analysis (stationary distribution, implied timescales,
propagation ``p(t+tau) = p(t) T(tau)``), Markovianity validation and
the adaptive-sampling weight schemes that drive trajectory spawning.
"""

from repro.msm.metrics import EuclideanMetric, RMSDMetric
from repro.msm.cluster import (
    KCentersClustering,
    KMedoidsClustering,
    RegularSpatialClustering,
    ClusterResult,
)
from repro.msm.counts import count_transitions, count_matrix_multi
from repro.msm.estimation import (
    estimate_transition_matrix,
    reversible_transition_matrix,
)
from repro.msm.analysis import (
    stationary_distribution,
    implied_timescales,
    eigenvalues,
    propagate,
    population_evolution,
    mean_first_passage_time,
)
from repro.msm.connectivity import largest_connected_set, trim_counts
from repro.msm.adaptive import (
    even_weights,
    mincounts_weights,
    uncertainty_weights,
    allocate_starts,
)
from repro.msm.validation import (
    implied_timescale_scan,
    chapman_kolmogorov,
)
from repro.msm.model import MarkovStateModel
from repro.msm.featurize import (
    PairwiseDistanceFeaturizer,
    ContactFeaturizer,
    DihedralFeaturizer,
    FeatureUnion,
    villin_featurizer,
)
from repro.msm.lumping import (
    lump_states,
    coarse_grain,
    metastability,
    spectral_embedding,
)
from repro.msm.tpt import (
    forward_committor,
    backward_committor,
    reactive_flux,
    total_flux,
    rate,
    dominant_pathways,
)

__all__ = [
    "EuclideanMetric",
    "RMSDMetric",
    "KCentersClustering",
    "KMedoidsClustering",
    "RegularSpatialClustering",
    "ClusterResult",
    "count_transitions",
    "count_matrix_multi",
    "estimate_transition_matrix",
    "reversible_transition_matrix",
    "stationary_distribution",
    "implied_timescales",
    "eigenvalues",
    "propagate",
    "population_evolution",
    "mean_first_passage_time",
    "largest_connected_set",
    "trim_counts",
    "even_weights",
    "mincounts_weights",
    "uncertainty_weights",
    "allocate_starts",
    "implied_timescale_scan",
    "chapman_kolmogorov",
    "MarkovStateModel",
    "forward_committor",
    "backward_committor",
    "reactive_flux",
    "total_flux",
    "rate",
    "dominant_pathways",
    "lump_states",
    "coarse_grain",
    "metastability",
    "spectral_embedding",
    "PairwiseDistanceFeaturizer",
    "ContactFeaturizer",
    "DihedralFeaturizer",
    "FeatureUnion",
    "villin_featurizer",
]
