"""Transition-path theory: committors, fluxes, rates, mechanism.

The paper stresses that a converged MSM "allows prediction not only of
the equilibrium distribution of states but also folding rates,
mechanism, and any kinetic or thermodynamic quantities".  This module
provides that analysis layer: forward/backward committors between an
unfolded set A and a folded set B, the reactive flux network, the A->B
rate, and the dominant folding pathways (Metzner, Schütte, Vanden-
Eijnden, 2009).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.msm.analysis import stationary_distribution, _check_T
from repro.util.errors import EstimationError


def _check_sets(n: int, source: np.ndarray, sink: np.ndarray):
    source = np.asarray(source, dtype=bool)
    sink = np.asarray(sink, dtype=bool)
    if source.shape != (n,) or sink.shape != (n,):
        raise EstimationError("source/sink masks must match the state count")
    if not source.any() or not sink.any():
        raise EstimationError("source and sink must be non-empty")
    if (source & sink).any():
        raise EstimationError("source and sink overlap")
    return source, sink


def forward_committor(
    T: np.ndarray, source: np.ndarray, sink: np.ndarray
) -> np.ndarray:
    """Probability of reaching *sink* before *source*, per state.

    Solves ``q = T q`` on intermediate states with ``q = 0`` on the
    source and ``q = 1`` on the sink.
    """
    T = _check_T(T)
    n = T.shape[0]
    source, sink = _check_sets(n, source, sink)
    q = np.zeros(n)
    q[sink] = 1.0
    free = ~(source | sink)
    if free.any():
        A = np.eye(free.sum()) - T[np.ix_(free, free)]
        b = T[np.ix_(free, sink.nonzero()[0])].sum(axis=1)
        try:
            q[free] = np.linalg.solve(A, b)
        except np.linalg.LinAlgError as exc:
            raise EstimationError(f"committor system singular: {exc}") from exc
    return np.clip(q, 0.0, 1.0)


def backward_committor(
    T: np.ndarray, source: np.ndarray, sink: np.ndarray
) -> np.ndarray:
    """Probability of having last visited *source* rather than *sink*.

    Computed as the forward committor of the time-reversed chain
    ``T~_ij = pi_j T_ji / pi_i`` with source and sink swapped.
    """
    T = _check_T(T)
    pi = stationary_distribution(T)
    with np.errstate(divide="ignore", invalid="ignore"):
        T_rev = (pi[None, :] * T.T) / pi[:, None]
    T_rev = np.nan_to_num(T_rev)
    # re-normalise against numerical drift
    rows = T_rev.sum(axis=1)
    good = rows > 0
    T_rev[good] = T_rev[good] / rows[good, None]
    T_rev[~good, ~good] = 1.0
    return forward_committor(T_rev, source=sink, sink=source)


def reactive_flux(
    T: np.ndarray, source: np.ndarray, sink: np.ndarray
) -> np.ndarray:
    """Net reactive flux matrix ``f+_ij`` for the A->B process.

    ``f_ij = pi_i q-_i T_ij q+_j`` for i != j; the returned matrix is
    the *net* flux ``max(f_ij - f_ji, 0)``.
    """
    T = _check_T(T)
    pi = stationary_distribution(T)
    qf = forward_committor(T, source, sink)
    qb = backward_committor(T, source, sink)
    flux = pi[:, None] * qb[:, None] * T * qf[None, :]
    np.fill_diagonal(flux, 0.0)
    net = flux - flux.T
    return np.where(net > 0, net, 0.0)


def total_flux(T: np.ndarray, source: np.ndarray, sink: np.ndarray) -> float:
    """Total A->B reactive flux (per lag time)."""
    source = np.asarray(source, dtype=bool)
    net = reactive_flux(T, source, np.asarray(sink, dtype=bool))
    return float(net[source, :].sum())


def rate(
    T: np.ndarray, source: np.ndarray, sink: np.ndarray, lag_time: float = 1.0
) -> float:
    """A->B transition rate: total flux over the reactant population.

    ``k_AB = F / (lag * sum_i pi_i q-_i)`` — events per unit time.
    """
    if lag_time <= 0:
        raise EstimationError("lag_time must be positive")
    T = _check_T(T)
    pi = stationary_distribution(T)
    qb = backward_committor(T, source, sink)
    reactant = float(np.dot(pi, qb))
    if reactant <= 0:
        raise EstimationError("no reactant population")
    return total_flux(T, source, sink) / (lag_time * reactant)


def dominant_pathways(
    T: np.ndarray,
    source: np.ndarray,
    sink: np.ndarray,
    n_paths: int = 5,
) -> List[Tuple[List[int], float]]:
    """Decompose the net flux into its strongest pathways.

    Iteratively finds the bottleneck-widest A->B path (max-min flux,
    via binary search over edge thresholds + BFS), subtracts its
    bottleneck flux, and repeats.  Returns ``[(path, flux), ...]`` in
    decreasing flux order — the "folding mechanism" readout.
    """
    if n_paths < 1:
        raise EstimationError("n_paths must be >= 1")
    T = _check_T(T)
    n = T.shape[0]
    source, sink = _check_sets(n, source, sink)
    net = reactive_flux(T, source, sink).copy()
    out: List[Tuple[List[int], float]] = []

    def widest_path() -> Tuple[List[int], float]:
        # Dijkstra-like max-min (bottleneck) path from any source to any sink
        width = np.full(n, -np.inf)
        prev = np.full(n, -1, dtype=int)
        width[source] = np.inf
        visited = np.zeros(n, dtype=bool)
        for _ in range(n):
            candidates = np.where(~visited, width, -np.inf)
            u = int(np.argmax(candidates))
            if candidates[u] == -np.inf:
                break
            visited[u] = True
            if sink[u]:
                path = [u]
                while prev[path[-1]] >= 0:
                    path.append(prev[path[-1]])
                if not source[path[-1]]:
                    break
                return path[::-1], float(width[u])
            w_new = np.minimum(width[u], net[u])
            better = (w_new > width) & ~visited
            width[better] = w_new[better]
            prev[better] = u
        return [], 0.0

    for _ in range(n_paths):
        path, bottleneck = widest_path()
        if not path or bottleneck <= 0 or not np.isfinite(bottleneck):
            break
        out.append((path, bottleneck))
        for a, b in zip(path[:-1], path[1:]):
            net[a, b] -= bottleneck
    return out
