"""High-level MarkovStateModel: one object tying the MSM pipeline together."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.msm.analysis import (
    implied_timescales,
    mean_first_passage_time,
    population_evolution,
    propagate,
    stationary_distribution,
)
from repro.msm.connectivity import trim_counts
from repro.msm.counts import count_matrix_multi
from repro.msm.estimation import (
    estimate_transition_matrix,
    reversible_transition_matrix,
)
from repro.util.errors import EstimationError


class MarkovStateModel:
    """An estimated MSM over a microstate partitioning.

    Parameters
    ----------
    lag:
        Lag time in frames.
    frame_time:
        Physical time per frame (any unit; timescales inherit it).
    reversible:
        Estimate under detailed balance (maximum-likelihood reversible).
    prior:
        Pseudocount for the non-reversible estimator.

    Example
    -------
    >>> import numpy as np
    >>> from repro.msm import MarkovStateModel
    >>> dtrajs = [np.array([0, 0, 1, 1, 0, 0, 1, 1, 0])]
    >>> msm = MarkovStateModel(lag=1).fit(dtrajs, n_states=2)
    >>> msm.transition_matrix.shape
    (2, 2)
    """

    def __init__(
        self,
        lag: int = 1,
        frame_time: float = 1.0,
        reversible: bool = False,
        prior: float = 0.0,
    ) -> None:
        if lag < 1:
            raise EstimationError(f"lag must be >= 1, got {lag}")
        if frame_time <= 0:
            raise EstimationError("frame_time must be positive")
        self.lag = int(lag)
        self.frame_time = float(frame_time)
        self.reversible = bool(reversible)
        self.prior = float(prior)
        self._T: Optional[np.ndarray] = None
        self._counts: Optional[np.ndarray] = None
        self._kept: Optional[np.ndarray] = None
        self._n_states_full: Optional[int] = None

    # -- fitting ------------------------------------------------------------

    def fit(
        self, dtrajs: Sequence[np.ndarray], n_states: Optional[int] = None
    ) -> "MarkovStateModel":
        """Estimate the MSM from discrete trajectories.

        Counting is restricted to the largest strongly connected set;
        :attr:`active_set` maps model states back to input states.
        """
        dtrajs = [np.asarray(d, dtype=int) for d in dtrajs]
        if n_states is None:
            n_states = 1 + max((int(d.max()) for d in dtrajs if d.size), default=0)
        raw = count_matrix_multi(dtrajs, n_states, self.lag)
        trimmed, kept = trim_counts(raw)
        if self.reversible:
            self._T = reversible_transition_matrix(trimmed)
        else:
            self._T = estimate_transition_matrix(trimmed, prior=self.prior)
        self._counts = trimmed
        self._kept = kept
        self._n_states_full = n_states
        return self

    def _require_fit(self) -> None:
        if self._T is None:
            raise EstimationError("model has not been fitted")

    # -- properties -----------------------------------------------------------

    @property
    def transition_matrix(self) -> np.ndarray:
        """The estimated transition matrix on the active set."""
        self._require_fit()
        return self._T

    @property
    def count_matrix(self) -> np.ndarray:
        """The trimmed count matrix."""
        self._require_fit()
        return self._counts

    @property
    def active_set(self) -> np.ndarray:
        """Original state indices retained after ergodic trimming."""
        self._require_fit()
        return self._kept

    @property
    def n_states(self) -> int:
        """Number of active states."""
        self._require_fit()
        return self._T.shape[0]

    @property
    def lag_time(self) -> float:
        """Lag in physical units."""
        return self.lag * self.frame_time

    # -- analysis ------------------------------------------------------------

    def stationary_distribution(self) -> np.ndarray:
        """Equilibrium populations over the active set."""
        self._require_fit()
        return stationary_distribution(self._T)

    def equilibrium_state(self) -> int:
        """The active-set index of the most populated equilibrium state.

        This is the paper's blind native-state prediction: "the lowest
        free energy conformation can be predicted from the largest-
        population cluster at equilibrium".
        """
        return int(np.argmax(self.stationary_distribution()))

    def timescales(self, k: int = 5) -> np.ndarray:
        """Implied timescales in physical units."""
        self._require_fit()
        return implied_timescales(self._T, self.lag_time, k=k)

    def propagate(self, p0: np.ndarray, n_steps: int) -> np.ndarray:
        """Evolve a distribution over the active set."""
        self._require_fit()
        return propagate(p0, self._T, n_steps)

    def population_curve(self, p0, n_steps: int, member_mask):
        """Times and summed population of a state subset."""
        self._require_fit()
        return population_evolution(
            p0, self._T, n_steps, self.lag_time, member_mask
        )

    def mfpt(self, targets: np.ndarray) -> np.ndarray:
        """Mean first-passage times into a target set, physical units."""
        self._require_fit()
        return mean_first_passage_time(self._T, targets, self.lag_time)

    def map_to_active(self, states: np.ndarray) -> np.ndarray:
        """Map original state indices to active-set indices (-1 if trimmed)."""
        self._require_fit()
        mapping = np.full(self._n_states_full, -1, dtype=int)
        mapping[self._kept] = np.arange(len(self._kept))
        return mapping[np.asarray(states, dtype=int)]
