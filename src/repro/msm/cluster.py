"""Kinetic clustering: k-centers and k-medoids.

The paper's MSM plugin clusters pooled trajectory snapshots into
microstates (10,000 clusters for villin).  K-centers is the standard
choice for that first pass: it is deterministic given a seed, runs in
``O(k n)`` metric evaluations and guarantees every frame lies within
the final cover radius of its centre.  K-medoids refines assignments
at fixed k when cluster compactness matters more than cover guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.msm.metrics import EuclideanMetric
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream, ensure_stream


@dataclass
class ClusterResult:
    """Output of a clustering pass.

    Attributes
    ----------
    assignments:
        ``(n_frames,)`` microstate index per frame.
    centers:
        Coordinates of each cluster centre (frames subset).
    center_indices:
        Frame index of each centre in the input array.
    distances:
        Distance of every frame to its assigned centre.
    """

    assignments: np.ndarray
    centers: np.ndarray
    center_indices: np.ndarray
    distances: np.ndarray

    @property
    def n_clusters(self) -> int:
        """Number of clusters."""
        return len(self.center_indices)

    @property
    def cover_radius(self) -> float:
        """Largest frame-to-centre distance."""
        return float(self.distances.max()) if len(self.distances) else 0.0

    def populations(self) -> np.ndarray:
        """Frame counts per cluster."""
        return np.bincount(self.assignments, minlength=self.n_clusters)

    def assign(self, frames: np.ndarray, metric=None) -> np.ndarray:
        """Assign new frames to the nearest existing centre."""
        metric = metric or EuclideanMetric()
        dist = np.full(len(frames), np.inf)
        labels = np.zeros(len(frames), dtype=int)
        for c, center in enumerate(self.centers):
            d = metric.to_target(frames, center)
            closer = d < dist
            dist[closer] = d[closer]
            labels[closer] = c
        return labels


class KCentersClustering:
    """Gonzalez k-centers: repeatedly promote the farthest frame to a centre.

    Parameters
    ----------
    n_clusters:
        Number of centres, or ``None`` to grow until ``radius_cutoff``.
    radius_cutoff:
        Stop when the cover radius falls below this value.
    metric:
        Distance metric (default Euclidean).
    seed:
        Picks the first centre; later centres are deterministic.
    """

    def __init__(
        self,
        n_clusters: Optional[int] = None,
        radius_cutoff: Optional[float] = None,
        metric=None,
        seed: int | RandomStream = 0,
    ) -> None:
        if n_clusters is None and radius_cutoff is None:
            raise ConfigurationError(
                "specify n_clusters and/or radius_cutoff"
            )
        if n_clusters is not None and n_clusters < 1:
            raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
        if radius_cutoff is not None and radius_cutoff <= 0:
            raise ConfigurationError("radius_cutoff must be positive")
        self.n_clusters = n_clusters
        self.radius_cutoff = radius_cutoff
        self.metric = metric or EuclideanMetric()
        self.rng = ensure_stream(seed)

    def fit(self, frames: np.ndarray) -> ClusterResult:
        """Cluster *frames*; returns assignments, centres and distances."""
        frames = np.asarray(frames, dtype=float)
        n = len(frames)
        if n == 0:
            raise ConfigurationError("cannot cluster zero frames")
        max_k = min(self.n_clusters or n, n)

        center_indices = [int(self.rng.integers(0, n))]
        dist = self.metric.to_target(frames, frames[center_indices[0]])
        labels = np.zeros(n, dtype=int)

        while True:
            radius = float(dist.max())
            if self.radius_cutoff is not None and radius <= self.radius_cutoff:
                break
            if len(center_indices) >= max_k:
                break
            new_idx = int(np.argmax(dist))
            center_indices.append(new_idx)
            d_new = self.metric.to_target(frames, frames[new_idx])
            closer = d_new < dist
            dist[closer] = d_new[closer]
            labels[closer] = len(center_indices) - 1

        idx = np.asarray(center_indices)
        return ClusterResult(
            assignments=labels,
            centers=frames[idx],
            center_indices=idx,
            distances=dist,
        )


class RegularSpatialClustering:
    """Regular spatial clustering: centres at least ``dmin`` apart.

    Scans the frames once, promoting any frame farther than *dmin*
    from every existing centre to a new centre.  Unlike k-centers the
    cluster count adapts to the volume of sampled space — useful when
    the explored region grows generation by generation, as in adaptive
    sampling.
    """

    def __init__(self, dmin: float, metric=None, max_centers: int = 10000) -> None:
        if dmin <= 0:
            raise ConfigurationError(f"dmin must be positive, got {dmin}")
        if max_centers < 1:
            raise ConfigurationError("max_centers must be >= 1")
        self.dmin = float(dmin)
        self.metric = metric or EuclideanMetric()
        self.max_centers = int(max_centers)

    def fit(self, frames: np.ndarray) -> ClusterResult:
        """Cluster *frames*; centres are actual frames, >= dmin apart."""
        frames = np.asarray(frames, dtype=float)
        n = len(frames)
        if n == 0:
            raise ConfigurationError("cannot cluster zero frames")
        center_indices = [0]
        min_dist = self.metric.to_target(frames, frames[0])
        labels = np.zeros(n, dtype=int)
        for i in range(1, n):
            if min_dist[i] > self.dmin:
                if len(center_indices) >= self.max_centers:
                    break
                center_indices.append(i)
                d_new = self.metric.to_target(frames, frames[i])
                closer = d_new < min_dist
                min_dist[closer] = d_new[closer]
                labels[closer] = len(center_indices) - 1
        idx = np.asarray(center_indices)
        return ClusterResult(
            assignments=labels,
            centers=frames[idx],
            center_indices=idx,
            distances=min_dist,
        )


class KMedoidsClustering:
    """PAM-lite k-medoids: swap each medoid for its cluster's best frame.

    Starts from a k-centers solution and iterates assignment/update
    until medoids stop moving (or ``max_iter``).
    """

    def __init__(
        self,
        n_clusters: int,
        metric=None,
        seed: int | RandomStream = 0,
        max_iter: int = 10,
    ) -> None:
        if n_clusters < 1:
            raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
        if max_iter < 1:
            raise ConfigurationError("max_iter must be >= 1")
        self.n_clusters = n_clusters
        self.metric = metric or EuclideanMetric()
        self.rng = ensure_stream(seed)
        self.max_iter = max_iter

    def fit(self, frames: np.ndarray) -> ClusterResult:
        """Cluster *frames* by iterative medoid refinement."""
        frames = np.asarray(frames, dtype=float)
        n = len(frames)
        seeded = KCentersClustering(
            n_clusters=self.n_clusters, metric=self.metric, seed=self.rng
        ).fit(frames)
        medoids = list(seeded.center_indices)

        for _ in range(self.max_iter):
            # assignment pass
            dist = np.full(n, np.inf)
            labels = np.zeros(n, dtype=int)
            for c, m in enumerate(medoids):
                d = self.metric.to_target(frames, frames[m])
                closer = d < dist
                dist[closer] = d[closer]
                labels[closer] = c
            # update pass: per cluster, pick the member minimising the
            # summed distance to the other members
            changed = False
            for c in range(len(medoids)):
                members = np.flatnonzero(labels == c)
                if len(members) <= 1:
                    continue
                total = np.empty(len(members))
                member_frames = frames[members]
                for k, m in enumerate(members):
                    total[k] = self.metric.to_target(
                        member_frames, frames[m]
                    ).sum()
                best = int(members[np.argmin(total)])
                if best != medoids[c]:
                    medoids[c] = best
                    changed = True
            if not changed:
                break

        dist = np.full(n, np.inf)
        labels = np.zeros(n, dtype=int)
        for c, m in enumerate(medoids):
            d = self.metric.to_target(frames, frames[m])
            closer = d < dist
            dist[closer] = d[closer]
            labels[closer] = c
        idx = np.asarray(medoids)
        return ClusterResult(
            assignments=labels,
            centers=frames[idx],
            center_indices=idx,
            distances=dist,
        )
