"""Transition counting from discrete trajectories."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.util.errors import ConfigurationError, EstimationError


def count_transitions(
    dtraj: np.ndarray, n_states: int, lag: int, sliding: bool = True
) -> np.ndarray:
    """Count matrix of one discrete trajectory at lag *lag*.

    Parameters
    ----------
    dtraj:
        Integer state sequence.
    n_states:
        Matrix dimension (states never visited get zero rows).
    lag:
        Lag time in frames.
    sliding:
        Sliding window (every pair ``(t, t+lag)``) versus disjoint
        sampling (pairs ``(k*lag, (k+1)*lag)``).  Sliding uses all the
        data; disjoint gives independent counts.

    Returns
    -------
    ``(n_states, n_states)`` integer count matrix ``C[i, j]``.
    """
    dtraj = np.asarray(dtraj, dtype=int)
    if lag < 1:
        raise ConfigurationError(f"lag must be >= 1, got {lag}")
    if n_states < 1:
        raise ConfigurationError(f"n_states must be >= 1, got {n_states}")
    if dtraj.size and (dtraj.min() < 0 or dtraj.max() >= n_states):
        raise ConfigurationError("dtraj contains states out of range")
    counts = np.zeros((n_states, n_states), dtype=np.int64)
    if len(dtraj) <= lag:
        return counts
    if sliding:
        src = dtraj[:-lag]
        dst = dtraj[lag:]
    else:
        strided = dtraj[::lag]
        src = strided[:-1]
        dst = strided[1:]
    np.add.at(counts, (src, dst), 1)
    return counts


def count_matrix_multi(
    dtrajs: Iterable[np.ndarray],
    n_states: int,
    lag: int,
    sliding: bool = True,
) -> np.ndarray:
    """Summed count matrix over several trajectories.

    Counting never crosses trajectory boundaries — exactly the property
    that lets an MSM stitch together hundreds of short independent
    simulations (the heart of the paper's approach).
    """
    total = np.zeros((n_states, n_states), dtype=np.int64)
    any_data = False
    for dtraj in dtrajs:
        any_data = True
        total += count_transitions(dtraj, n_states, lag, sliding=sliding)
    if not any_data:
        raise EstimationError("no trajectories supplied")
    return total


def visited_states(dtrajs: Sequence[np.ndarray], n_states: int) -> np.ndarray:
    """Boolean mask of states visited at least once."""
    mask = np.zeros(n_states, dtype=bool)
    for dtraj in dtrajs:
        mask[np.asarray(dtraj, dtype=int)] = True
    return mask
