"""Metastable macrostate lumping (PCCA-style spectral clustering).

Microstate MSMs (the paper's 10,000 clusters) are analysed through a
handful of *metastable* macrostates — groups of microstates that
interconvert quickly internally and slowly with each other.  Following
Perron-cluster cluster analysis, the dominant right eigenvectors of the
transition matrix embed each microstate in a low-dimensional space
where metastable sets separate; k-means on that embedding (weighted by
the stationary distribution) recovers them.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.msm.analysis import _check_T, stationary_distribution
from repro.util.errors import EstimationError
from repro.util.rng import RandomStream


def spectral_embedding(T: np.ndarray, n_macrostates: int) -> np.ndarray:
    """Coordinates of each microstate in the top right eigenvectors.

    Returns an ``(n_states, n_macrostates - 1)`` real array (the
    trivial constant eigenvector is dropped).
    """
    T = _check_T(T)
    if n_macrostates < 2:
        raise EstimationError("need at least 2 macrostates")
    if n_macrostates > T.shape[0]:
        raise EstimationError("more macrostates than microstates")
    vals, vecs = np.linalg.eig(T)
    order = np.argsort(-np.abs(vals))
    top = vecs[:, order[:n_macrostates]]
    if np.abs(top.imag).max() > 1e-8:
        # complex pairs indicate non-metastable structure; use real parts
        top = top.real
    else:
        top = top.real
    # drop the constant eigenvector; normalise each column
    emb = top[:, 1:]
    norms = np.linalg.norm(emb, axis=0)
    norms[norms == 0] = 1.0
    return emb / norms


def _kmeans(
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    rng: RandomStream,
    n_iter: int = 100,
) -> np.ndarray:
    """Weighted k-means with farthest-point init; returns labels."""
    n = len(points)
    centers = [int(rng.integers(0, n))]
    d = np.linalg.norm(points - points[centers[0]], axis=1)
    for _ in range(k - 1):
        centers.append(int(np.argmax(d)))
        d = np.minimum(
            d, np.linalg.norm(points - points[centers[-1]], axis=1)
        )
    C = points[centers].copy()
    labels = np.zeros(n, dtype=int)
    for _ in range(n_iter):
        dist = np.linalg.norm(points[:, None, :] - C[None, :, :], axis=2)
        new_labels = np.argmin(dist, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for c in range(k):
            members = labels == c
            if members.any():
                w = weights[members][:, None]
                C[c] = (points[members] * w).sum(axis=0) / w.sum()
    return labels


def lump_states(
    T: np.ndarray, n_macrostates: int, seed: int = 0
) -> np.ndarray:
    """Assign each microstate to one of *n_macrostates* metastable sets."""
    emb = spectral_embedding(T, n_macrostates)
    pi = stationary_distribution(T)
    labels = _kmeans(emb, pi, n_macrostates, RandomStream(seed))
    # re-label so macrostate ids are contiguous 0..k'-1
    unique = np.unique(labels)
    remap = {int(u): i for i, u in enumerate(unique)}
    return np.asarray([remap[int(l)] for l in labels], dtype=int)


def coarse_grain(
    T: np.ndarray, labels: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Macrostate transition matrix and populations from a lumping.

    Uses the stationary-distribution-weighted aggregation
    ``T_AB = sum_{i in A, j in B} pi_i T_ij / sum_{i in A} pi_i``.
    """
    T = _check_T(T)
    labels = np.asarray(labels, dtype=int)
    if labels.shape != (T.shape[0],):
        raise EstimationError("labels must cover every microstate")
    pi = stationary_distribution(T)
    k = labels.max() + 1
    pops = np.zeros(k)
    T_macro = np.zeros((k, k))
    for a in range(k):
        in_a = labels == a
        pops[a] = pi[in_a].sum()
        if pops[a] == 0:
            raise EstimationError(f"macrostate {a} has zero population")
        flux = (pi[in_a, None] * T[in_a, :]).sum(axis=0)
        for b in range(k):
            T_macro[a, b] = flux[labels == b].sum() / pops[a]
    return T_macro, pops


def metastability(T: np.ndarray, labels: np.ndarray) -> float:
    """Trace of the coarse-grained matrix over the macrostate count.

    1.0 means perfectly metastable macrostates (no inter-macrostate
    transitions at this lag); 1/k is the uninformative floor.
    """
    T_macro, _ = coarse_grain(T, labels)
    return float(np.trace(T_macro) / T_macro.shape[0])
