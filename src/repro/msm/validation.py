"""MSM validation: implied-timescale scans and Chapman-Kolmogorov tests.

The paper validates its villin model with a lag-time sensitivity
analysis ("the system became Markovian for lag times of 20 ns or
greater"); these are the tools that produce that statement.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.msm.analysis import implied_timescales, propagate
from repro.msm.connectivity import trim_counts
from repro.msm.counts import count_matrix_multi
from repro.msm.estimation import estimate_transition_matrix
from repro.util.errors import EstimationError
from repro.util.rng import RandomStream, ensure_stream


def implied_timescale_scan(
    dtrajs: Sequence[np.ndarray],
    n_states: int,
    lags: Sequence[int],
    frame_time: float = 1.0,
    k: int = 3,
) -> Dict[int, np.ndarray]:
    """Implied timescales as a function of lag time.

    Returns ``{lag: timescales}``; the model is Markovian at the first
    lag where the timescales plateau.  Timescales are reported in
    physical units (``lag * frame_time``).
    """
    if not lags:
        raise EstimationError("no lags supplied")
    out: Dict[int, np.ndarray] = {}
    for lag in lags:
        counts = count_matrix_multi(dtrajs, n_states, lag)
        trimmed, _ = trim_counts(counts)
        T = estimate_transition_matrix(trimmed)
        out[int(lag)] = implied_timescales(T, lag * frame_time, k=k)
    return out


def markovian_lag(
    scan: Dict[int, np.ndarray], tolerance: float = 0.25
) -> int:
    """Smallest lag whose slowest timescale is within *tolerance* of the
    next lag's — the plateau criterion.

    Returns the largest scanned lag if no plateau is detected.
    """
    lags = sorted(scan)
    if len(lags) < 2:
        raise EstimationError("need at least two lags to detect a plateau")
    for a, b in zip(lags[:-1], lags[1:]):
        t_a, t_b = scan[a][0], scan[b][0]
        if not (np.isfinite(t_a) and np.isfinite(t_b)) or t_a <= 0:
            continue
        if abs(t_b - t_a) / t_a <= tolerance:
            return a
    return lags[-1]


def bootstrap_timescales(
    dtrajs: Sequence[np.ndarray],
    n_states: int,
    lag: int,
    frame_time: float = 1.0,
    k: int = 3,
    n_bootstrap: int = 50,
    rng: int | RandomStream | None = 0,
):
    """Trajectory-bootstrap error bars on the implied timescales.

    Resamples whole trajectories with replacement (the standard MSM
    bootstrap, preserving within-trajectory correlation), re-estimates
    the MSM each time, and returns ``(mean, std)`` arrays of shape
    ``(k,)`` over the finite bootstrap estimates.
    """
    dtrajs = [np.asarray(d, dtype=int) for d in dtrajs]
    if len(dtrajs) < 2:
        raise EstimationError("bootstrap needs at least two trajectories")
    if n_bootstrap < 2:
        raise EstimationError("n_bootstrap must be >= 2")
    stream = ensure_stream(rng)
    estimates = np.full((n_bootstrap, k), np.nan)
    for b in range(n_bootstrap):
        picks = stream.integers(0, len(dtrajs), size=len(dtrajs))
        sample = [dtrajs[p] for p in picks]
        try:
            counts = count_matrix_multi(sample, n_states, lag)
            trimmed, _ = trim_counts(counts)
            T = estimate_transition_matrix(trimmed)
            estimates[b] = implied_timescales(T, lag * frame_time, k=k)
        except EstimationError:
            continue
    with np.errstate(invalid="ignore"):
        mean = np.nanmean(estimates, axis=0)
        std = np.nanstd(estimates, axis=0)
    if np.all(np.isnan(mean)):
        raise EstimationError("every bootstrap replicate failed")
    return mean, std


def chapman_kolmogorov(
    dtrajs: Sequence[np.ndarray],
    n_states: int,
    lag: int,
    factors: Sequence[int] = (2, 3, 4),
) -> Dict[int, float]:
    """Chapman–Kolmogorov test: compare ``T(lag)^k`` with ``T(k * lag)``.

    Returns ``{k: max_abs_difference}`` over the states shared by both
    estimations.  Small values mean the lag-``lag`` model propagates
    correctly to longer times — the definition of Markovianity.
    """
    if lag < 1:
        raise EstimationError(f"lag must be >= 1, got {lag}")
    counts = count_matrix_multi(dtrajs, n_states, lag)
    trimmed, kept = trim_counts(counts)
    T = estimate_transition_matrix(trimmed)
    result: Dict[int, float] = {}
    for k in factors:
        if k < 2:
            raise EstimationError("CK factors must be >= 2")
        counts_k = count_matrix_multi(dtrajs, n_states, lag * k)
        direct_full = estimate_transition_matrix(counts_k)
        direct = direct_full[np.ix_(kept, kept)]
        # re-normalise rows restricted to the kept set
        row = direct.sum(axis=1)
        good = row > 0
        direct[good] = direct[good] / row[good, None]
        powered = np.linalg.matrix_power(T, k)
        result[int(k)] = float(np.abs(powered[good] - direct[good]).max())
    return result
