"""Spectral analysis of transition matrices.

Implements the quantities the paper reads off its villin MSM:
equilibrium (stationary) populations for blind native-state prediction,
implied timescales for the Markovian-lag-time check, and the population
propagation ``p(t + tau) = p(t) T(tau)`` behind Fig. 4.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.util.errors import EstimationError


def _check_T(T: np.ndarray) -> np.ndarray:
    T = np.asarray(T, dtype=float)
    if T.ndim != 2 or T.shape[0] != T.shape[1]:
        raise EstimationError(f"transition matrix must be square, got {T.shape}")
    if not np.allclose(T.sum(axis=1), 1.0, atol=1e-6):
        raise EstimationError("rows of the transition matrix must sum to 1")
    return T


def stationary_distribution(T: np.ndarray) -> np.ndarray:
    """Stationary distribution: the left eigenvector with eigenvalue 1.

    The paper predicts the native state blind as "the largest-population
    cluster at equilibrium" — i.e. ``argmax`` of this vector.
    """
    T = _check_T(T)
    vals, vecs = np.linalg.eig(T.T)
    idx = int(np.argmin(np.abs(vals - 1.0)))
    if abs(vals[idx] - 1.0) > 1e-6:
        raise EstimationError("no eigenvalue 1 found; matrix is not stochastic")
    pi = np.real(vecs[:, idx])
    # Fix sign and normalise; clip tiny negative numerical noise.
    if pi.sum() < 0:
        pi = -pi
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise EstimationError("degenerate stationary vector")
    return pi / total


def eigenvalues(T: np.ndarray, k: Optional[int] = None) -> np.ndarray:
    """Eigenvalues sorted by decreasing magnitude (optionally top *k*)."""
    T = _check_T(T)
    vals = np.linalg.eigvals(T)
    order = np.argsort(-np.abs(vals))
    vals = vals[order]
    return vals[:k] if k is not None else vals


def implied_timescales(
    T: np.ndarray, lag_time: float, k: int = 5
) -> np.ndarray:
    """Implied timescales ``t_i = -lag / ln |lambda_i|`` (excluding lambda_1=1).

    Returned in the same unit as *lag_time*.  Non-positive or complex
    eigenvalues yield ``nan`` entries (they indicate a too-short lag).
    """
    if lag_time <= 0:
        raise EstimationError(f"lag_time must be positive, got {lag_time}")
    vals = eigenvalues(T, k=k + 1)[1:]
    mags = np.abs(vals)
    out = np.full(len(vals), np.nan)
    good = (mags > 1e-12) & (mags < 1.0 - 1e-12)
    out[good] = -lag_time / np.log(mags[good])
    return out


def propagate(p0: np.ndarray, T: np.ndarray, n_steps: int) -> np.ndarray:
    """Evolve a distribution: returns ``(n_steps + 1, n_states)``.

    Row ``k`` is ``p0 T^k`` — equation (1) of the paper.
    """
    T = _check_T(T)
    p0 = np.asarray(p0, dtype=float)
    if p0.shape != (T.shape[0],):
        raise EstimationError(
            f"p0 shape {p0.shape} does not match T {T.shape}"
        )
    if not np.isclose(p0.sum(), 1.0, atol=1e-8):
        raise EstimationError("p0 must be a probability distribution")
    if n_steps < 0:
        raise EstimationError("n_steps must be >= 0")
    out = np.empty((n_steps + 1, T.shape[0]))
    out[0] = p0
    for k in range(1, n_steps + 1):
        out[k] = out[k - 1] @ T
    return out


def population_evolution(
    p0: np.ndarray,
    T: np.ndarray,
    n_steps: int,
    lag_time: float,
    member_mask: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Time axis plus (masked) population curve.

    Parameters
    ----------
    member_mask:
        Boolean mask of states whose populations are summed (e.g. the
        folded states); ``None`` returns all state populations.

    Returns
    -------
    ``(times, curve)`` where times has length ``n_steps + 1``.
    """
    traj = propagate(p0, T, n_steps)
    times = np.arange(n_steps + 1) * float(lag_time)
    if member_mask is None:
        return times, traj
    member_mask = np.asarray(member_mask, dtype=bool)
    if member_mask.shape != (T.shape[0],):
        raise EstimationError("member_mask shape mismatch")
    return times, traj[:, member_mask].sum(axis=1)


def mean_first_passage_time(
    T: np.ndarray, targets: np.ndarray, lag_time: float = 1.0
) -> np.ndarray:
    """MFPT from every state into the *targets* set.

    Solves the linear system ``m_i = lag + sum_j T_ij m_j`` for
    non-target states, ``m_i = 0`` on targets.
    """
    T = _check_T(T)
    n = T.shape[0]
    targets = np.asarray(targets, dtype=bool)
    if targets.shape != (n,):
        raise EstimationError("targets must be a boolean mask over states")
    if not targets.any():
        raise EstimationError("target set is empty")
    free = ~targets
    A = np.eye(free.sum()) - T[np.ix_(free, free)]
    b = np.full(free.sum(), float(lag_time))
    try:
        m_free = np.linalg.solve(A, b)
    except np.linalg.LinAlgError as exc:
        raise EstimationError(f"MFPT system is singular: {exc}") from exc
    out = np.zeros(n)
    out[free] = m_free
    return out
