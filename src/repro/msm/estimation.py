"""Transition-matrix estimation from count matrices.

Two estimators:

* :func:`estimate_transition_matrix` — row-normalised maximum
  likelihood (optionally with a pseudocount prior);
* :func:`reversible_transition_matrix` — maximum likelihood under
  detailed balance, via the classic self-consistent iteration
  (Bowman et al., J. Chem. Phys. 131, 124101 (2009) — reference [2]
  of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import EstimationError


def _check_counts(counts: np.ndarray) -> np.ndarray:
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
        raise EstimationError(f"count matrix must be square, got {counts.shape}")
    if np.any(counts < 0):
        raise EstimationError("count matrix has negative entries")
    return counts


def estimate_transition_matrix(
    counts: np.ndarray, prior: float = 0.0
) -> np.ndarray:
    """Row-normalised MLE: ``T[i, j] = C[i, j] / sum_j C[i, j]``.

    Parameters
    ----------
    counts:
        Square count matrix.
    prior:
        Dirichlet pseudocount added to every entry.  With ``prior=0``
        empty rows get a self-loop (absorbing), keeping T stochastic.
    """
    counts = _check_counts(counts) + float(prior)
    row_sums = counts.sum(axis=1)
    T = np.zeros_like(counts)
    nonzero = row_sums > 0
    T[nonzero] = counts[nonzero] / row_sums[nonzero, None]
    empty = np.flatnonzero(~nonzero)
    T[empty, empty] = 1.0
    return T


def reversible_transition_matrix(
    counts: np.ndarray, tol: float = 1e-10, max_iter: int = 10000
) -> np.ndarray:
    """Maximum-likelihood reversible transition matrix.

    Solves for ``X[i, j] = X[j, i]`` (unnormalised symmetric flows)
    maximising the likelihood of *counts*, by the standard fixed-point

    ``X[i, j] <- (C[i, j] + C[j, i]) / (C_i / x_i + C_j / x_j)``

    where ``C_i`` are row sums of C and ``x_i`` row sums of X.  The
    result ``T[i, j] = X[i, j] / x_i`` satisfies detailed balance with
    respect to ``pi = x / sum(x)`` exactly.

    Requires the count graph to be connected (use
    :func:`repro.msm.connectivity.trim_counts` first).
    """
    counts = _check_counts(counts)
    n = counts.shape[0]
    c_sym = counts + counts.T
    if np.any(c_sym.sum(axis=1) == 0):
        raise EstimationError(
            "count matrix has empty states; trim to the connected set first"
        )
    row_counts = counts.sum(axis=1)
    x = c_sym.copy() / max(c_sym.sum(), 1.0)
    for _ in range(max_iter):
        x_row = x.sum(axis=1)
        denom = row_counts[:, None] / x_row[:, None] + row_counts[None, :] / x_row[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            x_new = np.where(c_sym > 0, c_sym / denom, 0.0)
        total = x_new.sum()
        if not np.isfinite(total) or total <= 0:
            raise EstimationError("reversible estimator iteration diverged")
        # the fixed point is scale-invariant (x -> c*x maps solutions to
        # solutions), so without renormalising the iterate drifts along
        # the scale direction and delta plateaus above any tight tol
        x_new /= total
        delta = np.abs(x_new - x).max()
        x = x_new
        if delta < tol:
            break
    else:
        raise EstimationError(
            f"reversible estimator did not converge in {max_iter} iterations"
        )
    x_row = x.sum(axis=1)
    if np.any(x_row <= 0):
        raise EstimationError("reversible estimator produced an empty state")
    T = x / x_row[:, None]
    return T


def is_stochastic(T: np.ndarray, tol: float = 1e-8) -> bool:
    """True if *T* is a right-stochastic matrix."""
    T = np.asarray(T, dtype=float)
    return (
        T.ndim == 2
        and T.shape[0] == T.shape[1]
        and bool(np.all(T >= -tol))
        and bool(np.allclose(T.sum(axis=1), 1.0, atol=tol))
    )


def detailed_balance_violation(T: np.ndarray, pi: np.ndarray) -> float:
    """Max |pi_i T_ij - pi_j T_ji| — zero for a reversible chain."""
    T = np.asarray(T, dtype=float)
    pi = np.asarray(pi, dtype=float)
    flux = pi[:, None] * T
    return float(np.abs(flux - flux.T).max())
