"""Trajectory featurisation for MSM construction.

Clustering in Cartesian/RMSD space (the paper's choice) is one option;
the broader MSM ecosystem more often clusters in feature space —
inter-residue distances, native-contact indicators, backbone dihedrals.
Each featuriser maps ``(n_frames, n_atoms, 3)`` coordinates to
``(n_frames, n_features)`` vectors consumable by the Euclidean-metric
clustering in :mod:`repro.msm.cluster`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.md.forcefield.bonded import PeriodicDihedralForce
from repro.util.errors import ConfigurationError


def _frames(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    if x.ndim == 2:
        x = x[None]
    if x.ndim != 3:
        raise ConfigurationError(
            f"expected (n_frames, n_atoms, 3) coordinates, got {x.shape}"
        )
    return x


class PairwiseDistanceFeaturizer:
    """Distances between chosen atom pairs."""

    def __init__(self, pairs: np.ndarray) -> None:
        self.pairs = np.asarray(pairs, dtype=int).reshape(-1, 2)
        if len(self.pairs) == 0:
            raise ConfigurationError("need at least one pair")

    @property
    def n_features(self) -> int:
        """Output dimensionality."""
        return len(self.pairs)

    def transform(self, coordinates: np.ndarray) -> np.ndarray:
        """Map coordinates to pair distances."""
        frames = _frames(coordinates)
        delta = frames[:, self.pairs[:, 1], :] - frames[:, self.pairs[:, 0], :]
        return np.sqrt(np.sum(delta * delta, axis=2))


class ContactFeaturizer:
    """Soft native-contact indicators in [0, 1].

    ``f = 1 / (1 + exp(steepness (r - r0 * tolerance)))`` — a smooth
    version of the Q coordinate, one feature per contact.
    """

    def __init__(
        self,
        pairs: np.ndarray,
        r0: np.ndarray,
        tolerance: float = 1.2,
        steepness: float = 50.0,
    ) -> None:
        self.pairs = np.asarray(pairs, dtype=int).reshape(-1, 2)
        self.r0 = np.asarray(r0, dtype=float)
        if len(self.pairs) != len(self.r0):
            raise ConfigurationError("pairs and r0 misaligned")
        if len(self.pairs) == 0:
            raise ConfigurationError("need at least one contact")
        if tolerance <= 0 or steepness <= 0:
            raise ConfigurationError("tolerance and steepness must be positive")
        self.tolerance = float(tolerance)
        self.steepness = float(steepness)

    @property
    def n_features(self) -> int:
        """Output dimensionality."""
        return len(self.pairs)

    def transform(self, coordinates: np.ndarray) -> np.ndarray:
        """Map coordinates to soft contact indicators."""
        frames = _frames(coordinates)
        delta = frames[:, self.pairs[:, 1], :] - frames[:, self.pairs[:, 0], :]
        r = np.sqrt(np.sum(delta * delta, axis=2))
        x = self.steepness * (r - self.tolerance * self.r0[None, :])
        return 1.0 / (1.0 + np.exp(np.clip(x, -60, 60)))


class DihedralFeaturizer:
    """(cos, sin) of chosen dihedral angles — periodicity-safe."""

    def __init__(self, quads: np.ndarray) -> None:
        self.quads = np.asarray(quads, dtype=int).reshape(-1, 4)
        if len(self.quads) == 0:
            raise ConfigurationError("need at least one dihedral")

    @property
    def n_features(self) -> int:
        """Output dimensionality (two per dihedral)."""
        return 2 * len(self.quads)

    def transform(self, coordinates: np.ndarray) -> np.ndarray:
        """Map coordinates to (cos phi, sin phi) pairs."""
        frames = _frames(coordinates)
        out = np.empty((len(frames), 2 * len(self.quads)))
        for f, frame in enumerate(frames):
            phi = PeriodicDihedralForce.dihedral_angles(frame, self.quads)
            out[f, 0::2] = np.cos(phi)
            out[f, 1::2] = np.sin(phi)
        return out


class FeatureUnion:
    """Concatenate several featurisers' outputs."""

    def __init__(self, featurizers: Sequence) -> None:
        if not featurizers:
            raise ConfigurationError("need at least one featuriser")
        self.featurizers: List = list(featurizers)

    @property
    def n_features(self) -> int:
        """Output dimensionality."""
        return sum(f.n_features for f in self.featurizers)

    def transform(self, coordinates: np.ndarray) -> np.ndarray:
        """Concatenate every featuriser's output columns."""
        return np.concatenate(
            [f.transform(coordinates) for f in self.featurizers], axis=1
        )


def villin_featurizer(model, include_dihedrals: bool = True) -> FeatureUnion:
    """A sensible default featuriser for the CG villin model.

    Native-contact indicators plus (optionally) backbone dihedrals —
    the coordinates that distinguish folded from unfolded states.
    """
    parts: List = [
        ContactFeaturizer(model.go_force.pairs, model.go_force.r0)
    ]
    if include_dihedrals and len(model.topology.dihedrals):
        parts.append(DihedralFeaturizer(model.topology.dihedrals))
    return FeatureUnion(parts)
