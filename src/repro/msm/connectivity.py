"""Ergodic trimming: restrict counts to the largest connected set.

The paper: "Analysis was performed on the largest connected subset of
the Markovian transition matrix."  States only reached, or only left,
cannot support equilibrium estimation; the strongly connected component
with the most counts is the standard fix.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx
import numpy as np

from repro.util.errors import EstimationError


def largest_connected_set(counts: np.ndarray, directed: bool = True) -> np.ndarray:
    """Indices of the largest (strongly) connected component.

    Components are compared by total outgoing counts, breaking ties by
    size, so the dynamically dominant component wins even when a swarm
    of singleton states exists.
    """
    counts = np.asarray(counts)
    if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
        raise EstimationError(f"count matrix must be square, got {counts.shape}")
    graph_cls = nx.DiGraph if directed else nx.Graph
    graph = nx.from_numpy_array(counts, create_using=graph_cls)
    components = (
        nx.strongly_connected_components(graph)
        if directed
        else nx.connected_components(graph)
    )

    def weight(component) -> Tuple[float, int]:
        idx = np.fromiter(component, dtype=int)
        return float(counts[idx].sum()), len(idx)

    best = max(components, key=weight)
    return np.sort(np.fromiter(best, dtype=int))


def trim_counts(counts: np.ndarray, directed: bool = True):
    """Restrict a count matrix to its largest connected set.

    Returns ``(trimmed_counts, kept_indices)`` where ``kept_indices``
    maps trimmed state numbers back to the original numbering.
    """
    kept = largest_connected_set(counts, directed=directed)
    return np.asarray(counts)[np.ix_(kept, kept)], kept


def map_dtrajs_to_subset(dtrajs, kept: np.ndarray, n_states: int):
    """Re-index discrete trajectories onto a kept-state subset.

    Frames in removed states become ``-1``; callers should split
    trajectories at those points before recounting.
    """
    mapping = np.full(n_states, -1, dtype=int)
    mapping[np.asarray(kept, dtype=int)] = np.arange(len(kept))
    return [mapping[np.asarray(d, dtype=int)] for d in dtrajs]
