"""Statistics collection for DES runs."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class Monitor:
    """Records (time, value) observations and summarises them."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one observation."""
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        """Observation times as an array."""
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        """Observation values as an array."""
        return np.asarray(self._values)

    def mean(self) -> float:
        """Plain mean of the observed values."""
        if not self._values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return float(np.mean(self._values))

    def maximum(self) -> float:
        """Largest observed value."""
        if not self._values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return float(np.max(self._values))

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` arrays."""
        return self.times, self.values


class TimeWeightedMonitor(Monitor):
    """A monitor whose mean weights each value by how long it persisted.

    Use for utilisation-style signals (cores busy, queue length) where
    each recorded value holds until the next observation.
    """

    def time_average(self, until: float) -> float:
        """Average of the piecewise-constant signal on ``[t0, until]``."""
        if not self._values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        times = np.append(self.times, until)
        if times[-1] < times[-2]:
            raise ValueError("'until' precedes the last observation")
        widths = np.diff(times)
        total = times[-1] - times[0]
        if total == 0:
            return float(self._values[-1])
        return float(np.dot(widths, self.values) / total)
