"""Discrete-event simulation kernel.

A compact, from-scratch, SimPy-flavoured kernel: processes are Python
generators that yield :class:`Event` objects and are resumed when those
events fire.  The Copernicus network simulation and the scheduler
performance model (paper Figs. 7-9) both run on this kernel.

Example
-------
>>> from repro.des import Environment
>>> env = Environment()
>>> def clock(env, out):
...     while env.now < 2:
...         out.append(env.now)
...         yield env.timeout(1)
>>> ticks = []
>>> _ = env.process(clock(env, ticks))
>>> env.run()
>>> ticks
[0, 1]
"""

from repro.des.core import (
    Environment,
    Event,
    Process,
    Timeout,
    AllOf,
    AnyOf,
    Interrupt,
    SimulationStopped,
)
from repro.des.resources import Resource, Store, PriorityStore
from repro.des.monitor import Monitor, TimeWeightedMonitor

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationStopped",
    "Resource",
    "Store",
    "PriorityStore",
    "Monitor",
    "TimeWeightedMonitor",
]
