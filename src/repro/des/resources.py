"""Shared resources for the DES kernel: capacity resources and stores.

These model the contended entities of a Copernicus deployment — core
pools on a cluster, a server's command queue, bandwidth-limited links.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.des.core import Environment, Event


class _Request(Event):
    """A pending claim on resource capacity."""

    def __init__(self, resource: "Resource", amount: int) -> None:
        super().__init__(resource.env)
        self.amount = amount


class Resource:
    """A counted resource with FIFO queuing.

    Unlike SimPy's unit-capacity requests, a request may claim several
    units at once — that is how the scheduler model expresses "this
    command needs k cores".

    Example
    -------
    >>> from repro.des import Environment, Resource
    >>> env = Environment()
    >>> cores = Resource(env, capacity=4)
    """

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiting: List[_Request] = []

    @property
    def in_use(self) -> int:
        """Units currently claimed."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for capacity."""
        return len(self._waiting)

    def request(self, amount: int = 1) -> Event:
        """Return an event that fires once *amount* units are granted."""
        if amount <= 0:
            raise ValueError(f"request amount must be positive, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"request of {amount} exceeds capacity {self.capacity}"
            )
        req = _Request(self, amount)
        self._waiting.append(req)
        self._grant()
        return req

    def release(self, amount: int = 1) -> None:
        """Return *amount* units to the pool."""
        if amount <= 0:
            raise ValueError(f"release amount must be positive, got {amount}")
        if amount > self._in_use:
            raise ValueError(
                f"releasing {amount} but only {self._in_use} in use"
            )
        self._in_use -= amount
        self._grant()

    def _grant(self) -> None:
        # FIFO: only the head of the queue may be granted, which avoids
        # starving large requests behind a stream of small ones.
        while self._waiting and self._waiting[0].amount <= self.available:
            req = self._waiting.pop(0)
            self._in_use += req.amount
            req.succeed(req.amount)


class Store:
    """An unbounded FIFO buffer of items with blocking gets."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """A copy of the buffered items (for inspection in tests)."""
        return list(self._items)

    def put(self, item: Any) -> None:
        """Add an item, waking the oldest waiting getter if any."""
        self._items.append(item)
        self._dispatch()

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.env)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        while self._items and self._getters:
            getter = self._getters.pop(0)
            getter.succeed(self._pop_item())

    def _pop_item(self) -> Any:
        return self._items.pop(0)


class PriorityStore(Store):
    """A store whose :meth:`get` returns the lowest-priority-value item.

    Items must be orderable; Copernicus command queues use
    ``(routing_priority, sequence, command)`` tuples so that the encoded
    routing priority effectively determines run priority, as the paper
    describes.
    """

    def __init__(self, env: Environment) -> None:
        super().__init__(env)
        self._heap: List[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> List[Any]:
        """Buffered items in priority order."""
        return sorted(self._heap)

    def put(self, item: Any) -> None:
        """Add an item; wakes the oldest waiting getter."""
        heapq.heappush(self._heap, item)
        self._dispatch()

    def _dispatch(self) -> None:
        while self._heap and self._getters:
            getter = self._getters.pop(0)
            getter.succeed(heapq.heappop(self._heap))

    def _pop_item(self) -> Any:  # pragma: no cover - unused via override
        return heapq.heappop(self._heap)


def filtered_get(
    store: Store, predicate: Callable[[Any], bool]
) -> Optional[Any]:
    """Remove and return the first buffered item matching *predicate*.

    Returns ``None`` when nothing matches; never blocks.  Useful for
    servers that pop only commands matching a worker's capabilities.
    """
    if isinstance(store, PriorityStore):
        # Scan in priority order so the best-priority match wins.
        for item in sorted(store._heap):
            if predicate(item):
                store._heap.remove(item)
                heapq.heapify(store._heap)
                return item
        return None
    for i, item in enumerate(store._items):
        if predicate(item):
            store._items.pop(i)
            return item
    return None
