"""Core of the discrete-event kernel: environment, events, processes.

The design follows the classic event-scheduling world view:

* an :class:`Environment` owns a priority queue of ``(time, priority,
  sequence, event)`` entries;
* an :class:`Event` carries callbacks and an outcome (value or
  exception);
* a :class:`Process` wraps a generator; each ``yield`` hands the kernel
  an event to wait on, and the process resumes when that event fires.

The kernel is deterministic: events scheduled for the same time fire in
priority order, then insertion order, so simulations are exactly
reproducible run to run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.util.errors import ReproError

#: Priority for events that must fire before normal ones at equal time.
URGENT = 0
#: Default priority.
NORMAL = 1


class SimulationStopped(ReproError):
    """Raised internally to unwind ``Environment.run`` at a stop event."""


class Interrupt(ReproError):
    """Thrown into a process when another process interrupts it.

    The interrupt ``cause`` is available on the exception instance.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


_PENDING = object()


class Event:
    """A one-shot occurrence with callbacks.

    An event starts *pending*, is *triggered* when given an outcome and
    scheduled, and is *processed* once its callbacks have run.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is _PENDING:
            raise ReproError("event has no outcome yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's outcome value (or exception if it failed)."""
        if self._value is _PENDING:
            raise ReproError("event has no outcome yet")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not _PENDING:
            raise ReproError("event already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception outcome."""
        if self._value is not _PENDING:
            raise ReproError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires after a fixed delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Process(Event):
    """A running generator; also an event that fires when it finishes.

    The generator may ``yield`` any :class:`Event`; it is resumed with
    the event's value (or the exception is thrown in if the event
    failed).  ``return value`` inside the generator sets the process's
    own event value.
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        init = Event(env)
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        env.schedule(init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise ReproError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        poke = Event(self.env)
        poke._ok = False
        poke._value = Interrupt(cause)
        poke.callbacks.append(self._resume)
        # Mark as "handled by a process" so the kernel doesn't treat the
        # interrupt as an unhandled failure.
        poke.defused = True  # type: ignore[attr-defined]
        self.env.schedule(poke, priority=URGENT)

    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event.defused = True  # type: ignore[attr-defined]
                next_event = self._generator.throw(event._value)
        except StopIteration as exc:
            self.succeed(getattr(exc, "value", None))
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into event
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            self._generator.close()
            self.fail(
                TypeError(f"process yielded a non-event: {next_event!r}")
            )
            return
        if next_event.callbacks is None:
            # Already processed: resume immediately at the current time.
            poke = Event(self.env)
            poke._ok = next_event._ok
            poke._value = next_event._value
            if not next_event._ok:
                poke.defused = True  # type: ignore[attr-defined]
            poke.callbacks.append(self._resume)
            self.env.schedule(poke, priority=URGENT)
            self._target = poke
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.env is not env:
                raise ReproError("cannot mix events from different environments")
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                self._pending += 1
                event.callbacks.append(self._check)
        if not self._events and self._value is _PENDING:
            self.succeed({})

    def _collect(self) -> dict:
        # Only events that have actually fired (been processed) count as
        # outcomes: a Timeout carries its value from creation but has not
        # *happened* until the clock reaches it.
        return {
            i: ev._value
            for i, ev in enumerate(self._events)
            if ev.callbacks is None and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every component event has fired (fails fast on failure)."""

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if event.callbacks is None and not event._ok:
            event.defused = True  # type: ignore[attr-defined]
            self.fail(event._value)
            return
        if all(ev.callbacks is None for ev in self._events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first component event fires."""

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if event.callbacks is None and not event._ok:
            event.defused = True  # type: ignore[attr-defined]
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- event construction ----------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires *delay* time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires when all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires when any of *events* fires."""
        return AnyOf(self, events)

    # -- scheduling / running ----------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Enqueue *event* to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        self._now, _, _, event = heapq.heappop(self._queue)
        event._fire()
        if event._ok is False and not getattr(event, "defused", False):
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        Returns the value of *until* when *until* is an event.
        """
        stop_value: list = []
        if isinstance(until, Event):
            if until.callbacks is None:
                return until._value

            def _stop(event: Event) -> None:
                stop_value.append(event)
                raise SimulationStopped()

            until.callbacks.append(_stop)
            limit = float("inf")
        elif until is None:
            limit = float("inf")
        else:
            limit = float(until)
            if limit < self._now:
                raise ValueError(f"until={limit} is in the past (now={self._now})")

        try:
            while self._queue and self.peek() <= limit:
                self.step()
        except SimulationStopped:
            event = stop_value[0]
            if not event._ok:
                raise event._value from None
            return event._value
        if limit != float("inf"):
            self._now = limit
        if isinstance(until, Event):
            raise ReproError("run() ended before the 'until' event fired")
        return None
