"""Optimal-superposition RMSD via the Kabsch algorithm.

The paper's central observable is the C-alpha RMSD to the native
structure after optimal rigid-body alignment (Figs. 2, 3, 5).  The
batched implementation aligns a whole trajectory against one reference
in a single vectorised sweep — one ``(n_frames, 3, 3)`` SVD batch —
because clustering calls this on every frame pair assignment.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError


def _center(x: np.ndarray) -> np.ndarray:
    return x - x.mean(axis=-2, keepdims=True)


def kabsch_align(mobile: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Optimally superpose *mobile* frame(s) onto *reference*.

    Parameters
    ----------
    mobile:
        ``(n_atoms, 3)`` or ``(n_frames, n_atoms, 3)``.
    reference:
        ``(n_atoms, 3)``.

    Returns
    -------
    Aligned coordinates with the same shape as *mobile*, positioned on
    the centred reference.
    """
    mobile = np.asarray(mobile, dtype=float)
    reference = np.asarray(reference, dtype=float)
    single = mobile.ndim == 2
    frames = mobile[None] if single else mobile
    if reference.ndim != 2 or frames.shape[-2:] != reference.shape:
        raise ConfigurationError(
            f"shape mismatch: mobile {mobile.shape} vs reference {reference.shape}"
        )
    x = _center(frames)  # (F, N, 3)
    y = _center(reference[None])  # (1, N, 3)
    # Covariance per frame: C = x^T y
    cov = np.einsum("fni,nj->fij", x, y[0])
    u, _, vt = np.linalg.svd(cov)
    det = np.linalg.det(np.einsum("fij,fjk->fik", u, vt))
    # Fix chirality: flip the last column of u where det < 0.
    u[det < 0, :, -1] *= -1.0
    rot = np.einsum("fij,fjk->fik", u, vt)  # (F, 3, 3)
    aligned = np.einsum("fni,fij->fnj", x, rot)
    return aligned[0] if single else aligned


def rmsd(a: np.ndarray, b: np.ndarray, align: bool = True) -> float:
    """RMSD between two single frames (optionally after alignment)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 2:
        raise ConfigurationError(f"frame shapes differ: {a.shape} vs {b.shape}")
    if align:
        a = kabsch_align(a, b)
        b = _center(b)
    diff = a - b
    return float(np.sqrt(np.mean(np.sum(diff * diff, axis=-1))))


def rmsd_to_reference(
    frames: np.ndarray, reference: np.ndarray, align: bool = True
) -> np.ndarray:
    """RMSD of every frame to one reference, vectorised.

    Parameters
    ----------
    frames:
        ``(n_frames, n_atoms, 3)``.
    reference:
        ``(n_atoms, 3)``.

    Returns
    -------
    ``(n_frames,)`` array of RMSD values (same length unit as input).
    """
    frames = np.asarray(frames, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if frames.ndim != 3:
        raise ConfigurationError(f"frames must be 3-D, got {frames.shape}")
    if align:
        aligned = kabsch_align(frames, reference)
        ref = _center(reference[None])[0]
    else:
        aligned = frames
        ref = reference
    diff = aligned - ref[None]
    return np.sqrt(np.mean(np.sum(diff * diff, axis=-1), axis=-1))


def pairwise_rmsd_to_targets(
    frames: np.ndarray, targets: np.ndarray, align: bool = True
) -> np.ndarray:
    """RMSD matrix between frames and several targets.

    Returns ``(n_frames, n_targets)``.  Used by the k-centers
    clustering assignment step, so it loops over the (few) targets and
    vectorises over the (many) frames.
    """
    targets = np.asarray(targets, dtype=float)
    if targets.ndim != 3:
        raise ConfigurationError(f"targets must be 3-D, got {targets.shape}")
    out = np.empty((len(frames), len(targets)))
    for t, target in enumerate(targets):
        out[:, t] = rmsd_to_reference(frames, target, align=align)
    return out
