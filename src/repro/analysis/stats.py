"""Statistical helpers: block averaging, standard errors, ensemble curves."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.errors import ConfigurationError


def block_average(series: np.ndarray, n_blocks: int = 5) -> Tuple[float, float]:
    """Mean and block-averaged standard error of a correlated series.

    Correlated MD time series underestimate error when treated as i.i.d.;
    block averaging over ``n_blocks`` contiguous blocks is the standard
    correction.  Returns ``(mean, standard_error)``.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1 or len(series) == 0:
        raise ConfigurationError("series must be a non-empty 1-D array")
    if n_blocks < 2:
        raise ConfigurationError(f"need at least 2 blocks, got {n_blocks}")
    if len(series) < n_blocks:
        raise ConfigurationError(
            f"series of length {len(series)} cannot form {n_blocks} blocks"
        )
    usable = (len(series) // n_blocks) * n_blocks
    blocks = series[:usable].reshape(n_blocks, -1).mean(axis=1)
    err = float(np.std(blocks, ddof=1) / np.sqrt(n_blocks))
    return float(series.mean()), err


def standard_error(series: np.ndarray) -> float:
    """Naive (i.i.d.) standard error of the mean."""
    series = np.asarray(series, dtype=float)
    if len(series) < 2:
        raise ConfigurationError("need at least two samples")
    return float(np.std(series, ddof=1) / np.sqrt(len(series)))


def running_mean(series: np.ndarray, window: int) -> np.ndarray:
    """Centered-origin running mean with a trailing window."""
    series = np.asarray(series, dtype=float)
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    kernel = np.ones(window) / window
    return np.convolve(series, kernel, mode="valid")


def ensemble_mean_sd(
    curves: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Mean and standard deviation across an ensemble of aligned curves.

    *curves* is ``(n_members, n_points)``; returns ``(mean, sd)`` each
    of shape ``(n_points,)``.  This is how Fig. 5's ensemble-average
    RMSD with one-standard-deviation error bars is assembled.
    """
    curves = np.asarray(curves, dtype=float)
    if curves.ndim != 2 or curves.shape[0] < 2:
        raise ConfigurationError(
            f"curves must be (n_members >= 2, n_points), got {curves.shape}"
        )
    return curves.mean(axis=0), curves.std(axis=0, ddof=1)


def autocorrelation_time(series: np.ndarray, max_lag: int | None = None) -> float:
    """Integrated autocorrelation time (in samples) of a 1-D series.

    Integrates the normalised autocorrelation function until it first
    crosses zero — the standard initial-positive-sequence estimator.
    """
    series = np.asarray(series, dtype=float)
    n = len(series)
    if n < 4:
        raise ConfigurationError("series too short for autocorrelation")
    x = series - series.mean()
    var = float(np.dot(x, x)) / n
    if var == 0:
        return 0.5
    if max_lag is None:
        max_lag = n // 2
    tau = 0.5
    for lag in range(1, max_lag):
        c = float(np.dot(x[:-lag], x[lag:])) / ((n - lag) * var)
        if c <= 0:
            break
        tau += c
    return tau
