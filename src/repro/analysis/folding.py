"""Folding observables: folded fraction, first-passage and half times.

The paper's kinetic claims (Fig. 4) rest on two observables: the
fraction of the ensemble within an RMSD threshold of native (3.5 A for
all-atom villin) and the half-time of its rise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.util.errors import ConfigurationError


def fraction_folded(
    rmsd_values: np.ndarray, threshold: float
) -> float:
    """Fraction of frames with RMSD below *threshold*."""
    rmsd_values = np.asarray(rmsd_values, dtype=float)
    if rmsd_values.size == 0:
        raise ConfigurationError("no RMSD values supplied")
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be positive, got {threshold}")
    return float(np.mean(rmsd_values < threshold))


def first_passage_time(
    values: np.ndarray, times: np.ndarray, threshold: float, below: bool = True
) -> Optional[float]:
    """Time of the first crossing of *threshold* (None if never).

    ``below=True`` reports the first time ``values < threshold``
    (e.g. RMSD dropping below a folded cutoff).
    """
    values = np.asarray(values, dtype=float)
    times = np.asarray(times, dtype=float)
    if values.shape != times.shape:
        raise ConfigurationError("values and times must align")
    hit = values < threshold if below else values > threshold
    idx = np.flatnonzero(hit)
    if len(idx) == 0:
        return None
    return float(times[idx[0]])


def half_time(
    curve: np.ndarray, times: np.ndarray, plateau: Optional[float] = None
) -> Optional[float]:
    """Time at which a rising curve first reaches half its plateau.

    Parameters
    ----------
    curve:
        Monotone-ish rising observable (e.g. folded population).
    times:
        Matching time axis.
    plateau:
        Asymptotic value; defaults to the curve's final value.

    Returns
    -------
    Linear-interpolated crossing time, or ``None`` if never reached.
    """
    curve = np.asarray(curve, dtype=float)
    times = np.asarray(times, dtype=float)
    if curve.shape != times.shape or curve.size < 2:
        raise ConfigurationError("curve and times must align (length >= 2)")
    target = 0.5 * (plateau if plateau is not None else curve[-1])
    above = curve >= target
    idx = np.flatnonzero(above)
    if len(idx) == 0:
        return None
    k = idx[0]
    if k == 0:
        return float(times[0])
    # linear interpolation between the bracketing samples
    frac = (target - curve[k - 1]) / max(curve[k] - curve[k - 1], 1e-300)
    return float(times[k - 1] + frac * (times[k] - times[k - 1]))
