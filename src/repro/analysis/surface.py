"""Free-energy surfaces from sampled data.

Projects trajectory data onto one or two coordinates and converts the
(optionally MSM-reweighted) histogram into a free-energy landscape —
"the entire free energy landscape of a system" that the paper's MSM
machinery maps out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.util.errors import ConfigurationError


@dataclass
class FreeEnergySurface:
    """A (1-D or 2-D) free-energy landscape in kT units."""

    edges: Tuple[np.ndarray, ...]
    free_energy: np.ndarray
    probability: np.ndarray

    @property
    def centers(self) -> Tuple[np.ndarray, ...]:
        """Bin centres along each axis."""
        return tuple(0.5 * (e[1:] + e[:-1]) for e in self.edges)

    def minimum_location(self) -> Tuple[float, ...]:
        """Coordinates of the global free-energy minimum."""
        idx = np.unravel_index(
            np.nanargmin(self.free_energy), self.free_energy.shape
        )
        return tuple(c[i] for c, i in zip(self.centers, idx))

    def barrier_between(
        self, a: Tuple[float, ...], b: Tuple[float, ...]
    ) -> float:
        """Crude barrier estimate: max F along the straight line a -> b."""
        a_arr, b_arr = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
        samples = np.linspace(0, 1, 64)[:, None] * (b_arr - a_arr) + a_arr
        values = []
        for point in samples:
            idx = []
            for axis, c in enumerate(self.centers):
                k = int(np.clip(np.searchsorted(c, point[axis]), 0, len(c) - 1))
                idx.append(k)
            values.append(self.free_energy[tuple(idx)])
        values = np.asarray(values)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            raise ConfigurationError("no finite free energy along the path")
        return float(np.nanmax(values) - min(values[0], values[-1]))


def free_energy_surface(
    coordinates: np.ndarray,
    weights: Optional[np.ndarray] = None,
    bins: int = 40,
    ranges: Optional[Tuple] = None,
) -> FreeEnergySurface:
    """Histogram sampled coordinates into a free-energy surface.

    Parameters
    ----------
    coordinates:
        ``(n_samples,)`` for 1-D or ``(n_samples, 2)`` for 2-D.
    weights:
        Per-sample weights (e.g. MSM equilibrium reweighting);
        ``None`` means raw counts.
    bins:
        Bins per axis.

    Returns
    -------
    :class:`FreeEnergySurface` with F in kT (min-shifted to zero);
    empty bins get ``inf``.
    """
    coordinates = np.asarray(coordinates, dtype=float)
    if coordinates.ndim == 1:
        coordinates = coordinates[:, None]
    if coordinates.ndim != 2 or coordinates.shape[1] not in (1, 2):
        raise ConfigurationError(
            f"coordinates must be (n,) or (n, 2), got {coordinates.shape}"
        )
    if len(coordinates) == 0:
        raise ConfigurationError("no samples supplied")
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(coordinates),):
            raise ConfigurationError("weights must match sample count")
        if np.any(weights < 0):
            raise ConfigurationError("weights must be non-negative")
    if bins < 2:
        raise ConfigurationError("need at least 2 bins")

    ndim = coordinates.shape[1]
    if ndim == 1:
        counts, edges_x = np.histogram(
            coordinates[:, 0], bins=bins, weights=weights,
            range=None if ranges is None else ranges[0],
        )
        edges: Tuple[np.ndarray, ...] = (edges_x,)
    else:
        counts, edges_x, edges_y = np.histogram2d(
            coordinates[:, 0], coordinates[:, 1], bins=bins, weights=weights,
            range=ranges,
        )
        edges = (edges_x, edges_y)
    total = counts.sum()
    if total <= 0:
        raise ConfigurationError("histogram is empty")
    probability = counts / total
    with np.errstate(divide="ignore"):
        fe = -np.log(np.where(probability > 0, probability, 0.0))
    fe[probability == 0] = np.inf
    fe -= fe[np.isfinite(fe)].min()
    return FreeEnergySurface(edges=edges, free_energy=fe, probability=probability)
