"""Trajectory analysis: alignment, RMSD, statistics, folding observables."""

from repro.analysis.rmsd import kabsch_align, rmsd, rmsd_to_reference
from repro.analysis.stats import (
    block_average,
    standard_error,
    running_mean,
    ensemble_mean_sd,
)
from repro.analysis.folding import (
    fraction_folded,
    first_passage_time,
    half_time,
)
from repro.analysis.surface import FreeEnergySurface, free_energy_surface

__all__ = [
    "kabsch_align",
    "rmsd",
    "rmsd_to_reference",
    "block_average",
    "standard_error",
    "running_mean",
    "ensemble_mean_sd",
    "fraction_folded",
    "first_passage_time",
    "half_time",
    "FreeEnergySurface",
    "free_energy_surface",
]
