"""A fault-injecting overlay network.

:class:`ChaosNetwork` is a drop-in :class:`~repro.net.transport.Network`
that consults a :class:`~repro.testing.faultplan.FaultPlan` on every
delivery.  Faults surface exactly the way real ones would:

* drops, partitions and crashed servers raise
  :class:`~repro.util.errors.TransientCommunicationError`, which
  :meth:`Endpoint.send` retries with backoff and eventually propagates;
* delays charge the virtual clock (tripping per-message timeouts);
* duplications invoke the destination handler twice, exercising
  receiver idempotency;
* worker crashes, slow-worker degradation and stragglers are armed onto
  the victim endpoints through their existing crash-hook / throttle /
  pacing knobs;
* flapping workers have all their traffic dropped during seeded
  down-phases (the server sees death/revival cycles);
* sick peers fail wildcard probes transiently, feeding the prober's
  per-peer circuit breaker.

Everything is deterministic: the same topology, workload and plan seed
reproduce the identical fault sequence and event log.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.protocol import Message
from repro.net.transport import Network
from repro.testing.faultplan import FaultKind, FaultPlan
from repro.util.errors import TransientCommunicationError


class ChaosNetwork(Network):
    """An overlay whose deliveries are perturbed by a fault plan."""

    def __init__(self, plan: Optional[FaultPlan] = None, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.plan = plan or FaultPlan(seed=seed)
        #: Deliveries attempted so far; faults address this index.
        self.delivery_index = 0
        #: Drop accounting (for reports and assertions).
        self.messages_dropped = 0
        self.chaos_delay_seconds = 0.0
        self._armed_endpoint_faults = 0
        self._delivering_duplicate = False

    def _count_fault(self, kind: str) -> None:
        """Labelled fault-injection counter on the shared registry.

        The invariant checker (``check_fault_accounting``) compares
        these against the network's own drop/delay totals.
        """
        self.obs.metrics.inc(
            "chaos_faults_total",
            help="Fault injections fired by the chaos harness, by kind.",
            kind=kind,
        )

    # -- endpoint fault arming --------------------------------------------

    def arm(self) -> None:
        """Install worker-crash hooks and slow-worker throttles on the
        victim endpoints.  Called lazily on the first delivery (so the
        plan may be built before the topology), but may be called
        explicitly once every endpoint is registered."""
        relevant = [
            f
            for f in self.plan.faults
            if f.kind in (
                FaultKind.WORKER_CRASH,
                FaultKind.SLOW_WORKER,
                FaultKind.STRAGGLER,
            )
        ]
        if len(relevant) == self._armed_endpoint_faults:
            return
        plan = self.plan
        for fault in relevant:
            victim = self._endpoints.get(fault.dst)
            if victim is None:
                continue  # not registered yet; retry on the next delivery
            if fault.kind is FaultKind.SLOW_WORKER and hasattr(victim, "throttle"):
                victim.throttle = plan.throttle_for(fault.dst)
            if fault.kind is FaultKind.STRAGGLER and hasattr(victim, "throttle"):
                victim.throttle = fault.factor
                victim.segments_per_cycle = fault.segments_per_cycle
            if fault.kind is FaultKind.WORKER_CRASH and hasattr(
                victim, "set_crash_hook"
            ):
                name = fault.dst

                def hook(command_id: str, segment: int, _worker=name) -> bool:
                    return plan.should_crash_worker(_worker, command_id, segment)

                victim.set_crash_hook(hook)
        self._armed_endpoint_faults = sum(
            1 for f in relevant if f.dst in self._endpoints
        )

    # -- fault-aware delivery ----------------------------------------------

    def deliver(self, message: Message) -> dict:
        """Route *message*, injecting any faults the plan schedules."""
        self.arm()
        index = self.delivery_index
        self.delivery_index += 1

        crashed = self.plan.server_crashed(
            message.dst, index
        ) or self.plan.server_crashed(message.src, index)
        if crashed is not None:
            self.messages_dropped += 1
            self._count_fault("server_crash")
            self.obs.metrics.inc(
                "chaos_messages_dropped_total",
                help="Messages lost to injected faults.",
            )
            raise TransientCommunicationError(
                f"endpoint {crashed.dst!r} is down (server crash fault); "
                f"{message.type.value} {message.src!r}->{message.dst!r} lost"
            )

        flapping = self.plan.worker_flapping(
            message.dst, index
        ) or self.plan.worker_flapping(message.src, index)
        if flapping is not None:
            self.messages_dropped += 1
            self._count_fault("flapping_worker")
            self.obs.metrics.inc(
                "chaos_messages_dropped_total",
                help="Messages lost to injected faults.",
            )
            raise TransientCommunicationError(
                f"worker {flapping.dst!r} link is in a flap down-phase; "
                f"{message.type.value} {message.src!r}->{message.dst!r} lost"
            )

        duplicate = False
        if not self._delivering_duplicate:
            for fault in self.plan.message_faults(message, index):
                if fault.kind is FaultKind.DROP:
                    self.messages_dropped += 1
                    self._count_fault("drop")
                    self.obs.metrics.inc(
                        "chaos_messages_dropped_total",
                        help="Messages lost to injected faults.",
                    )
                    raise TransientCommunicationError(
                        f"message {message.type.value} "
                        f"{message.src!r}->{message.dst!r} dropped "
                        f"(fault at delivery {index})"
                    )
                if fault.kind is FaultKind.DELAY:
                    self.chaos_delay_seconds += fault.delay_seconds
                    self.total_transfer_seconds += fault.delay_seconds
                    self._count_fault("delay")
                    self.obs.metrics.inc(
                        "chaos_delay_seconds_total",
                        amount=fault.delay_seconds,
                        help="Virtual seconds added by injected delays.",
                    )
                if fault.kind is FaultKind.DUPLICATE:
                    duplicate = True
                    self._count_fault("duplicate")

        response = super().deliver(message)
        if duplicate:
            # headers travel with the duplicate too: a duplicated result
            # must carry the same trace context as the original
            copy = Message(
                type=message.type,
                src=message.src,
                dst=message.dst,
                payload=message.payload,
                headers=dict(message.headers),
                attempt=message.attempt,
            )
            self._delivering_duplicate = True
            try:
                super().deliver(copy)
            finally:
                self._delivering_duplicate = False
        return response

    def _traverse(self, message: Message, path: List[str]) -> None:
        """Account hops, failing at the first partitioned link."""
        for hop_src, hop_dst in zip(path[:-1], path[1:]):
            severed = self.plan.link_severed(
                hop_src, hop_dst, self.delivery_index - 1
            )
            if severed is not None:
                # hops before the cut were already accounted by the
                # parent class on previous calls; this message dies here
                self.messages_dropped += 1
                self._count_fault("partition")
                self.obs.metrics.inc(
                    "chaos_messages_dropped_total",
                    help="Messages lost to injected faults.",
                )
                raise TransientCommunicationError(
                    f"link {hop_src}<->{hop_dst} is partitioned; "
                    f"{message.type.value} {message.src!r}->{message.dst!r} lost"
                )
        super()._traverse(message, path)

    def _candidate_fault(self, probe: Message, candidate: str) -> None:
        """Fail a wildcard probe to a sick peer with a transient error
        (the wildcard walk records the failure on the prober's circuit
        breaker and keeps walking)."""
        sick = self.plan.peer_sick(candidate, max(0, self.delivery_index - 1))
        if sick is not None:
            self.messages_dropped += 1
            self._count_fault("sick_peer")
            self.obs.metrics.inc(
                "chaos_messages_dropped_total",
                help="Messages lost to injected faults.",
            )
            raise TransientCommunicationError(
                f"peer {candidate!r} is sick; wildcard probe "
                f"{probe.type.value} from {probe.src!r} failed"
            )

    def _wildcard_candidates(self, src: str) -> List[str]:
        """Skip crashed servers when walking the overlay for a wildcard
        destination — a down server can't accept anything."""
        index = max(0, self.delivery_index - 1)
        return [
            name
            for name in super()._wildcard_candidates(src)
            if self.plan.server_crashed(name, index) is None
        ]

    # -- reporting ---------------------------------------------------------

    def chaos_report(self) -> dict:
        """What the plan actually did to this network."""
        return {
            "seed": self.plan.seed,
            "deliveries": self.delivery_index,
            "dropped": self.messages_dropped,
            "chaos_delay_seconds": self.chaos_delay_seconds,
            "faults": self.plan.describe(),
            "firings": len(self.plan.firings),
        }
