"""Declarative, seeded fault schedules for chaos testing.

A :class:`FaultPlan` is a list of :class:`Fault` rules plus one
:class:`~repro.util.rng.RandomStream`.  Each rule names a fault kind
(message drop, delay, duplication, link partition, worker crash
mid-segment, server crash, slow-worker degradation) and a *match*: by
endpoint name, message type and/or a half-open delivery-index window
``[after_index, until_index)``.  Probabilistic rules draw from the
plan's seeded stream at match time, so a chaos run is a pure function
of ``(topology, workload, plan seed)`` — a failing seed replays
exactly.

The plan is consulted by :class:`repro.testing.chaos.ChaosNetwork`;
it never touches production code paths on its own.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.net.protocol import Message, MessageType
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


class FaultKind(enum.Enum):
    """Every injectable fault."""

    #: Message never arrives; the sender sees a transient error.
    DROP = "drop"
    #: Message arrives but the virtual clock is charged extra seconds
    #: (can trip per-message timeouts).
    DELAY = "delay"
    #: Message is delivered twice (tests receiver idempotency).
    DUPLICATE = "duplicate"
    #: A specific link refuses all traffic while active.
    PARTITION = "partition"
    #: A worker endpoint dies mid-segment and never heartbeats again.
    WORKER_CRASH = "worker_crash"
    #: A server endpoint refuses all traffic while active.
    SERVER_CRASH = "server_crash"
    #: A worker executes only ``factor`` of its segment steps per pass.
    SLOW_WORKER = "slow_worker"
    #: The project server process dies (losing all in-memory state)
    #: after ``after_results`` results were durably applied, then
    #: restarts from its on-disk journal.  Consumed by the
    #: server-restart scenario, not by :class:`ChaosNetwork`: a process
    #: death is a deployment-level event, not a message-level one.
    SERVER_RESTART = "server_restart"
    #: A worker keeps heartbeating but makes glacial progress: its
    #: segment throughput is throttled by ``factor`` *and* it executes
    #: only ``segments_per_cycle`` segments per work cycle, so commands
    #: take many cycles of virtual time.  Trips lease deadlines, not
    #: death detection.
    STRAGGLER = "straggler"
    #: A worker's connectivity oscillates: all its traffic (both
    #: directions) is dropped for ``down_deliveries`` out of every
    #: ``up_deliveries + down_deliveries`` deliveries.  The server sees
    #: repeated dead/revived cycles — flaps — feeding health scoring.
    FLAPPING_WORKER = "flapping_worker"
    #: A peer server answers wildcard probes with transient failures
    #: while active — exercising the prober's circuit breaker.
    SICK_PEER = "sick_peer"
    #: A shard server process dies for good (no restart) once
    #: ``after_results`` results are durably journaled fleet-wide.
    #: Consumed by the shard-crash scenario, which then arms a
    #: permanent :attr:`SERVER_CRASH` window for the victim and lets
    #: the gateway's shard monitor detect the death and fail over —
    #: like :attr:`SERVER_RESTART`, a deployment-level event, not a
    #: message-level one.
    SHARD_CRASH = "shard_crash"


@dataclass
class Fault:
    """One fault rule.  Build via the :class:`FaultPlan` helpers.

    Attributes
    ----------
    kind:
        What to inject.
    src / dst / message_type:
        Message matchers (``None`` matches anything).  For endpoint
        faults (crashes, slow worker) ``dst`` names the victim.
    link:
        For :attr:`FaultKind.PARTITION`: the (a, b) edge to sever.
    directed:
        For :attr:`FaultKind.PARTITION`: when true, only the
        ``link[0] -> link[1]`` direction is severed; traffic the other
        way still flows.  Built via :meth:`FaultPlan.partition_link`.
    after_index / until_index:
        Half-open delivery-index window in which the rule is active;
        ``until_index=None`` means "forever".  Endpoint faults use the
        window as their activation span (a server crash with an
        ``until_index`` reboots afterwards).
    probability:
        Chance the rule fires on a matching delivery, drawn from the
        plan's seeded stream (1.0 = always).
    count:
        Maximum number of firings (``None`` = unlimited).
    delay_seconds / factor / command_id / at_segment:
        Kind-specific parameters.
    """

    kind: FaultKind
    src: Optional[str] = None
    dst: Optional[str] = None
    message_type: Optional[MessageType] = None
    link: Optional[Tuple[str, str]] = None
    directed: bool = False
    after_index: int = 0
    until_index: Optional[int] = None
    probability: float = 1.0
    count: Optional[int] = None
    delay_seconds: float = 0.0
    factor: float = 1.0
    command_id: Optional[str] = None
    at_segment: Optional[int] = None
    #: For :attr:`FaultKind.SERVER_RESTART`: kill the server once this
    #: many results have been durably applied to its journal.
    after_results: Optional[int] = None
    #: For :attr:`FaultKind.STRAGGLER`: segments the victim executes
    #: per work cycle (making command execution take virtual time).
    segments_per_cycle: Optional[int] = None
    #: For :attr:`FaultKind.FLAPPING_WORKER`: deliveries up, then down,
    #: repeating over the activation window.
    up_deliveries: int = 0
    down_deliveries: int = 0
    #: Firings so far (mutated by the plan).
    fired: int = 0

    def active_at(self, index: int) -> bool:
        """Whether the delivery-index window covers *index*."""
        if index < self.after_index:
            return False
        if self.until_index is not None and index >= self.until_index:
            return False
        return self.count is None or self.fired < self.count

    def matches_message(self, message: Message) -> bool:
        """Whether the matchers accept *message*."""
        if self.src is not None and message.src != self.src:
            return False
        if self.dst is not None and message.dst != self.dst:
            return False
        if self.message_type is not None and message.type != self.message_type:
            return False
        return True

    def matches_link(self, a: str, b: str) -> bool:
        """Whether this (partition) rule severs the a->b traversal.

        Symmetric rules (the default) sever both directions of the
        edge; directed rules sever only the ``link[0] -> link[1]``
        traversal, so the reverse direction still delivers.
        """
        if self.link is None:
            return False
        if self.directed:
            return (a, b) == tuple(self.link)
        return set(self.link) == {a, b}

    def describe(self) -> dict:
        """Schema-stable summary (used by reports and TESTING.md docs)."""
        out = {"kind": self.kind.value, "fired": self.fired}
        if self.directed:
            out["directed"] = True
        for key in (
            "src", "dst", "message_type", "link", "after_index",
            "until_index", "probability", "count", "delay_seconds",
            "factor", "command_id", "at_segment", "after_results",
            "segments_per_cycle", "up_deliveries", "down_deliveries",
        ):
            value = getattr(self, key)
            if key == "message_type" and value is not None:
                value = value.value
            if key in ("after_results", "segments_per_cycle"):
                if value is not None:  # 1 is a meaningful threshold here
                    out[key] = value
            elif value not in (None, 0, 1.0) or key == "after_index":
                out[key] = value
        return out


class FaultPlan:
    """A seeded schedule of faults.

    Parameters
    ----------
    seed:
        Seed for the probability draws; two plans built the same way
        with the same seed inject identical fault sequences.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = RandomStream(seed)
        self.faults: List[Fault] = []
        #: Log of (delivery_index, fault) firings, for post-mortems.
        self.firings: List[Tuple[int, Fault]] = []

    # -- builders ----------------------------------------------------------

    def add(self, fault: Fault) -> Fault:
        """Append a pre-built rule."""
        if fault.probability < 0.0 or fault.probability > 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {fault.probability}"
            )
        self.faults.append(fault)
        return fault

    def drop(self, **kwargs) -> Fault:
        """Drop matching messages (see :class:`Fault` for matchers)."""
        return self.add(Fault(kind=FaultKind.DROP, **kwargs))

    def delay(self, delay_seconds: float, **kwargs) -> Fault:
        """Charge matching deliveries *delay_seconds* extra virtual time."""
        return self.add(
            Fault(kind=FaultKind.DELAY, delay_seconds=delay_seconds, **kwargs)
        )

    def duplicate(self, **kwargs) -> Fault:
        """Deliver matching messages twice."""
        return self.add(Fault(kind=FaultKind.DUPLICATE, **kwargs))

    def partition(
        self,
        a: str,
        b: str,
        after_index: int = 0,
        until_index: Optional[int] = None,
        **kwargs,
    ) -> Fault:
        """Sever the a<->b link for a delivery-index window."""
        return self.add(
            Fault(
                kind=FaultKind.PARTITION,
                link=(a, b),
                after_index=after_index,
                until_index=until_index,
                **kwargs,
            )
        )

    def partition_link(
        self,
        src: str,
        dst: str,
        after_index: int = 0,
        heal_after: Optional[int] = None,
        **kwargs,
    ) -> Fault:
        """Sever only the ``src -> dst`` direction of a link.

        Unlike :meth:`partition`, the reverse direction keeps
        delivering — the asymmetric shape real partitions take (a
        gateway that cannot reach a shard whose own uplink still
        works).  ``heal_after`` schedules the heal: the partition
        lifts ``heal_after`` deliveries after it activates
        (``until_index = after_index + heal_after``); ``None`` means
        the link never heals.
        """
        if heal_after is not None and heal_after < 1:
            raise ConfigurationError(
                f"heal_after must be >= 1 or None, got {heal_after}"
            )
        until_index = None if heal_after is None else after_index + heal_after
        return self.add(
            Fault(
                kind=FaultKind.PARTITION,
                link=(src, dst),
                directed=True,
                after_index=after_index,
                until_index=until_index,
                **kwargs,
            )
        )

    def crash_worker(
        self,
        worker: str,
        command_id: Optional[str] = None,
        at_segment: Optional[int] = None,
    ) -> Fault:
        """Kill *worker* mid-segment (optionally on a specific command
        and/or segment index)."""
        return self.add(
            Fault(
                kind=FaultKind.WORKER_CRASH,
                dst=worker,
                command_id=command_id,
                at_segment=at_segment,
            )
        )

    def crash_server(
        self,
        server: str,
        after_index: int = 0,
        until_index: Optional[int] = None,
    ) -> Fault:
        """Make *server* refuse all traffic over a delivery window
        (``until_index=None`` = never reboots)."""
        return self.add(
            Fault(
                kind=FaultKind.SERVER_CRASH,
                dst=server,
                after_index=after_index,
                until_index=until_index,
            )
        )

    def restart_server(self, server: str, after_results: int = 1) -> Fault:
        """Kill the project server *server* (total in-memory state loss)
        once *after_results* results are durably journaled, then restart
        it from disk.  Consumed by
        :func:`repro.testing.scenarios.run_swarm_with_server_restart`."""
        if after_results < 1:
            raise ConfigurationError(
                f"after_results must be >= 1, got {after_results}"
            )
        return self.add(
            Fault(
                kind=FaultKind.SERVER_RESTART,
                dst=server,
                after_results=after_results,
            )
        )

    def crash_shard(self, shard: str, after_results: int = 1) -> Fault:
        """Kill shard server *shard* permanently (no restart — its
        projects must migrate) once *after_results* results are durably
        journaled across the fleet.  Consumed by
        :func:`repro.testing.soak.run_multitenant_with_shard_crash`."""
        if after_results < 1:
            raise ConfigurationError(
                f"after_results must be >= 1, got {after_results}"
            )
        return self.add(
            Fault(
                kind=FaultKind.SHARD_CRASH,
                dst=shard,
                after_results=after_results,
            )
        )

    def slow_worker(self, worker: str, factor: float) -> Fault:
        """Throttle *worker* to *factor* of its segment steps."""
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError(
                f"slow-worker factor must be in (0, 1], got {factor}"
            )
        return self.add(
            Fault(kind=FaultKind.SLOW_WORKER, dst=worker, factor=factor)
        )

    def straggler(
        self,
        worker: str,
        factor: float = 0.1,
        segments_per_cycle: int = 1,
    ) -> Fault:
        """Make *worker* a straggler: alive and heartbeating, but doing
        only ``factor`` of its segment steps and ``segments_per_cycle``
        segments per work cycle — commands now span many virtual-time
        ticks, eventually blowing their lease deadlines."""
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError(
                f"straggler factor must be in (0, 1], got {factor}"
            )
        if segments_per_cycle < 1:
            raise ConfigurationError(
                f"segments_per_cycle must be >= 1, got {segments_per_cycle}"
            )
        return self.add(
            Fault(
                kind=FaultKind.STRAGGLER,
                dst=worker,
                factor=factor,
                segments_per_cycle=segments_per_cycle,
            )
        )

    def flapping_worker(
        self,
        worker: str,
        up_deliveries: int,
        down_deliveries: int,
        after_index: int = 0,
        until_index: Optional[int] = None,
    ) -> Fault:
        """Oscillate *worker*'s connectivity: within the activation
        window, traffic flows for ``up_deliveries`` deliveries, then is
        dropped for ``down_deliveries``, repeating."""
        if up_deliveries < 1 or down_deliveries < 1:
            raise ConfigurationError(
                "up_deliveries and down_deliveries must be >= 1"
            )
        return self.add(
            Fault(
                kind=FaultKind.FLAPPING_WORKER,
                dst=worker,
                up_deliveries=up_deliveries,
                down_deliveries=down_deliveries,
                after_index=after_index,
                until_index=until_index,
            )
        )

    def sick_peer(
        self,
        peer: str,
        after_index: int = 0,
        until_index: Optional[int] = None,
        probability: float = 1.0,
    ) -> Fault:
        """Make wildcard probes to server *peer* fail transiently while
        the window is active (the prober's circuit breaker should open
        and skip it)."""
        return self.add(
            Fault(
                kind=FaultKind.SICK_PEER,
                dst=peer,
                after_index=after_index,
                until_index=until_index,
                probability=probability,
            )
        )

    # -- consultation ------------------------------------------------------

    def _fires(self, fault: Fault, index: int) -> bool:
        if fault.probability < 1.0:
            # one seeded draw per candidate firing keeps the stream
            # aligned across replays of the same run
            if float(self.rng.uniform()) >= fault.probability:
                return False
        fault.fired += 1
        self.firings.append((index, fault))
        return True

    def message_faults(self, message: Message, index: int) -> List[Fault]:
        """Message-level rules (drop/delay/duplicate) firing on this
        delivery.  Mutates firing counters — call exactly once per
        delivery attempt."""
        fired = []
        for fault in self.faults:
            if fault.kind not in (
                FaultKind.DROP, FaultKind.DELAY, FaultKind.DUPLICATE
            ):
                continue
            if fault.active_at(index) and fault.matches_message(message):
                if self._fires(fault, index):
                    fired.append(fault)
        return fired

    def link_severed(self, a: str, b: str, index: int) -> Optional[Fault]:
        """The partition rule (if any) severing a<->b at *index*."""
        for fault in self.faults:
            if fault.kind is FaultKind.PARTITION and fault.active_at(index):
                if fault.matches_link(a, b):
                    if self._fires(fault, index):
                        return fault
        return None

    def server_crashed(self, name: str, index: int) -> Optional[Fault]:
        """The crash rule (if any) keeping server *name* down at *index*."""
        for fault in self.faults:
            if fault.kind is FaultKind.SERVER_CRASH and fault.dst == name:
                # a crash window is state, not a consumable firing:
                # ignore count, just check the index span
                if index >= fault.after_index and (
                    fault.until_index is None or index < fault.until_index
                ):
                    return fault
        return None

    def should_crash_worker(
        self, worker: str, command_id: str, segment: int
    ) -> bool:
        """Whether *worker* dies before this segment (crash-hook query)."""
        for fault in self.faults:
            if fault.kind is not FaultKind.WORKER_CRASH or fault.dst != worker:
                continue
            if fault.command_id is not None and fault.command_id != command_id:
                continue
            if fault.at_segment is not None and fault.at_segment != segment:
                continue
            if fault.count is not None and fault.fired >= fault.count:
                continue
            fault.fired += 1
            return True
        return False

    def server_restart_point(self, name: str) -> Optional[Fault]:
        """The restart rule (if any) scheduled for server *name*."""
        for fault in self.faults:
            if fault.kind is FaultKind.SERVER_RESTART and fault.dst == name:
                return fault
        return None

    def shard_crash_point(self, name: Optional[str] = None) -> Optional[Fault]:
        """The shard-crash rule (if any) — for *name*, or the first
        scheduled rule when *name* is ``None`` (scenario drivers ask
        "whose turn is it to die?")."""
        for fault in self.faults:
            if fault.kind is FaultKind.SHARD_CRASH and (
                name is None or fault.dst == name
            ):
                return fault
        return None

    def throttle_for(self, worker: str) -> float:
        """Combined slow-worker factor for *worker* (1.0 = unimpaired)."""
        factor = 1.0
        for fault in self.faults:
            if fault.kind is FaultKind.SLOW_WORKER and fault.dst == worker:
                factor *= fault.factor
        return factor

    def straggler_for(self, worker: str) -> Optional[Fault]:
        """The straggler rule (if any) degrading *worker*."""
        for fault in self.faults:
            if fault.kind is FaultKind.STRAGGLER and fault.dst == worker:
                return fault
        return None

    def worker_flapping(self, name: str, index: int) -> Optional[Fault]:
        """The flapping rule (if any) holding *name*'s link down at *index*.

        Like :meth:`server_crashed`, a flap phase is state rather than a
        consumable firing: within the activation window the worker is up
        for ``up_deliveries`` deliveries, then down for
        ``down_deliveries``, repeating.
        """
        for fault in self.faults:
            if fault.kind is not FaultKind.FLAPPING_WORKER or fault.dst != name:
                continue
            if index < fault.after_index:
                continue
            if fault.until_index is not None and index >= fault.until_index:
                continue
            period = fault.up_deliveries + fault.down_deliveries
            phase = (index - fault.after_index) % period
            if phase >= fault.up_deliveries:
                return fault
        return None

    def peer_sick(self, name: str, index: int) -> Optional[Fault]:
        """The sick-peer rule (if any) failing a probe to *name* at *index*."""
        for fault in self.faults:
            if fault.kind is FaultKind.SICK_PEER and fault.dst == name:
                if fault.active_at(index) and self._fires(fault, index):
                    return fault
        return None

    def describe(self) -> List[dict]:
        """Summaries of every rule (reporting / reproduction notes)."""
        return [fault.describe() for fault in self.faults]
