"""Deterministic fault injection and recovery-invariant checking.

The paper's core promise is that a Copernicus job survives worker and
link failures (section 2.3).  This subpackage turns that promise into
executable tests:

* :mod:`repro.testing.faultplan` — a seeded, declarative schedule of
  faults (drops, delays, duplications, partitions, crashes, slow
  workers, stragglers, flapping workers, sick peers) addressed by
  endpoint, message type or delivery index.
* :mod:`repro.testing.chaos` — :class:`ChaosNetwork`, a drop-in
  overlay that injects the plan's faults during delivery.
* :mod:`repro.testing.invariants` — replays a runner's event log and
  asserts the recovery invariants (nothing lost, nothing doubled,
  checkpoints monotone, requeues match crashes, recovery accounting
  exact across server restarts, speculation exactly-once, quarantine
  respected, breaker accounting consistent).
* :mod:`repro.testing.soak` — the multi-tenant soak:
  :func:`run_multitenant_soak` drives 100+ tenants' projects across a
  sharded fabric under seeded faults and checks all fourteen
  invariants (tenant isolation, exact quota accounting,
  starvation-free aging, exact failover accounting and epoch fencing
  included) before returning; :func:`run_multitenant_with_shard_crash`
  kills a shard mid-soak and proves the failover exactly-once against
  a crash-free baseline of the same seed;
  :func:`run_multitenant_with_partitioned_shard` partitions a shard
  instead — the "dead" shard's island keeps computing, the partition
  heals, and the fenced zombie's split-brain completions must all be
  rejected under the ownership epochs.
* :mod:`repro.testing.scenarios` — canned deployments under fire:
  :func:`run_swarm_with_server_restart` kills the journaled project
  server mid-project and resumes it from disk; the liveness trio
  (:func:`run_swarm_with_straggler`,
  :func:`run_swarm_with_flapping_worker`,
  :func:`run_relay_with_sick_peer`) degrades workers and peers without
  killing them.

Every chaos run is reproducible from its seed; see ``TESTING.md`` at
the repository root for the fault-plan schema and reproduction recipe.
"""

from repro.testing.chaos import ChaosNetwork
from repro.testing.faultplan import Fault, FaultKind, FaultPlan
from repro.testing.invariants import Invariants
from repro.testing.soak import (
    PartitionResult,
    ShardCrashResult,
    SoakResult,
    TenantSpec,
    TenantSwarmController,
    default_soak_faults,
    default_tenant_mix,
    live_completions,
    run_multitenant_soak,
    run_multitenant_with_partitioned_shard,
    run_multitenant_with_shard_crash,
)
from repro.testing.scenarios import (
    ScenarioResult,
    SwarmController,
    run_relay_with_sick_peer,
    run_swarm_under_faults,
    run_swarm_with_flapping_worker,
    run_swarm_with_server_restart,
    run_swarm_with_straggler,
)

__all__ = [
    "ChaosNetwork",
    "PartitionResult",
    "Fault",
    "FaultKind",
    "FaultPlan",
    "Invariants",
    "ScenarioResult",
    "ShardCrashResult",
    "SoakResult",
    "TenantSpec",
    "TenantSwarmController",
    "default_soak_faults",
    "default_tenant_mix",
    "live_completions",
    "run_multitenant_soak",
    "run_multitenant_with_partitioned_shard",
    "run_multitenant_with_shard_crash",
    "SwarmController",
    "run_relay_with_sick_peer",
    "run_swarm_under_faults",
    "run_swarm_with_flapping_worker",
    "run_swarm_with_server_restart",
    "run_swarm_with_straggler",
]
