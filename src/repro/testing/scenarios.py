"""Canned chaos scenarios: a small Copernicus deployment under fire.

:func:`run_swarm_under_faults` builds the same deployment as
``examples/failure_recovery.py`` — one server, a swarm of short MD
commands, a couple of workers — but over a
:class:`~repro.testing.chaos.ChaosNetwork`, runs it to completion and
returns everything a test needs to assert recovery: the runner (with
its event log), the server, the workers and the chaos report.

:func:`run_swarm_with_server_restart` goes further: it kills the
*project server* mid-project (total in-memory state loss — queue,
leases, dedup barrier, controller), restarts it from its on-disk
journal (:mod:`repro.server.wal`) on a fresh overlay, and runs the
project to completion — the paper's claim that the single long-lived
job survives the loss of any component, including the orchestrator.

The liveness scenarios exercise degradation rather than death:
:func:`run_swarm_with_straggler` pins one worker at a glacial pace so
its lease deadline blows and a speculative copy races it home;
:func:`run_swarm_with_flapping_worker` oscillates a worker's link until
health scoring quarantines it, then watches the timed re-admission; and
:func:`run_relay_with_sick_peer` makes a relay's wildcard peer fail
probes until the relay's circuit breaker opens, skips it, and re-closes
through half-open probes once the peer recovers.

Reproducibility contract: the returned
:meth:`~repro.core.events.EventLog.to_text` transcript is a pure
function of the arguments, so asserting transcript equality across two
runs with the same seed *is* the determinism test.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.compat import warn_deprecated
from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.project import Project
from repro.core.runner import ProjectRunner
from repro.md.engine import MDTask
from repro.net.circuit import BreakerPolicy
from repro.server.health import HealthPolicy
from repro.server.lease import LeasePolicy
from repro.server.server import CopernicusServer
from repro.server.wal import ServerJournal
from repro.testing.chaos import ChaosNetwork
from repro.testing.faultplan import FaultPlan
from repro.util.errors import SchedulingError
from repro.worker.platform import SMPPlatform
from repro.worker.worker import Worker


@dataclass
class ScenarioResult:
    """What a chaos/liveness scenario hands back to its assertions.

    Previously a raw dict; now typed attribute access
    (``result.server``, ``result.obs`` ...) with per-scenario extras
    defaulting to ``None``.  ``result["server"]`` still works for
    legacy call sites but emits a :class:`DeprecationWarning`.
    """

    runner: ProjectRunner
    server: CopernicusServer
    workers: List[Worker]
    controller: Controller
    network: ChaosNetwork
    obs: Any
    transcript: str
    chaos: Dict
    # -- per-scenario extras --------------------------------------------
    #: phase-2 resumed project (server-restart scenario)
    project: Optional[Project] = None
    #: phase-1 summary dict (server-restart scenario)
    pre: Optional[Dict] = None
    #: the deliberately slow worker (straggler scenario)
    straggler: Optional[Worker] = None
    #: the link-flapping worker (flapping-worker scenario)
    flapper: Optional[Worker] = None
    #: relay / sick peer servers and the relay's breaker (relay scenario)
    relay: Optional[CopernicusServer] = None
    sick: Optional[CopernicusServer] = None
    breaker: Any = None
    #: virtual time at project completion (straggler scenario)
    completed_at: Optional[float] = None
    #: cycles spent draining the straggler's doomed copy
    drain_cycles: Optional[int] = None

    @property
    def events(self):
        """The runner's event log (``runner.events`` shorthand)."""
        return self.runner.events

    # -- legacy dict protocol -------------------------------------------

    def __getitem__(self, key: str) -> Any:
        warn_deprecated(
            f'scenario["{key}"]', f"ScenarioResult.{key}", stacklevel=2
        )
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and hasattr(self, key)


class SwarmController(Controller):
    """A flat swarm of MD commands; complete when all have returned."""

    def __init__(self, n_commands: int, n_steps: int) -> None:
        self.n_commands = n_commands
        self.n_steps = n_steps
        self.finished: List[tuple] = []

    def on_project_start(self, project):
        return [
            Command(
                command_id=f"cmd{k}",
                project_id=project.project_id,
                executable="mdrun",
                payload=MDTask(
                    model="villin-fast",
                    n_steps=self.n_steps,
                    report_interval=200,
                    seed=k,
                    task_id=f"cmd{k}",
                ).to_payload(),
            )
            for k in range(self.n_commands)
        ]

    def on_command_finished(self, project, command, result):
        self.finished.append((command.command_id, result["steps_completed"]))
        return []

    def is_complete(self, project):
        return len(self.finished) >= self.n_commands


def run_swarm_under_faults(
    plan: Optional[FaultPlan] = None,
    configure: Optional[Callable[[FaultPlan], None]] = None,
    n_commands: int = 3,
    n_steps: int = 5000,
    n_workers: int = 2,
    segment_steps: int = 1000,
    heartbeat_interval: float = 60.0,
    tick: float = 90.0,
    max_cycles: int = 10000,
    seed: int = 0,
) -> ScenarioResult:
    """Run the failure-recovery swarm under a fault plan.

    Parameters
    ----------
    plan:
        The fault schedule (default: a fresh plan seeded with *seed* —
        i.e. no faults unless *configure* adds some).
    configure:
        Callback receiving the plan before the run, for adding faults
        that reference the scenario's endpoint names (``srv``,
        ``w0`` ... ``w{n-1}``).
    seed:
        Seeds the network and (when *plan* is ``None``) the plan.

    Returns a :class:`ScenarioResult` with ``runner``, ``server``,
    ``workers``, ``controller``, ``network``, ``transcript`` and
    ``chaos`` populated.
    """
    network = ChaosNetwork(plan=plan or FaultPlan(seed=seed), seed=seed)
    if configure is not None:
        configure(network.plan)
    server = CopernicusServer(
        "srv", network, heartbeat_interval=heartbeat_interval
    )
    workers = [
        Worker(
            f"w{k}",
            network,
            server="srv",
            platform=SMPPlatform(cores=1),
            segment_steps=segment_steps,
        )
        for k in range(n_workers)
    ]
    for worker in workers:
        network.connect("srv", worker.name)
    for worker in workers:
        worker.announce(0.0)

    controller = SwarmController(n_commands=n_commands, n_steps=n_steps)
    runner = ProjectRunner(network, server, workers, tick=tick)
    runner.submit(Project("swarm"), controller)
    runner.run(max_cycles=max_cycles)
    return ScenarioResult(
        runner=runner,
        server=server,
        workers=workers,
        controller=controller,
        network=network,
        obs=network.obs,
        transcript=runner.events.to_text(),
        chaos=network.chaos_report(),
    )


def _build_swarm_deployment(
    seed: int,
    plan: FaultPlan,
    journal_root: Path,
    n_workers: int,
    segment_steps: int,
    heartbeat_interval: float,
    tick: float,
    segment_bytes: int,
    snapshot_every: Optional[int],
) -> dict:
    """One server (journaled) + workers on a fresh chaos overlay."""
    network = ChaosNetwork(plan=plan, seed=seed)
    server = CopernicusServer(
        "srv", network, heartbeat_interval=heartbeat_interval
    )
    server.attach_journal(
        ServerJournal(
            journal_root,
            segment_bytes=segment_bytes,
            snapshot_every=snapshot_every,
        )
    )
    workers = [
        Worker(
            f"w{k}",
            network,
            server="srv",
            platform=SMPPlatform(cores=1),
            segment_steps=segment_steps,
        )
        for k in range(n_workers)
    ]
    for worker in workers:
        network.connect("srv", worker.name)
    for worker in workers:
        worker.announce(0.0)
    return {"network": network, "server": server, "workers": workers}


def run_swarm_with_server_restart(
    journal_root: str | Path,
    plan: Optional[FaultPlan] = None,
    configure: Optional[Callable[[FaultPlan], None]] = None,
    crash_after_results: Optional[int] = None,
    mutate_journal: Optional[Callable[[Path], None]] = None,
    n_commands: int = 3,
    n_steps: int = 3000,
    n_workers: int = 2,
    segment_steps: int = 1000,
    heartbeat_interval: float = 60.0,
    tick: float = 90.0,
    max_cycles: int = 10000,
    seed: int = 0,
    segment_bytes: int = 1 << 16,
    snapshot_every: Optional[int] = 2,
) -> ScenarioResult:
    """Kill the project server mid-project; restart it from its journal.

    Phase 1 builds the failure-recovery swarm with a
    :class:`~repro.server.wal.ServerJournal` under *journal_root* and
    drives worker cycles until ``crash_after_results`` results are
    durably applied (default: the plan's
    :meth:`~repro.testing.faultplan.FaultPlan.restart_server` rule, or
    1).  Then the whole deployment — server, queue, leases, dedup
    barrier, controller, workers — is discarded, exactly what a host
    loss looks like.

    Phase 2 builds a *fresh* deployment with the same endpoint names
    over a new overlay, resumes the project from the surviving journal
    directory via :meth:`~repro.core.runner.ProjectRunner.resume`, and
    runs it to completion.

    ``mutate_journal`` (called with the journal root between the
    phases) lets tests corrupt or truncate the on-disk state the way a
    mid-write crash would.

    Returns a :class:`ScenarioResult` with the phase-2 ``runner``/
    ``server``/``workers``/``controller``/``network``/``project``/
    ``transcript``/``chaos`` attributes (so recovery assertions read
    like the other scenarios') plus ``pre`` holding the phase-1 runner,
    server, transcript and the number of results applied before the
    kill.
    """
    journal_root = Path(journal_root)
    plan = plan or FaultPlan(seed=seed)
    if configure is not None:
        configure(plan)
    restart_rule = plan.server_restart_point("srv")
    if crash_after_results is None:
        crash_after_results = (
            restart_rule.after_results if restart_rule is not None else 1
        )

    # ---- phase 1: run until the crash point, then lose everything ------
    pre = _build_swarm_deployment(
        seed, plan, journal_root, n_workers, segment_steps,
        heartbeat_interval, tick, segment_bytes, snapshot_every,
    )
    controller = SwarmController(n_commands=n_commands, n_steps=n_steps)
    runner = ProjectRunner(pre["network"], pre["server"], pre["workers"], tick=tick)
    pre["server"].events = runner.events
    runner.submit(Project("swarm"), controller)
    journal = pre["server"].journal.project("swarm")
    killed = False
    for _ in range(max_cycles):
        for worker in pre["workers"]:
            if worker.crashed:
                continue
            worker.heartbeat(runner.now)
            worker.work_once(now=runner.now)
        runner.now += tick
        for server in runner.servers:
            server.check_liveness(runner.now)
        if journal.results_applied >= crash_after_results:
            killed = True
            break
    if not killed:
        raise SchedulingError(
            f"project finished before {crash_after_results} results could "
            f"trigger the server kill; lower crash_after_results"
        )
    if restart_rule is not None:
        restart_rule.fired += 1
        plan.firings.append((pre["network"].delivery_index, restart_rule))
    pre["server"].journal.close()  # the "crash": nothing unflushed survives
    pre_summary = {
        "runner": runner,
        "server": pre["server"],
        "transcript": runner.events.to_text(),
        "results_applied": journal.results_applied,
    }

    if mutate_journal is not None:
        mutate_journal(journal_root)

    # ---- phase 2: fresh deployment, resume from the journal ------------
    post = _build_swarm_deployment(
        seed + 1, FaultPlan(seed=seed + 1), journal_root, n_workers,
        segment_steps, heartbeat_interval, tick, segment_bytes,
        snapshot_every,
    )
    fresh_controller = SwarmController(n_commands=n_commands, n_steps=n_steps)
    restarted = ProjectRunner(
        post["network"], post["server"], post["workers"], tick=tick
    )
    project = restarted.resume("swarm", fresh_controller)
    restarted.run(max_cycles=max_cycles)
    return ScenarioResult(
        pre=pre_summary,
        runner=restarted,
        server=post["server"],
        workers=post["workers"],
        controller=fresh_controller,
        network=post["network"],
        project=project,
        obs=post["network"].obs,
        transcript=restarted.events.to_text(),
        chaos=post["network"].chaos_report(),
    )


def run_swarm_with_straggler(
    n_commands: int = 3,
    n_steps: int = 3000,
    n_workers: int = 3,
    straggler_factor: float = 0.1,
    segment_steps: int = 1000,
    heartbeat_interval: float = 60.0,
    tick: float = 90.0,
    max_cycles: int = 10000,
    max_drain_cycles: int = 200,
    seed: int = 0,
) -> ScenarioResult:
    """One worker is 10x slow but heartbeats happily; speculation wins.

    Worker ``w0`` is armed as a :attr:`FaultKind.STRAGGLER`: it runs
    ``straggler_factor`` of its segment steps, one segment per cycle,
    so its command spans dozens of virtual-time ticks while its
    heartbeats stay perfectly healthy — invisible to death detection.
    The server's lease policy (tuned so perfmodel deadlines land within
    a few ticks) flags the overdue lease, queues a speculative copy
    from the straggler's last checkpoint, and a healthy worker races it
    home.  The project completes in bounded virtual time.

    After the project completes, the straggler is drained — cycled
    (with everyone still heartbeating) until its parked command
    finishes — so the losing result comes home and is journaled as
    ``SPECULATION_LOST`` while the dedup barrier drops it.
    """
    network = ChaosNetwork(plan=FaultPlan(seed=seed), seed=seed)
    network.plan.straggler(
        "w0", factor=straggler_factor, segments_per_cycle=1
    )
    server = CopernicusServer(
        "srv",
        network,
        heartbeat_interval=heartbeat_interval,
        # shrink the hours->virtual-seconds calibration so a healthy
        # command's deadline lands within ~2 ticks of its grant
        lease_policy=LeasePolicy(
            slack=2.0, min_seconds=tick, hours_to_seconds=300.0
        ),
    )
    workers = [
        Worker(
            f"w{k}",
            network,
            server="srv",
            platform=SMPPlatform(cores=1),
            segment_steps=segment_steps,
        )
        for k in range(n_workers)
    ]
    for worker in workers:
        network.connect("srv", worker.name)
    for worker in workers:
        worker.announce(0.0)

    controller = SwarmController(n_commands=n_commands, n_steps=n_steps)
    runner = ProjectRunner(network, server, workers, tick=tick)
    runner.submit(Project("swarm"), controller)
    runner.run(max_cycles=max_cycles)
    completed_at = runner.now

    # drain: the straggler is still grinding its doomed copy; keep the
    # fleet heartbeating and cycle it until the late result lands
    straggler = workers[0]
    drain_cycles = 0
    for _ in range(max_drain_cycles):
        if straggler._active is None and not straggler._backlog:
            break
        for worker in workers:
            if not worker.crashed:
                worker.heartbeat(runner.now)
        straggler.work_once(now=runner.now)
        runner.now += tick
        for srv in runner.servers:
            srv.check_liveness(runner.now)
        drain_cycles += 1
    else:
        raise SchedulingError(
            f"straggler still mid-command after {max_drain_cycles} "
            f"drain cycles"
        )
    return ScenarioResult(
        runner=runner,
        server=server,
        workers=workers,
        straggler=straggler,
        controller=controller,
        network=network,
        completed_at=completed_at,
        drain_cycles=drain_cycles,
        obs=network.obs,
        transcript=runner.events.to_text(),
        chaos=network.chaos_report(),
    )


def run_swarm_with_flapping_worker(
    n_commands: int = 10,
    n_steps: int = 4000,
    n_workers: int = 3,
    up_deliveries: int = 30,
    down_deliveries: int = 40,
    flap_after_index: int = 0,
    segment_steps: int = 1000,
    heartbeat_interval: float = 60.0,
    tick: float = 90.0,
    quarantine_seconds: float = 270.0,
    max_cycles: int = 10000,
    seed: int = 0,
) -> ScenarioResult:
    """A worker's link flaps until health scoring quarantines it.

    Worker ``w0``'s connectivity oscillates (one
    :attr:`FaultKind.FLAPPING_WORKER` down-phase long enough to be
    declared dead, then the link stays up): the server sees a death —
    requeueing its in-flight work — then a revival, and the combined
    crash+flap penalties push the worker's EWMA health score through
    the quarantine threshold.  While quarantined, its workload requests
    are denied; once the timed cooldown expires it is re-admitted on
    probation (one command at a time) and earns its way back to
    healthy by delivering.

    The healthy workers are paced (one segment per cycle) so the
    project outlives the whole quarantine/re-admission arc.
    """
    network = ChaosNetwork(plan=FaultPlan(seed=seed), seed=seed)
    network.plan.flapping_worker(
        "w0",
        up_deliveries=up_deliveries,
        down_deliveries=down_deliveries,
        after_index=flap_after_index,
        until_index=flap_after_index + up_deliveries + down_deliveries,
    )
    server = CopernicusServer(
        "srv",
        network,
        heartbeat_interval=heartbeat_interval,
        # keep lease deadlines out of the way: this scenario is about
        # health scoring, not stragglers
        lease_policy=LeasePolicy(min_seconds=100000.0),
        # one death+revival flap is enough to quarantine, and the
        # cooldown expires within a few ticks
        health_policy=HealthPolicy(
            alpha=0.5,
            quarantine_seconds=quarantine_seconds,
        ),
    )
    workers = [
        Worker(
            f"w{k}",
            network,
            server="srv",
            platform=SMPPlatform(cores=1),
            segment_steps=segment_steps,
            # pace the healthy workers so the run is long enough for
            # the quarantine to expire; the flapper stays unpaced so a
            # revival never interleaves checkpoints with a requeued copy
            segments_per_cycle=None if k == 0 else 1,
        )
        for k in range(n_workers)
    ]
    for worker in workers:
        network.connect("srv", worker.name)
    for worker in workers:
        worker.announce(0.0)

    controller = SwarmController(n_commands=n_commands, n_steps=n_steps)
    runner = ProjectRunner(network, server, workers, tick=tick)
    runner.submit(Project("swarm"), controller)
    runner.run(max_cycles=max_cycles)
    return ScenarioResult(
        runner=runner,
        server=server,
        workers=workers,
        flapper=workers[0],
        controller=controller,
        network=network,
        obs=network.obs,
        transcript=runner.events.to_text(),
        chaos=network.chaos_report(),
    )


def run_relay_with_sick_peer(
    n_commands: int = 8,
    n_steps: int = 3000,
    sick_until_index: int = 20,
    segment_steps: int = 1000,
    heartbeat_interval: float = 60.0,
    tick: float = 90.0,
    cooldown_seconds: float = 200.0,
    max_cycles: int = 10000,
    seed: int = 0,
) -> ScenarioResult:
    """A relay's sick wildcard peer trips its circuit breaker.

    Topology: project server ``srv`` holds the queue, worker ``w0``
    hangs off relay ``relay``, and a third server ``sick`` is linked to
    the relay *first* — so every wildcard fetch probes it before
    reaching ``srv``.  A :attr:`FaultKind.SICK_PEER` fault makes those
    probes fail transiently until ``sick_until_index``: the relay's
    per-peer breaker counts the failures, opens, and skips the peer
    (fetches keep succeeding via ``srv``).  When the cooldown expires
    the breaker goes half-open, the now-healthy peer answers its
    probes, and the breaker re-closes — all visible in the returned
    breaker counters.
    """
    network = ChaosNetwork(plan=FaultPlan(seed=seed), seed=seed)
    network.plan.sick_peer("sick", until_index=sick_until_index)
    srv = CopernicusServer(
        "srv", network, heartbeat_interval=heartbeat_interval
    )
    relay = CopernicusServer(
        "relay", network, heartbeat_interval=heartbeat_interval
    )
    sick = CopernicusServer(
        "sick", network, heartbeat_interval=heartbeat_interval
    )
    # a short cooldown so the open -> half-open -> closed arc completes
    # within the project's lifetime
    relay.breaker_policy = BreakerPolicy(cooldown_seconds=cooldown_seconds)
    # link order pins the BFS probe order: sick first, then srv
    network.connect("relay", "sick")
    network.connect("relay", "srv")
    worker = Worker(
        "w0",
        network,
        server="relay",
        platform=SMPPlatform(cores=1),
        segment_steps=segment_steps,
    )
    network.connect("relay", "w0")
    worker.announce(0.0)

    controller = SwarmController(n_commands=n_commands, n_steps=n_steps)
    runner = ProjectRunner(network, srv, [worker], tick=tick)
    runner.submit(Project("swarm"), controller)
    runner.run(max_cycles=max_cycles)
    return ScenarioResult(
        runner=runner,
        server=srv,
        relay=relay,
        sick=sick,
        workers=[worker],
        breaker=relay.breaker_for("sick"),
        controller=controller,
        network=network,
        obs=network.obs,
        transcript=runner.events.to_text(),
        chaos=network.chaos_report(),
    )
