"""Canned chaos scenarios: a small Copernicus deployment under fire.

:func:`run_swarm_under_faults` builds the same deployment as
``examples/failure_recovery.py`` — one server, a swarm of short MD
commands, a couple of workers — but over a
:class:`~repro.testing.chaos.ChaosNetwork`, runs it to completion and
returns everything a test needs to assert recovery: the runner (with
its event log), the server, the workers and the chaos report.

Reproducibility contract: the returned
:meth:`~repro.core.events.EventLog.to_text` transcript is a pure
function of the arguments, so asserting transcript equality across two
runs with the same seed *is* the determinism test.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.project import Project
from repro.core.runner import ProjectRunner
from repro.md.engine import MDTask
from repro.server.server import CopernicusServer
from repro.testing.chaos import ChaosNetwork
from repro.testing.faultplan import FaultPlan
from repro.worker.platform import SMPPlatform
from repro.worker.worker import Worker


class SwarmController(Controller):
    """A flat swarm of MD commands; complete when all have returned."""

    def __init__(self, n_commands: int, n_steps: int) -> None:
        self.n_commands = n_commands
        self.n_steps = n_steps
        self.finished: List[tuple] = []

    def on_project_start(self, project):
        return [
            Command(
                command_id=f"cmd{k}",
                project_id=project.project_id,
                executable="mdrun",
                payload=MDTask(
                    model="villin-fast",
                    n_steps=self.n_steps,
                    report_interval=200,
                    seed=k,
                    task_id=f"cmd{k}",
                ).to_payload(),
            )
            for k in range(self.n_commands)
        ]

    def on_command_finished(self, project, command, result):
        self.finished.append((command.command_id, result["steps_completed"]))
        return []

    def is_complete(self, project):
        return len(self.finished) >= self.n_commands


def run_swarm_under_faults(
    plan: Optional[FaultPlan] = None,
    configure: Optional[Callable[[FaultPlan], None]] = None,
    n_commands: int = 3,
    n_steps: int = 5000,
    n_workers: int = 2,
    segment_steps: int = 1000,
    heartbeat_interval: float = 60.0,
    tick: float = 90.0,
    max_cycles: int = 10000,
    seed: int = 0,
) -> dict:
    """Run the failure-recovery swarm under a fault plan.

    Parameters
    ----------
    plan:
        The fault schedule (default: a fresh plan seeded with *seed* —
        i.e. no faults unless *configure* adds some).
    configure:
        Callback receiving the plan before the run, for adding faults
        that reference the scenario's endpoint names (``srv``,
        ``w0`` ... ``w{n-1}``).
    seed:
        Seeds the network and (when *plan* is ``None``) the plan.

    Returns a dict with ``runner``, ``server``, ``workers``,
    ``controller``, ``network``, ``transcript`` and ``chaos`` keys.
    """
    network = ChaosNetwork(plan=plan or FaultPlan(seed=seed), seed=seed)
    if configure is not None:
        configure(network.plan)
    server = CopernicusServer(
        "srv", network, heartbeat_interval=heartbeat_interval
    )
    workers = [
        Worker(
            f"w{k}",
            network,
            server="srv",
            platform=SMPPlatform(cores=1),
            segment_steps=segment_steps,
        )
        for k in range(n_workers)
    ]
    for worker in workers:
        network.connect("srv", worker.name)
    for worker in workers:
        worker.announce(0.0)

    controller = SwarmController(n_commands=n_commands, n_steps=n_steps)
    runner = ProjectRunner(network, server, workers, tick=tick)
    runner.submit(Project("swarm"), controller)
    runner.run(max_cycles=max_cycles)
    return {
        "runner": runner,
        "server": server,
        "workers": workers,
        "controller": controller,
        "network": network,
        "transcript": runner.events.to_text(),
        "chaos": network.chaos_report(),
    }
