"""Multi-tenant soak: 100+ tenants on a sharded fabric under fire.

The service-plane claim ("one overlay, many users") needs a test shape
of its own: not one project surviving faults, but *hundreds of
tenants* sharing shard servers, quotas, weights and backpressure
limits while the chaos layer drops, delays and duplicates messages —
and all fourteen recovery invariants still holding at the end, with zero
cross-tenant leakage and exact quota ledgers.

:func:`run_multitenant_soak` builds that world deterministically from
a seed: a :func:`~repro.net.topology.sharded`-shaped fabric over a
:class:`~repro.testing.chaos.ChaosNetwork`, ``n_tenants`` projects
with a heterogeneous workload mix (models, command counts, quotas,
weights, backpressure caps all derived from the tenant index), every
tenant deliberately reusing the *same* command ids (``cmd0``,
``cmd1``, ...) so any identity-scoping bug aliases instantly, and a
default fault plan of probabilistic heartbeat drops, result
duplications and delivery delays.

The result carries the live runner plus the pre-computed invariant
verdict; CI runs it across seeds via ``python -m repro soak``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.events import EventKind, EventLog
from repro.core.multirunner import MigrationReport, MultiProjectRunner
from repro.core.project import Project, ProjectStatus
from repro.md.engine import MDTask
from repro.net.protocol import MessageType
from repro.net.topology import LATENCY_CAMPUS, LATENCY_LOCAL
from repro.server.fairshare import (
    DEFAULT_MAX_WAIT_SECONDS,
    FairSharePolicy,
    FairShareScheduler,
    TenantPolicy,
)
from repro.server.server import CopernicusServer
from repro.server.shardmon import ShardProbePolicy
from repro.testing.chaos import ChaosNetwork
from repro.testing.faultplan import FaultPlan
from repro.testing.invariants import Invariants
from repro.util.errors import ConfigurationError, SchedulingError
from repro.worker.platform import SMPPlatform
from repro.worker.worker import Worker

#: The two cheap models the tenant mix alternates between.
SOAK_MODELS = ("double-well", "muller-brown")


@dataclass
class TenantSpec:
    """One soak tenant's workload and fair-share knobs."""

    name: str
    model: str
    n_commands: int
    n_steps: int
    quota: Optional[int] = None
    weight: float = 1.0
    max_queued: Optional[int] = None

    def policy(self) -> TenantPolicy:
        return TenantPolicy(
            quota=self.quota, weight=self.weight, max_queued=self.max_queued
        )


class TenantSwarmController(Controller):
    """A flat per-tenant swarm whose command ids collide across tenants.

    Every tenant issues ``cmd0 .. cmd{n-1}`` on purpose: the scoped
    command identity (:attr:`repro.core.command.Command.scoped_id`)
    must keep them apart in every server table, so the soak doubles as
    a fleet-wide aliasing regression test.
    """

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.finished: List[str] = []

    def on_project_start(self, project):
        return [
            Command(
                command_id=f"cmd{k}",
                project_id=project.project_id,
                executable="mdrun",
                payload=MDTask(
                    model=self.spec.model,
                    n_steps=self.spec.n_steps,
                    report_interval=max(1, self.spec.n_steps // 2),
                    seed=k,
                    task_id=f"cmd{k}",
                ).to_payload(),
            )
            for k in range(self.spec.n_commands)
        ]

    def on_command_finished(self, project, command, result):
        self.finished.append(command.command_id)
        return []

    def is_complete(self, project):
        return len(self.finished) >= self.spec.n_commands


def default_tenant_mix(n_tenants: int, n_steps: int = 300) -> List[TenantSpec]:
    """A heterogeneous-but-deterministic tenant population.

    Derived purely from the tenant index: command counts cycle 1..3,
    models alternate, every 5th tenant is quota-capped, every 3rd
    carries double weight, every 7th has a backpressure cap small
    enough that its later submissions are deferred and released.
    """
    specs = []
    for k in range(n_tenants):
        specs.append(
            TenantSpec(
                name=f"tenant{k:03d}",
                model=SOAK_MODELS[k % len(SOAK_MODELS)],
                n_commands=1 + (k % 3),
                n_steps=n_steps,
                quota=2 if k % 5 == 0 else None,
                weight=2.0 if k % 3 == 0 else 1.0,
                max_queued=1 if k % 7 == 0 else None,
            )
        )
    return specs


def default_soak_faults(plan: FaultPlan) -> None:
    """The standing fault weather for a soak run.

    Probabilistic, seeded by the plan: heartbeat drops (death/revival
    churn), duplicated results (dedup-barrier pressure), and delivery
    delays (timeout pressure).  All three are recoverable by design —
    the soak asserts the *invariants*, not fault-free execution.
    """
    plan.drop(message_type=MessageType.HEARTBEAT, probability=0.05, count=40)
    plan.duplicate(
        message_type=MessageType.COMMAND_RESULT, probability=0.1, count=25
    )
    plan.delay(
        5.0, message_type=MessageType.WORKLOAD_REQUEST,
        probability=0.1, count=50,
    )


def _build_fabric(
    network: ChaosNetwork,
    n_shards: int,
    workers_per_shard: int,
    cores_per_worker: int,
    heartbeat_interval: float,
    segment_steps: int,
    segments_per_cycle: Optional[int] = None,
) -> Tuple[CopernicusServer, List[CopernicusServer], List[Worker]]:
    """The standard soak fabric: gateway + shards + per-shard workers.

    Endpoint names are ``gateway``, ``shard{s}`` and ``s{s}w{w}`` —
    the names fault plans and scenario victims address.
    ``segments_per_cycle`` paces execution (a command spans several
    work cycles instead of finishing within one), which scenarios use
    to keep work genuinely in flight across a fault boundary.
    """
    gateway = CopernicusServer(
        "gateway", network, heartbeat_interval=heartbeat_interval
    )
    shards: List[CopernicusServer] = []
    workers: List[Worker] = []
    for s in range(n_shards):
        shard = CopernicusServer(
            f"shard{s}", network, heartbeat_interval=heartbeat_interval
        )
        shards.append(shard)
        network.connect("gateway", f"shard{s}", latency=LATENCY_CAMPUS)
        for w in range(workers_per_shard):
            name = f"s{s}w{w}"
            worker = Worker(
                name,
                network,
                server=f"shard{s}",
                platform=SMPPlatform(cores=cores_per_worker),
                segment_steps=segment_steps,
                segments_per_cycle=segments_per_cycle,
            )
            network.connect(f"shard{s}", name, latency=LATENCY_LOCAL)
            workers.append(worker)
    for worker in workers:
        worker.announce(0.0)
    return gateway, shards, workers


def _journaled_results(shards: List[CopernicusServer]) -> int:
    """Results durably applied across every shard's journal."""
    total = 0
    for shard in shards:
        if shard.journal is None:
            continue
        for pid in shard.journal.project_ids():
            total += shard.journal.project(pid).results_applied
    return total


def live_completions(events: EventLog) -> List[Tuple[str, str]]:
    """The ``(project, command)`` completion multiset of a run.

    Counts only *live* deliveries — journal-replay re-deliveries
    (``replayed=True``) bridge a controller across a migration and are
    excluded, exactly as invariant 2 treats them.  Two runs completed
    exactly-once produce the identical sorted multiset, so comparing a
    failover run against a crash-free baseline proves "no result lost,
    none duplicated" in one equality.
    """
    return sorted(
        (record.project_id, record.details.get("command", ""))
        for record in events.filter(kind=EventKind.COMMAND_COMPLETED)
        if not record.details.get("replayed")
    )


@dataclass
class SoakResult:
    """Everything a soak assertion (or the CI artifact) needs."""

    runner: MultiProjectRunner
    network: ChaosNetwork
    shards: List[CopernicusServer]
    workers: List[Worker]
    schedulers: Dict[str, FairShareScheduler]
    specs: List[TenantSpec]
    controllers: Dict[str, TenantSwarmController]
    #: All fourteen invariants, checked post-run (empty = green).
    violations: List[str]
    #: Per-tenant rollup (shard, status, issue/complete, ledger).
    report: Dict[str, Dict]
    transcript: str
    chaos: Dict

    @property
    def events(self):
        return self.runner.events

    @property
    def obs(self):
        return self.network.obs

    def completed_tenants(self) -> int:
        return sum(
            1 for r in self.report.values() if r["status"] == "complete"
        )


def run_multitenant_soak(
    n_tenants: int = 100,
    n_shards: int = 4,
    workers_per_shard: int = 3,
    cores_per_worker: int = 2,
    n_steps: int = 300,
    specs: Optional[List[TenantSpec]] = None,
    plan: Optional[FaultPlan] = None,
    configure: Optional[Callable[[FaultPlan], None]] = None,
    max_wait_seconds: float = DEFAULT_MAX_WAIT_SECONDS,
    heartbeat_interval: float = 120.0,
    tick: float = 60.0,
    segment_steps: int = 1000,
    segments_per_cycle: Optional[int] = None,
    max_cycles: int = 20000,
    seed: int = 0,
) -> SoakResult:
    """Drive ``n_tenants`` concurrent projects through seeded chaos.

    Builds the sharded fabric (gateway + ``n_shards`` shard servers +
    per-shard worker pools) over a :class:`ChaosNetwork` carrying
    *plan* (default: :func:`default_soak_faults` seeded with *seed*),
    submits every tenant's project to its consistent-hashed shard
    under the assembled fair-share policy, runs the fleet to
    completion, and checks **all fourteen invariants** before returning.

    The returned :class:`SoakResult` is a pure function of the
    arguments: same seed, same transcript, same verdict.

    Parameters
    ----------
    specs:
        Explicit tenant population (default:
        :func:`default_tenant_mix` of *n_tenants*).
    configure:
        Callback to add faults to the plan (endpoint names are
        ``gateway``, ``shard{s}``, ``s{s}w{w}``).
    """
    specs = specs if specs is not None else default_tenant_mix(
        n_tenants, n_steps=n_steps
    )
    if not specs:
        raise ConfigurationError("soak needs at least one tenant")
    if len({spec.name for spec in specs}) != len(specs):
        raise ConfigurationError("tenant names must be unique")

    network = ChaosNetwork(plan=plan or FaultPlan(seed=seed), seed=seed)
    if plan is None and configure is None:
        default_soak_faults(network.plan)
    if configure is not None:
        configure(network.plan)

    gateway, shards, workers = _build_fabric(
        network, n_shards, workers_per_shard, cores_per_worker,
        heartbeat_interval, segment_steps, segments_per_cycle,
    )

    runner = MultiProjectRunner(network, shards, workers, tick=tick)
    policy = FairSharePolicy(
        tenants={spec.name: spec.policy() for spec in specs},
        max_wait_seconds=max_wait_seconds,
    )
    schedulers = runner.apply_fairshare(policy)

    controllers: Dict[str, TenantSwarmController] = {}
    for spec in specs:
        controller = TenantSwarmController(spec)
        runner.submit(Project(spec.name), controller)
        controllers[spec.name] = controller
    runner.run(max_cycles=max_cycles)

    violations = Invariants(runner).check()
    return SoakResult(
        runner=runner,
        network=network,
        shards=shards,
        workers=workers,
        schedulers=schedulers,
        specs=specs,
        controllers=controllers,
        violations=violations,
        report=runner.tenant_report(),
        transcript=runner.events.to_text(),
        chaos=network.chaos_report(),
    )


@dataclass
class ShardCrashResult(SoakResult):
    """A :class:`SoakResult` plus the failover story.

    ``controllers`` holds the *live* post-run controllers — for
    migrated tenants that is the fresh replay controller, not the one
    originally submitted.
    """

    #: The shard that was killed.
    victim: str = ""
    #: Delivery index at which the victim started refusing traffic.
    crash_delivery_index: int = 0
    #: Fleet-wide journaled results at the crash moment.
    results_before_crash: int = 0
    #: Per-project failover accounting, in migration order.
    migrations: List[MigrationReport] = None  # type: ignore[assignment]
    #: ``(project, command)`` live-completion multiset of this run.
    completions: List[Tuple[str, str]] = None  # type: ignore[assignment]
    #: The crash-free run of the same seed (None when skipped).
    baseline: Optional[SoakResult] = None
    #: The baseline's live-completion multiset (None when skipped).
    baseline_completions: Optional[List[Tuple[str, str]]] = None

    @property
    def exactly_once(self) -> bool:
        """Whether the post-failover result set equals the crash-free
        run's — no result lost, none duplicated, none leaked across
        tenants (vacuously true when the baseline was skipped)."""
        return (
            self.baseline_completions is None
            or self.completions == self.baseline_completions
        )

    def migration_timeline(self) -> List[Dict[str, Any]]:
        """The failover as an ordered record list (the CI artifact):
        shard death, per-project recovery/replay, migration flips and
        post-crash requeues."""
        kinds = {
            EventKind.SHARD_DEAD,
            EventKind.SERVER_RECOVERED,
            EventKind.COMMAND_RESTORED,
            EventKind.PROJECT_MIGRATED,
        }
        return [
            {
                "time": record.time,
                "kind": record.kind.value,
                "project": record.project_id,
                **record.details,
            }
            for record in self.runner.events.all()
            if record.kind in kinds
        ]


def run_multitenant_with_shard_crash(
    journal_root: str | Path,
    n_tenants: int = 12,
    n_shards: int = 3,
    workers_per_shard: int = 2,
    cores_per_worker: int = 2,
    n_steps: int = 300,
    specs: Optional[List[TenantSpec]] = None,
    plan: Optional[FaultPlan] = None,
    configure: Optional[Callable[[FaultPlan], None]] = None,
    victim: Optional[str] = None,
    crash_after_results: Optional[int] = None,
    baseline: bool = True,
    probe_policy: Optional[ShardProbePolicy] = None,
    max_wait_seconds: float = DEFAULT_MAX_WAIT_SECONDS,
    heartbeat_interval: float = 120.0,
    tick: float = 60.0,
    segment_steps: int = 1000,
    max_cycles: int = 20000,
    seed: int = 0,
) -> ShardCrashResult:
    """Kill a shard mid-soak; its projects must migrate and finish.

    The canned failover scenario behind invariant 13.  It runs in (up
    to) three acts:

    1. **Baseline** (unless ``baseline=False``): the identical tenant
       population runs crash-free under the same seed, capturing the
       expected :func:`live_completions` multiset.
    2. **Soak until the crash point**: the journaled multi-tenant
       fabric (gateway + shards + workers, fair-share applied, shard
       monitor attached) is driven cycle by cycle until
       ``crash_after_results`` results are durably journaled
       fleet-wide.  Then the victim's :meth:`FaultPlan.crash_shard`
       rule fires: a permanent server-crash window is armed and the
       network refuses all the victim's traffic from that delivery on.
    3. **Detection and failover**: the normal drive loop continues;
       the gateway's :class:`~repro.server.shardmon.ShardMonitor`
       misses its probes, declares the shard dead, and
       :meth:`~repro.core.multirunner.MultiProjectRunner.fail_over`
       ships journals, replays projects on their successors, re-homes
       the orphaned workers and flips routes — organically, inside
       :meth:`_liveness_sweep`, with no scenario-side intervention.

    The victim defaults to the plan's scheduled
    :meth:`~repro.testing.faultplan.FaultPlan.crash_shard` rule, or —
    when none is scheduled — to the shard hosting the most
    still-incomplete tenants at the crash moment (ties broken by
    name), so the failover always has live work to migrate.

    Returns a :class:`ShardCrashResult`; ``exactly_once`` is the
    headline verdict and ``violations`` covers all fourteen
    invariants.
    """
    journal_root = Path(journal_root)
    specs = specs if specs is not None else default_tenant_mix(
        n_tenants, n_steps=n_steps
    )
    if not specs:
        raise ConfigurationError("shard-crash scenario needs >= 1 tenant")
    if len({spec.name for spec in specs}) != len(specs):
        raise ConfigurationError("tenant names must be unique")
    if n_shards < 2:
        raise ConfigurationError(
            "shard failover needs >= 2 shards (a successor must exist)"
        )

    base: Optional[SoakResult] = None
    baseline_completions: Optional[List[Tuple[str, str]]] = None
    if baseline:
        base = run_multitenant_soak(
            n_shards=n_shards,
            workers_per_shard=workers_per_shard,
            cores_per_worker=cores_per_worker,
            n_steps=n_steps,
            specs=specs,
            max_wait_seconds=max_wait_seconds,
            heartbeat_interval=heartbeat_interval,
            tick=tick,
            segment_steps=segment_steps,
            max_cycles=max_cycles,
            seed=seed,
        )
        baseline_completions = live_completions(base.runner.events)

    network = ChaosNetwork(plan=plan or FaultPlan(seed=seed), seed=seed)
    if plan is None and configure is None:
        default_soak_faults(network.plan)
    if configure is not None:
        configure(network.plan)

    gateway, shards, workers = _build_fabric(
        network, n_shards, workers_per_shard, cores_per_worker,
        heartbeat_interval, segment_steps,
    )
    runner = MultiProjectRunner(network, shards, workers, tick=tick)
    runner.attach_journals(journal_root)
    policy = FairSharePolicy(
        tenants={spec.name: spec.policy() for spec in specs},
        max_wait_seconds=max_wait_seconds,
    )
    schedulers = runner.apply_fairshare(policy)
    runner.attach_shard_monitor(gateway, probe_policy)

    for spec in specs:
        runner.submit(
            Project(spec.name),
            TenantSwarmController(spec),
            controller_factory=lambda spec=spec: TenantSwarmController(spec),
        )

    crash_rule = network.plan.shard_crash_point(victim)
    if crash_rule is not None:
        victim = crash_rule.dst
    if victim is not None and victim not in {s.name for s in shards}:
        raise ConfigurationError(f"victim {victim!r} is not a shard")
    threshold = crash_after_results
    if threshold is None:
        threshold = (
            crash_rule.after_results if crash_rule is not None else None
        ) or 3

    # ---- act 2: drive until the crash point, then pull the plug --------
    for server in runner.servers:
        server.events = runner.events
        server.clock = max(server.clock, runner.now)
    crashed = False
    for _ in range(max_cycles):
        for worker in workers:
            if worker.crashed:
                continue
            worker_now = runner.now + worker.poll_offset
            worker.heartbeat(worker_now)
            worker.work_once(now=worker_now)
            # check mid-cycle: one full worker sweep can journal many
            # results, and the kill should land as close to the
            # threshold as the delivery stream allows
            if _journaled_results(runner.shards) >= threshold:
                crashed = True
                break
        if crashed:
            break
        runner.now += tick
        runner._liveness_sweep()
        if runner._all_complete():
            break
    if not crashed:
        raise SchedulingError(
            f"tenants finished before {threshold} results could trigger "
            f"the shard kill; lower crash_after_results"
        )
    if victim is None:
        # the default victim is decided at the crash moment: the shard
        # hosting the most still-incomplete tenants (ties by name), so
        # the failover always has live work to migrate
        if runner._all_complete():
            raise SchedulingError(
                "every tenant finished before the crash point; lower "
                "crash_after_results"
            )
        incomplete: Dict[str, int] = {}
        for spec in specs:
            if runner.project(spec.name).status is not ProjectStatus.COMPLETE:
                home = runner.shard_of(spec.name)
                incomplete[home] = incomplete.get(home, 0) + 1
        victim = max(sorted(incomplete), key=lambda name: incomplete[name])
    if crash_rule is None:
        crash_rule = network.plan.crash_shard(victim, after_results=threshold)
    results_before_crash = _journaled_results(runner.shards)
    crash_index = network.delivery_index
    crash_rule.fired += 1
    network.plan.firings.append((crash_index, crash_rule))
    # the actual kill: a permanent crash window — from this delivery
    # on the victim's process is gone and every message to or from it
    # raises, exactly what the monitor's probes will run into
    network.plan.crash_server(victim, after_index=crash_index)

    # ---- act 3: detection, failover and completion ---------------------
    runner.run(max_cycles=max_cycles)

    violations = Invariants(runner).check()
    return ShardCrashResult(
        runner=runner,
        network=network,
        shards=runner.shards,
        workers=workers,
        schedulers=schedulers,
        specs=specs,
        controllers={
            spec.name: runner.controller(spec.name) for spec in specs
        },
        violations=violations,
        report=runner.tenant_report(),
        transcript=runner.events.to_text(),
        chaos=network.chaos_report(),
        victim=victim,
        crash_delivery_index=crash_index,
        results_before_crash=results_before_crash,
        migrations=list(runner.migrations),
        completions=live_completions(runner.events),
        baseline=base,
        baseline_completions=baseline_completions,
    )


@dataclass
class PartitionResult(ShardCrashResult):
    """A :class:`ShardCrashResult` whose victim never died.

    The shard was *partitioned* from the gateway: the fleet declared
    it dead and failed over, but on the island side of the cut the
    shard kept running — a zombie owner serving its local workers
    under the old ownership epoch.  When the partition heals, the
    fence table riding the gateway's probes demotes it
    (``PROJECT_FENCED``), and every write of its stale regime is
    rejected (``FENCING_REJECTED``) rather than applied.
    """

    #: Delivery index at which the gateway<->victim link was severed
    #: (both directions, as two directed rules).
    partition_index: int = 0
    #: Delivery index at which the partition healed.
    heal_index: int = 0
    #: ``(project, command)`` completions the zombie applied locally
    #: during split-brain — journaled under its stale epoch, fenced at
    #: demotion, never delivered to a live controller.
    zombie_completions: List[Tuple[str, str]] = None  # type: ignore[assignment]
    #: The zombie's detached event log: its split-brain story
    #: (PROJECT_FENCED included) lands here, not in the fleet's log.
    zombie_events: Optional[EventLog] = None
    #: Demotion reports the gateway's monitor collected from the
    #: healed zombie's probe answers.
    demotions: List[Dict] = None  # type: ignore[assignment]
    #: End-of-run fencing counters from the shared metrics registry.
    fencing: Dict[str, float] = None  # type: ignore[assignment]

    def migration_timeline(self) -> List[Dict[str, Any]]:
        """The partition as an ordered record list (the CI artifact):
        shard death, migrations, epoch bumps, fencing rejections and
        the zombie's demotion — merged from the fleet's log and the
        zombie's detached one, in time order."""
        kinds = {
            EventKind.SHARD_DEAD,
            EventKind.SERVER_RECOVERED,
            EventKind.COMMAND_RESTORED,
            EventKind.PROJECT_MIGRATED,
            EventKind.EPOCH_BUMPED,
            EventKind.FENCING_REJECTED,
            EventKind.PROJECT_FENCED,
            EventKind.PROJECT_PARKED,
            EventKind.PROJECT_UNPARKED,
        }
        merged = list(self.runner.events.all())
        if self.zombie_events is not None:
            merged.extend(self.zombie_events.all())
        timeline = [
            {
                "time": record.time,
                "kind": record.kind.value,
                "project": record.project_id,
                **record.details,
            }
            for record in merged
            if record.kind in kinds
        ]
        # stable by time only: same-tick events keep their causal
        # insertion order (shard_dead before the restores it caused)
        timeline.sort(key=lambda entry: entry["time"])
        return timeline


def run_multitenant_with_partitioned_shard(
    journal_root: str | Path,
    n_tenants: int = 12,
    n_shards: int = 3,
    workers_per_shard: int = 2,
    cores_per_worker: int = 2,
    n_steps: int = 300,
    specs: Optional[List[TenantSpec]] = None,
    plan: Optional[FaultPlan] = None,
    configure: Optional[Callable[[FaultPlan], None]] = None,
    victim: Optional[str] = None,
    partition_after_results: int = 3,
    heal_after: int = 1500,
    baseline: bool = True,
    probe_policy: Optional[ShardProbePolicy] = None,
    max_wait_seconds: float = DEFAULT_MAX_WAIT_SECONDS,
    heartbeat_interval: float = 120.0,
    tick: float = 60.0,
    segment_steps: int = 100,
    segments_per_cycle: Optional[int] = 2,
    max_cycles: int = 20000,
    seed: int = 0,
) -> PartitionResult:
    """Partition a shard mid-soak, fail over, heal — and fence the zombie.

    The canned scenario behind invariant 14 (epoch fencing).  Where
    :func:`run_multitenant_with_shard_crash` kills its victim outright,
    this scenario only *cuts the victim off from the gateway* — the
    worst case for ownership, because the old owner stays alive and
    keeps accepting work from the workers on its side of the cut.  It
    runs in three acts:

    1. **Baseline** (unless ``baseline=False``): the identical tenant
       population runs partition-free under the same seed, capturing
       the expected :func:`live_completions` multiset.
    2. **Partition and failover**: once ``partition_after_results``
       results are journaled fleet-wide, two directed
       :meth:`~repro.testing.faultplan.FaultPlan.partition_link` rules
       sever ``gateway -> victim`` and ``victim -> gateway`` for
       ``heal_after`` deliveries.  The monitor's probes miss, the
       fleet fails over — per-project epochs bump in the source
       journal before shipping — and the victim's tenants resume on
       their successors.  Meanwhile the scenario detaches the zombie's
       island: its workers point back at it, its events land in a
       private log and its result sinks record locally, so the zombie
       genuinely runs a split-brain regime under the stale epoch.
    3. **Heal and demotion**: the partition lifts; the zombie answers
       its next probe, finds every hosted project fenced at a higher
       epoch, and demotes itself — voiding leases, purging queues and
       forwarding its journaled results stale-stamped to the new
       owners, where each is rejected and counted
       (``repro_fencing_rejections_total``), never applied.  The loop
       runs until every tenant completes *and* the demotion reports
       arrive.

    Returns a :class:`PartitionResult`; ``exactly_once`` (live
    completions equal to the partition-free baseline's, zombie
    completions excluded) is the headline verdict, ``violations``
    covers all fourteen invariants.
    """
    journal_root = Path(journal_root)
    specs = specs if specs is not None else default_tenant_mix(
        n_tenants, n_steps=n_steps
    )
    if not specs:
        raise ConfigurationError("partition scenario needs >= 1 tenant")
    if len({spec.name for spec in specs}) != len(specs):
        raise ConfigurationError("tenant names must be unique")
    if n_shards < 2:
        raise ConfigurationError(
            "shard failover needs >= 2 shards (a successor must exist)"
        )
    if heal_after < 1:
        raise ConfigurationError(
            f"heal_after must be >= 1, got {heal_after}"
        )

    base: Optional[SoakResult] = None
    baseline_completions: Optional[List[Tuple[str, str]]] = None
    if baseline:
        base = run_multitenant_soak(
            n_shards=n_shards,
            workers_per_shard=workers_per_shard,
            cores_per_worker=cores_per_worker,
            n_steps=n_steps,
            specs=specs,
            max_wait_seconds=max_wait_seconds,
            heartbeat_interval=heartbeat_interval,
            tick=tick,
            segment_steps=segment_steps,
            segments_per_cycle=segments_per_cycle,
            max_cycles=max_cycles,
            seed=seed,
        )
        baseline_completions = live_completions(base.runner.events)

    network = ChaosNetwork(plan=plan or FaultPlan(seed=seed), seed=seed)
    if plan is None and configure is None:
        default_soak_faults(network.plan)
    if configure is not None:
        configure(network.plan)

    # paced execution by default (segments_per_cycle): commands span
    # several work cycles, so the island genuinely has work in flight
    # when the failover happens — the split-brain regime completes it
    # under the stale epoch instead of having drained before the cut
    # mattered
    gateway, shards, workers = _build_fabric(
        network, n_shards, workers_per_shard, cores_per_worker,
        heartbeat_interval, segment_steps, segments_per_cycle,
    )
    runner = MultiProjectRunner(network, shards, workers, tick=tick)
    runner.attach_journals(journal_root)
    policy = FairSharePolicy(
        tenants={spec.name: spec.policy() for spec in specs},
        max_wait_seconds=max_wait_seconds,
    )
    schedulers = runner.apply_fairshare(policy)
    runner.attach_shard_monitor(gateway, probe_policy)

    for spec in specs:
        runner.submit(
            Project(spec.name),
            TenantSwarmController(spec),
            controller_factory=lambda spec=spec: TenantSwarmController(spec),
        )

    # ---- act 2: drive to the partition point, then cut the link --------
    for server in runner.servers:
        server.events = runner.events
        server.clock = max(server.clock, runner.now)
    threshold = partition_after_results
    partitioned = False
    for _ in range(max_cycles):
        for worker in workers:
            if worker.crashed:
                continue
            worker_now = runner.now + worker.poll_offset
            worker.heartbeat(worker_now)
            worker.work_once(now=worker_now)
            if _journaled_results(runner.shards) >= threshold:
                partitioned = True
                break
        if partitioned:
            break
        runner.now += tick
        runner._liveness_sweep()
        if runner._all_complete():
            break
    if not partitioned:
        raise SchedulingError(
            f"tenants finished before {threshold} results could trigger "
            f"the partition; lower partition_after_results"
        )
    if victim is None:
        if runner._all_complete():
            raise SchedulingError(
                "every tenant finished before the partition point; lower "
                "partition_after_results"
            )
        incomplete: Dict[str, int] = {}
        for spec in specs:
            if runner.project(spec.name).status is not ProjectStatus.COMPLETE:
                home = runner.shard_of(spec.name)
                incomplete[home] = incomplete.get(home, 0) + 1
        victim = max(sorted(incomplete), key=lambda name: incomplete[name])
    zombie = runner._shards_by_name.get(victim)
    if zombie is None:
        raise ConfigurationError(f"victim {victim!r} is not a live shard")
    island_workers = [w for w in workers if w.server == victim]
    results_before = _journaled_results(runner.shards)
    partition_index = network.delivery_index
    heal_index = partition_index + heal_after
    # the actual cut: both directions of the gateway<->victim edge go
    # dark for heal_after deliveries.  The victim's own workers stay
    # connected — that asymmetry is the whole point.
    network.plan.partition_link(
        "gateway", victim, after_index=partition_index, heal_after=heal_after
    )
    network.plan.partition_link(
        victim, "gateway", after_index=partition_index, heal_after=heal_after
    )

    # ---- act 3: failover, split-brain, heal, demotion -------------------
    zombie_log = EventLog()
    zombie_completions: List[Tuple[str, str]] = []
    rewired = False
    done = False
    for _ in range(max_cycles):
        for worker in workers:
            if worker.crashed:
                continue
            worker_now = runner.now + worker.poll_offset
            worker.heartbeat(worker_now)
            worker.work_once(now=worker_now)
        runner.now += tick
        runner._liveness_sweep()
        if not rewired and runner.migrations:
            # The fleet just failed over — but the zombie is alive on
            # the island side of the cut.  Detach it from the fleet's
            # world so the harness observes a true split-brain: its
            # workers point back at it (the failover re-homed them at
            # a successor they cannot reach), its events land in a
            # private log, and its result sinks record locally — the
            # live controllers for its projects now run on the
            # successors, and feeding them from the stale regime would
            # falsify the exactly-once comparison this scenario exists
            # to make.
            for worker in island_workers:
                worker.server = victim
            zombie.events = zombie_log
            for pid in list(zombie._sinks):
                zombie._sinks[pid] = (
                    lambda command, result, pid=pid:
                    zombie_completions.append((pid, command.command_id))
                )
            rewired = True
        if (
            rewired
            and network.delivery_index >= heal_index
            and runner.monitor.demotions
            and runner._all_complete()
        ):
            done = True
            break
    if not done:
        raise SchedulingError(
            f"partition scenario did not converge within {max_cycles} "
            f"cycles (rewired={rewired}, "
            f"healed={network.delivery_index >= heal_index}, "
            f"demotions={len(runner.monitor.demotions)})"
        )

    metrics = network.obs.metrics
    violations = Invariants(runner).check()
    return PartitionResult(
        runner=runner,
        network=network,
        shards=runner.shards,
        workers=workers,
        schedulers=schedulers,
        specs=specs,
        controllers={
            spec.name: runner.controller(spec.name) for spec in specs
        },
        violations=violations,
        report=runner.tenant_report(),
        transcript=runner.events.to_text(),
        chaos=network.chaos_report(),
        victim=victim,
        crash_delivery_index=partition_index,
        results_before_crash=results_before,
        migrations=list(runner.migrations),
        completions=live_completions(runner.events),
        baseline=base,
        baseline_completions=baseline_completions,
        partition_index=partition_index,
        heal_index=heal_index,
        zombie_completions=zombie_completions,
        zombie_events=zombie_log,
        demotions=[dict(r) for r in runner.monitor.demotions],
        fencing={
            "rejections_total": metrics.total(
                "repro_fencing_rejections_total"
            ),
            "projects_fenced_total": metrics.total(
                "repro_projects_fenced_total"
            ),
            "epoch_bumps_total": metrics.total("repro_epoch_bumps_total"),
        },
    )
