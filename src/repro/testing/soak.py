"""Multi-tenant soak: 100+ tenants on a sharded fabric under fire.

The service-plane claim ("one overlay, many users") needs a test shape
of its own: not one project surviving faults, but *hundreds of
tenants* sharing shard servers, quotas, weights and backpressure
limits while the chaos layer drops, delays and duplicates messages —
and all twelve recovery invariants still holding at the end, with zero
cross-tenant leakage and exact quota ledgers.

:func:`run_multitenant_soak` builds that world deterministically from
a seed: a :func:`~repro.net.topology.sharded`-shaped fabric over a
:class:`~repro.testing.chaos.ChaosNetwork`, ``n_tenants`` projects
with a heterogeneous workload mix (models, command counts, quotas,
weights, backpressure caps all derived from the tenant index), every
tenant deliberately reusing the *same* command ids (``cmd0``,
``cmd1``, ...) so any identity-scoping bug aliases instantly, and a
default fault plan of probabilistic heartbeat drops, result
duplications and delivery delays.

The result carries the live runner plus the pre-computed invariant
verdict; CI runs it across seeds via ``python -m repro soak``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.multirunner import MultiProjectRunner
from repro.core.project import Project
from repro.md.engine import MDTask
from repro.net.protocol import MessageType
from repro.net.topology import LATENCY_CAMPUS, LATENCY_LOCAL
from repro.server.fairshare import (
    DEFAULT_MAX_WAIT_SECONDS,
    FairSharePolicy,
    FairShareScheduler,
    TenantPolicy,
)
from repro.server.server import CopernicusServer
from repro.testing.chaos import ChaosNetwork
from repro.testing.faultplan import FaultPlan
from repro.testing.invariants import Invariants
from repro.util.errors import ConfigurationError
from repro.worker.platform import SMPPlatform
from repro.worker.worker import Worker

#: The two cheap models the tenant mix alternates between.
SOAK_MODELS = ("double-well", "muller-brown")


@dataclass
class TenantSpec:
    """One soak tenant's workload and fair-share knobs."""

    name: str
    model: str
    n_commands: int
    n_steps: int
    quota: Optional[int] = None
    weight: float = 1.0
    max_queued: Optional[int] = None

    def policy(self) -> TenantPolicy:
        return TenantPolicy(
            quota=self.quota, weight=self.weight, max_queued=self.max_queued
        )


class TenantSwarmController(Controller):
    """A flat per-tenant swarm whose command ids collide across tenants.

    Every tenant issues ``cmd0 .. cmd{n-1}`` on purpose: the scoped
    command identity (:attr:`repro.core.command.Command.scoped_id`)
    must keep them apart in every server table, so the soak doubles as
    a fleet-wide aliasing regression test.
    """

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.finished: List[str] = []

    def on_project_start(self, project):
        return [
            Command(
                command_id=f"cmd{k}",
                project_id=project.project_id,
                executable="mdrun",
                payload=MDTask(
                    model=self.spec.model,
                    n_steps=self.spec.n_steps,
                    report_interval=max(1, self.spec.n_steps // 2),
                    seed=k,
                    task_id=f"cmd{k}",
                ).to_payload(),
            )
            for k in range(self.spec.n_commands)
        ]

    def on_command_finished(self, project, command, result):
        self.finished.append(command.command_id)
        return []

    def is_complete(self, project):
        return len(self.finished) >= self.spec.n_commands


def default_tenant_mix(n_tenants: int, n_steps: int = 300) -> List[TenantSpec]:
    """A heterogeneous-but-deterministic tenant population.

    Derived purely from the tenant index: command counts cycle 1..3,
    models alternate, every 5th tenant is quota-capped, every 3rd
    carries double weight, every 7th has a backpressure cap small
    enough that its later submissions are deferred and released.
    """
    specs = []
    for k in range(n_tenants):
        specs.append(
            TenantSpec(
                name=f"tenant{k:03d}",
                model=SOAK_MODELS[k % len(SOAK_MODELS)],
                n_commands=1 + (k % 3),
                n_steps=n_steps,
                quota=2 if k % 5 == 0 else None,
                weight=2.0 if k % 3 == 0 else 1.0,
                max_queued=1 if k % 7 == 0 else None,
            )
        )
    return specs


def default_soak_faults(plan: FaultPlan) -> None:
    """The standing fault weather for a soak run.

    Probabilistic, seeded by the plan: heartbeat drops (death/revival
    churn), duplicated results (dedup-barrier pressure), and delivery
    delays (timeout pressure).  All three are recoverable by design —
    the soak asserts the *invariants*, not fault-free execution.
    """
    plan.drop(message_type=MessageType.HEARTBEAT, probability=0.05, count=40)
    plan.duplicate(
        message_type=MessageType.COMMAND_RESULT, probability=0.1, count=25
    )
    plan.delay(
        5.0, message_type=MessageType.WORKLOAD_REQUEST,
        probability=0.1, count=50,
    )


@dataclass
class SoakResult:
    """Everything a soak assertion (or the CI artifact) needs."""

    runner: MultiProjectRunner
    network: ChaosNetwork
    shards: List[CopernicusServer]
    workers: List[Worker]
    schedulers: Dict[str, FairShareScheduler]
    specs: List[TenantSpec]
    controllers: Dict[str, TenantSwarmController]
    #: All twelve invariants, checked post-run (empty = green).
    violations: List[str]
    #: Per-tenant rollup (shard, status, issue/complete, ledger).
    report: Dict[str, Dict]
    transcript: str
    chaos: Dict

    @property
    def events(self):
        return self.runner.events

    @property
    def obs(self):
        return self.network.obs

    def completed_tenants(self) -> int:
        return sum(
            1 for r in self.report.values() if r["status"] == "complete"
        )


def run_multitenant_soak(
    n_tenants: int = 100,
    n_shards: int = 4,
    workers_per_shard: int = 3,
    cores_per_worker: int = 2,
    n_steps: int = 300,
    specs: Optional[List[TenantSpec]] = None,
    plan: Optional[FaultPlan] = None,
    configure: Optional[Callable[[FaultPlan], None]] = None,
    max_wait_seconds: float = DEFAULT_MAX_WAIT_SECONDS,
    heartbeat_interval: float = 120.0,
    tick: float = 60.0,
    segment_steps: int = 1000,
    max_cycles: int = 20000,
    seed: int = 0,
) -> SoakResult:
    """Drive ``n_tenants`` concurrent projects through seeded chaos.

    Builds the sharded fabric (gateway + ``n_shards`` shard servers +
    per-shard worker pools) over a :class:`ChaosNetwork` carrying
    *plan* (default: :func:`default_soak_faults` seeded with *seed*),
    submits every tenant's project to its consistent-hashed shard
    under the assembled fair-share policy, runs the fleet to
    completion, and checks **all twelve invariants** before returning.

    The returned :class:`SoakResult` is a pure function of the
    arguments: same seed, same transcript, same verdict.

    Parameters
    ----------
    specs:
        Explicit tenant population (default:
        :func:`default_tenant_mix` of *n_tenants*).
    configure:
        Callback to add faults to the plan (endpoint names are
        ``gateway``, ``shard{s}``, ``s{s}w{w}``).
    """
    specs = specs if specs is not None else default_tenant_mix(
        n_tenants, n_steps=n_steps
    )
    if not specs:
        raise ConfigurationError("soak needs at least one tenant")
    if len({spec.name for spec in specs}) != len(specs):
        raise ConfigurationError("tenant names must be unique")

    network = ChaosNetwork(plan=plan or FaultPlan(seed=seed), seed=seed)
    if plan is None and configure is None:
        default_soak_faults(network.plan)
    if configure is not None:
        configure(network.plan)

    gateway = CopernicusServer(
        "gateway", network, heartbeat_interval=heartbeat_interval
    )
    shards: List[CopernicusServer] = []
    workers: List[Worker] = []
    for s in range(n_shards):
        shard = CopernicusServer(
            f"shard{s}", network, heartbeat_interval=heartbeat_interval
        )
        shards.append(shard)
        network.connect("gateway", f"shard{s}", latency=LATENCY_CAMPUS)
        for w in range(workers_per_shard):
            name = f"s{s}w{w}"
            worker = Worker(
                name,
                network,
                server=f"shard{s}",
                platform=SMPPlatform(cores=cores_per_worker),
                segment_steps=segment_steps,
            )
            network.connect(f"shard{s}", name, latency=LATENCY_LOCAL)
            workers.append(worker)
    for worker in workers:
        worker.announce(0.0)

    runner = MultiProjectRunner(network, shards, workers, tick=tick)
    policy = FairSharePolicy(
        tenants={spec.name: spec.policy() for spec in specs},
        max_wait_seconds=max_wait_seconds,
    )
    schedulers = runner.apply_fairshare(policy)

    controllers: Dict[str, TenantSwarmController] = {}
    for spec in specs:
        controller = TenantSwarmController(spec)
        runner.submit(Project(spec.name), controller)
        controllers[spec.name] = controller
    runner.run(max_cycles=max_cycles)

    violations = Invariants(runner).check()
    return SoakResult(
        runner=runner,
        network=network,
        shards=shards,
        workers=workers,
        schedulers=schedulers,
        specs=specs,
        controllers=controllers,
        violations=violations,
        report=runner.tenant_report(),
        transcript=runner.events.to_text(),
        chaos=network.chaos_report(),
    )
